"""Literal term search over item names and descriptions (paper §V-A).

Case-insensitive substring matching — "similar to a text editor search".
Items are arbitrary objects exposed through accessor callables, so the
engine works over registry records, corpus items or plain dicts alike.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable

__all__ = ["LiteralSearch"]


class LiteralSearch:
    """Substring search over ``(name, description)`` of a collection."""

    def __init__(
        self,
        name_of: Callable[[Any], str] = lambda item: item.get("name", ""),
        description_of: Callable[[Any], str] = lambda item: item.get("description", ""),
    ) -> None:
        self.name_of = name_of
        self.description_of = description_of

    def search(self, items: Iterable[Any], term: str) -> list[Any]:
        """Items whose name or description contains ``term`` (case-folded)."""
        needle = term.casefold()
        hits = []
        for item in items:
            name = (self.name_of(item) or "").casefold()
            desc = (self.description_of(item) or "").casefold()
            if needle in name or needle in desc:
                hits.append(item)
        return hits

    def highlight(self, text: str, term: str, marker: str = "**") -> str:
        """Wrap case-insensitive occurrences of ``term`` with ``marker``."""
        if not term:
            return text
        pattern = re.compile(re.escape(term), re.IGNORECASE)
        return pattern.sub(lambda m: f"{marker}{m.group(0)}{marker}", text)
