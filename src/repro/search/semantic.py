"""Semantic text-to-code search over description embeddings (paper §V-B).

Maintains an incrementally updatable matrix of description embeddings;
queries are one ``matrix @ vector`` product (the vectorised hot path the
HPC guides prescribe).  Mirrors Laminar's flow exactly: descriptions are
embedded once at registration, queries at search time, ranking by cosine.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.models.embedder import UniXcoderEmbedder

__all__ = ["SemanticSearch"]


class SemanticSearch:
    """Incremental cosine search index over text descriptions."""

    def __init__(self, embedder: UniXcoderEmbedder | None = None) -> None:
        self.embedder = embedder or UniXcoderEmbedder()
        self._ids: list[Any] = []
        self._vectors: np.ndarray = np.empty((0, self.embedder.dim))
        self._row_of: dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, item_id: Any) -> bool:
        return item_id in self._row_of

    def add(self, item_id: Any, description: str) -> None:
        """Index (or re-index) one item's description."""
        vector = self.embedder.encode(description)
        if item_id in self._row_of:
            self._vectors[self._row_of[item_id]] = vector[0]
            return
        self._row_of[item_id] = len(self._ids)
        self._ids.append(item_id)
        self._vectors = np.vstack([self._vectors, vector])

    def add_precomputed(self, item_id: Any, vector: list[float]) -> None:
        """Index an item whose embedding was computed earlier (registry)."""
        arr = np.asarray(vector, dtype=np.float64)
        norm = np.linalg.norm(arr)
        arr = arr / norm if norm > 0 else arr
        if item_id in self._row_of:
            self._vectors[self._row_of[item_id]] = arr
            return
        self._row_of[item_id] = len(self._ids)
        self._ids.append(item_id)
        self._vectors = np.vstack([self._vectors, arr[None, :]])

    def remove(self, item_id: Any) -> bool:
        """Drop one item; returns False when absent."""
        row = self._row_of.pop(item_id, None)
        if row is None:
            return False
        self._ids.pop(row)
        self._vectors = np.delete(self._vectors, row, axis=0)
        for other, r in self._row_of.items():
            if r > row:
                self._row_of[other] = r - 1
        return True

    def search(self, query: str, top_k: int = 5) -> list[tuple[Any, float]]:
        """Top ``top_k`` ``(item_id, cosine)`` pairs for a text query."""
        if not self._ids:
            return []
        query_vec = self.embedder.encode(query)[0]
        sims = self._vectors @ query_vec
        order = np.argsort(-sims, kind="stable")[:top_k]
        return [(self._ids[i], float(sims[i])) for i in order]
