"""Semantic text-to-code search over description embeddings (paper §V-B).

Queries are one ``matrix @ vector`` product (the vectorised hot path the
HPC guides prescribe), and storage/ranking delegate to
:class:`repro.search.index.VectorIndex`: adds are amortized O(1)
(capacity-doubling instead of the old per-add ``np.vstack``, which made
building an n-item index O(n²)), removes are O(1) tombstones, and top-k
uses ``np.argpartition`` instead of a full sort.  Mirrors Laminar's flow
exactly: descriptions are embedded once at registration, queries at
search time, ranking by cosine.

Pass a :class:`repro.search.index.TwoStageIndex` as ``index`` to trade
exactness for speed at large corpus sizes (LSH candidates → exact
rerank; see ``docs/guide.md`` §"Search at scale").
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.models.embedder import UniXcoderEmbedder
from repro.search.index.vector import VectorIndex

__all__ = ["SemanticSearch"]


class SemanticSearch:
    """Incremental cosine search index over text descriptions."""

    def __init__(
        self,
        embedder: UniXcoderEmbedder | None = None,
        index: Any | None = None,
    ) -> None:
        self.embedder = embedder or UniXcoderEmbedder()
        # Any object with the VectorIndex search/mutation surface works
        # (VectorIndex for exact search, TwoStageIndex for ANN).
        self.index = index if index is not None else VectorIndex(self.embedder.dim)
        if self.index.dim != self.embedder.dim:
            raise ValueError(
                f"index dim {self.index.dim} != embedder dim {self.embedder.dim}"
            )

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, item_id: Any) -> bool:
        return item_id in self.index

    def add(self, item_id: Any, description: str) -> None:
        """Index (or re-index) one item's description."""
        self.index.add(item_id, self.embedder.encode(description)[0])

    def add_precomputed(self, item_id: Any, vector: list[float]) -> None:
        """Index an item whose embedding was computed earlier (registry)."""
        self.index.add(item_id, np.asarray(vector, dtype=np.float32))

    def add_precomputed_batch(
        self, item_ids: list[Any], vectors: np.ndarray
    ) -> None:
        """Bulk-index precomputed embeddings (one allocation for the batch)."""
        self.index.add_batch(item_ids, vectors)

    def remove(self, item_id: Any) -> bool:
        """Drop one item; returns False when absent."""
        return self.index.remove(item_id)

    def search(self, query: str, top_k: int = 5) -> list[tuple[Any, float]]:
        """Top ``top_k`` ``(item_id, cosine)`` pairs for a text query."""
        if not len(self.index):
            return []
        return self.index.search_vector(self.embedder.encode(query)[0], top_k=top_k)

    def search_batch(
        self, queries: list[str], top_k: int = 5
    ) -> list[list[tuple[Any, float]]]:
        """Top-k results for many text queries in one matrix product."""
        if not queries:
            return []
        if not len(self.index):
            return [[] for _ in queries]
        return self.index.search_batch(self.embedder.encode(queries), top_k=top_k)
