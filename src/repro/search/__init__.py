"""Search front-ends: literal, semantic (text-to-code) and code-to-code.

These are the three search families of the paper's §II-D/§V, packaged as
standalone engines over any collection of named, described, code-bearing
items — the Laminar server's registry uses them, and so can user code
operating on plain lists (see ``examples/search_showcase.py``).

* :class:`repro.search.literal.LiteralSearch` — substring matching over
  names and descriptions (§V-A).
* :class:`repro.search.semantic.SemanticSearch` — embedding cosine over
  descriptions (§V-B), with incremental add/remove.
* :class:`repro.search.code.CodeSearch` — structural SPT-overlap search
  with Laminar's top-5/threshold-6.0 defaults, plus the ReACC 'llm'
  fallback (§VI-A).

The scale substrate underneath them lives in :mod:`repro.search.index`:
an amortized-growth exact :class:`~repro.search.index.VectorIndex`, a
persisted/memmap warm-start format, and the two-stage
LSH-candidates → exact-rerank :class:`~repro.search.index.TwoStageIndex`.
"""

from repro.search.literal import LiteralSearch
from repro.search.semantic import SemanticSearch
from repro.search.code import CodeSearch
from repro.search.index import TwoStageIndex, VectorIndex

__all__ = [
    "LiteralSearch",
    "SemanticSearch",
    "CodeSearch",
    "VectorIndex",
    "TwoStageIndex",
]
