"""Versioned on-disk persistence for :class:`VectorIndex`.

A saved index is a directory of two files:

* ``vectors.npy`` — the live (compacted) vector matrix, ``(count, dim)``
  float32 in standard NumPy format, loadable with ``np.memmap`` so a
  restarting server pages vectors in lazily instead of re-embedding or
  re-parsing the registry;
* ``manifest.json`` — format name/version, shape, dtype, the item ids in
  row order, and a sha256 checksum over the vector bytes.

Loads are *loud*: an unreadable manifest, unsupported version, shape or
dtype mismatch, truncated vector file, or checksum failure raises
:class:`IndexPersistenceError` with a structured ``reason`` — callers
(the registry service) fall back to rebuilding from their source of
truth rather than silently serving an empty or corrupt index.  This is
the same failure philosophy as the transport's frame decoding.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.search.index.vector import VectorIndex

__all__ = [
    "IndexPersistenceError",
    "save_index",
    "load_index",
    "manifest_info",
    "FORMAT_NAME",
    "FORMAT_VERSION",
]

FORMAT_NAME = "repro-vector-index"
FORMAT_VERSION = 1

LSH_FORMAT_NAME = "repro-lsh-buckets"
LSH_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_VECTORS = "vectors.npy"
_LSH = "lsh.json"


class IndexPersistenceError(Exception):
    """A persisted index could not be written or read back.

    ``reason`` is a stable machine-readable slug (``missing``,
    ``bad-manifest``, ``version``, ``shape``, ``checksum``, ...);
    ``detail`` is the human explanation.
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


def _checksum(matrix: np.ndarray) -> str:
    return "sha256:" + hashlib.sha256(
        np.ascontiguousarray(matrix, dtype=np.float32).tobytes()
    ).hexdigest()


def save_index(index, path: str | Path) -> dict:
    """Write ``index`` under directory ``path``; returns the manifest.

    Accepts a plain :class:`VectorIndex` or a
    :class:`~repro.search.index.twostage.TwoStageIndex` — for the
    latter, the LSH bucket maps are persisted alongside the vectors in
    ``lsh.json`` (the hyperplanes regenerate from the stored seed), so a
    warm start skips the in-memory LSH rebuild entirely.

    The index is compacted first so the file holds only live rows; ids
    must be JSON-serializable (ints and strings are — registry ids are
    ints).  Existing files at ``path`` are overwritten atomically
    (write-then-rename), so a crashed save never corrupts a good index.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    two_stage = None
    if hasattr(index, "exact") and hasattr(index, "lsh"):
        two_stage, index = index, index.exact
    index.compact()
    count = len(index)
    matrix = np.ascontiguousarray(
        index._matrix[:count], dtype=np.float32
    )
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "count": count,
        "dim": index.dim,
        "dtype": "float32",
        "ids": index.ids,
        "checksum": _checksum(matrix),
    }
    try:
        json.dumps(manifest["ids"])
    except (TypeError, ValueError) as exc:
        raise IndexPersistenceError(
            "unserializable-ids", f"item ids are not JSON-safe: {exc}"
        ) from exc
    lsh_doc = None
    if two_stage is not None:
        lsh_doc = {
            "format": LSH_FORMAT_NAME,
            "version": LSH_FORMAT_VERSION,
            "bands": two_stage.lsh.bands,
            "rows": two_stage.lsh.rows,
            "seed": two_stage.lsh.seed,
            "candidate_multiplier": two_stage.candidate_multiplier,
            "keys": two_stage.lsh.export_keys(),
        }
        manifest["lsh"] = {k: lsh_doc[k] for k in ("bands", "rows", "seed")}
    tmp_vec = path / (_VECTORS + ".tmp")
    tmp_man = path / (_MANIFEST + ".tmp")
    with open(tmp_vec, "wb") as fh:  # file object: np.save won't add .npy
        np.save(fh, matrix)
    tmp_man.write_text(json.dumps(manifest, indent=1))
    tmp_vec.replace(path / _VECTORS)
    tmp_man.replace(path / _MANIFEST)
    lsh_path = path / _LSH
    if lsh_doc is not None:
        tmp_lsh = path / (_LSH + ".tmp")
        tmp_lsh.write_text(json.dumps(lsh_doc))
        tmp_lsh.replace(lsh_path)
    elif lsh_path.exists():
        # A plain index saved over a two-stage one: drop the stale
        # sidecar so the next load doesn't resurrect old bucket maps.
        lsh_path.unlink()
    return manifest


def manifest_info(path: str | Path) -> dict:
    """Parse and structurally validate the manifest under ``path``."""
    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise IndexPersistenceError(
            "missing", f"no index manifest at {manifest_path}"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexPersistenceError(
            "bad-manifest", f"cannot parse {manifest_path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise IndexPersistenceError(
            "bad-manifest", f"{manifest_path} is not a {FORMAT_NAME} manifest"
        )
    if manifest.get("version") != FORMAT_VERSION:
        raise IndexPersistenceError(
            "version",
            f"index version {manifest.get('version')!r} unsupported "
            f"(expected {FORMAT_VERSION})",
        )
    for key in ("count", "dim", "ids", "checksum", "dtype"):
        if key not in manifest:
            raise IndexPersistenceError(
                "bad-manifest", f"manifest missing key {key!r}"
            )
    if len(manifest["ids"]) != manifest["count"]:
        raise IndexPersistenceError(
            "bad-manifest",
            f"manifest lists {len(manifest['ids'])} ids "
            f"but count={manifest['count']}",
        )
    return manifest


def load_index(path: str | Path, mmap: bool = True, verify: bool = True):
    """Load a persisted index from directory ``path``.

    Returns a :class:`VectorIndex`, or a
    :class:`~repro.search.index.twostage.TwoStageIndex` when an
    ``lsh.json`` sidecar is present — the bucket maps are read back
    as-is (no projection pass), so the warm start costs one JSON parse
    instead of an O(items × dim) rebuild.

    ``mmap=True`` maps the vector file read-only — queries page in only
    the rows they touch, and the first mutation copies the matrix into
    writable memory.  ``verify=True`` checks the sha256 checksum (one
    sequential pass; disable only for benchmarks that measure pure map
    time).
    """
    path = Path(path)
    manifest = manifest_info(path)
    vectors_path = path / _VECTORS
    if not vectors_path.exists():
        raise IndexPersistenceError("missing", f"no vector file at {vectors_path}")
    try:
        matrix = np.load(vectors_path, mmap_mode="r" if mmap else None)
    except (OSError, ValueError) as exc:
        raise IndexPersistenceError(
            "bad-vectors", f"cannot load {vectors_path}: {exc}"
        ) from exc
    if matrix.ndim != 2 or matrix.shape != (manifest["count"], manifest["dim"]):
        raise IndexPersistenceError(
            "shape",
            f"vector file is {matrix.shape}, manifest says "
            f"({manifest['count']}, {manifest['dim']})",
        )
    if str(matrix.dtype) != manifest["dtype"]:
        raise IndexPersistenceError(
            "dtype",
            f"vector file dtype {matrix.dtype}, manifest says "
            f"{manifest['dtype']}",
        )
    if verify and _checksum(matrix) != manifest["checksum"]:
        raise IndexPersistenceError(
            "checksum", f"vector bytes do not match manifest checksum at {path}"
        )
    index = _attach(manifest, matrix, readonly=mmap)
    lsh_path = path / _LSH
    if lsh_path.exists():
        return _attach_lsh(lsh_path, manifest, index)
    return index


def _attach_lsh(lsh_path: Path, manifest: dict, index: VectorIndex):
    """Wrap a loaded exact index into a TwoStageIndex from ``lsh.json``."""
    from repro.search.index.twostage import TwoStageIndex

    try:
        doc = json.loads(lsh_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexPersistenceError(
            "bad-lsh", f"cannot parse {lsh_path}: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("format") != LSH_FORMAT_NAME:
        raise IndexPersistenceError(
            "bad-lsh", f"{lsh_path} is not a {LSH_FORMAT_NAME} document"
        )
    if doc.get("version") != LSH_FORMAT_VERSION:
        raise IndexPersistenceError(
            "version",
            f"lsh sidecar version {doc.get('version')!r} unsupported "
            f"(expected {LSH_FORMAT_VERSION})",
        )
    for key in ("bands", "rows", "seed", "keys"):
        if key not in doc:
            raise IndexPersistenceError("bad-lsh", f"lsh sidecar missing {key!r}")
    stored_ids = {_id_key(entry[0]) for entry in doc["keys"]}
    manifest_ids = {_id_key(i) for i in manifest["ids"]}
    if stored_ids != manifest_ids:
        raise IndexPersistenceError(
            "lsh-mismatch",
            f"lsh sidecar covers {len(stored_ids)} ids but the manifest "
            f"lists {len(manifest_ids)} — the sidecar is stale",
        )
    two_stage = TwoStageIndex(
        int(manifest["dim"]),
        bands=int(doc["bands"]),
        rows=int(doc["rows"]),
        seed=int(doc["seed"]),
        candidate_multiplier=int(doc.get("candidate_multiplier", 4)),
    )
    two_stage.exact = index
    try:
        two_stage.lsh.load_keys(doc["keys"])
    except (ValueError, TypeError) as exc:
        raise IndexPersistenceError(
            "bad-lsh", f"invalid band keys in {lsh_path}: {exc}"
        ) from exc
    return two_stage


def _attach(manifest: dict, matrix: np.ndarray, readonly: bool) -> VectorIndex:
    """Build a VectorIndex around an already-validated matrix."""
    ids: list[Any] = list(manifest["ids"])
    if len(set(map(_id_key, ids))) != len(ids):
        raise IndexPersistenceError("bad-manifest", "duplicate ids in manifest")
    index = VectorIndex(int(manifest["dim"]))
    count = int(manifest["count"])
    if count == 0:
        return index
    index._matrix = matrix if readonly else np.array(matrix, dtype=np.float32)
    index._valid = np.ones(count, dtype=bool)
    index._ids = ids
    index._row_of = {item: row for row, item in enumerate(ids)}
    index._used = count
    index._readonly = bool(readonly)
    return index


def _id_key(item: Any) -> Any:
    # Lists/dicts are not hashable; ids that survive json round-trips are.
    return json.dumps(item, sort_keys=True) if isinstance(item, (list, dict)) else item
