"""Random-hyperplane (SimHash) LSH over dense vectors.

Candidate generation for the two-stage ANN pipeline: each vector is
signed against ``bands * rows`` seeded Gaussian hyperplanes; the sign
bits are cut into ``bands`` keys of ``rows`` bits each, and a vector is
a candidate for a query when they share at least one band key.

For two vectors at angle θ each bit agrees with probability
``1 − θ/π`` (Goemans–Williamson), so a band of ``rows`` bits collides
with probability ``(1 − θ/π)^rows`` and the index recalls a neighbour
with probability ``1 − (1 − p^rows)^bands`` — more bands raise recall,
more rows shrink the candidate set.  The defaults (12 bands × 10 rows)
keep candidate sets near 1–2 % of a large corpus while recalling
high-cosine neighbours with probability > 0.95.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

import numpy as np

__all__ = ["RandomHyperplaneLSH"]


class RandomHyperplaneLSH:
    """Banded sign-bit LSH for cosine similarity.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    bands, rows:
        Band count and bits per band (signature is ``bands * rows`` bits).
    seed:
        Seed for the Gaussian hyperplanes; equal seeds give equal keys.
    """

    def __init__(
        self, dim: int, bands: int = 12, rows: int = 10, seed: int = 2024
    ) -> None:
        if bands <= 0 or rows <= 0:
            raise ValueError("bands and rows must be positive")
        self.dim = int(dim)
        self.bands = int(bands)
        self.rows = int(rows)
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        self._planes = rng.standard_normal(
            (self.bands * self.rows, self.dim)
        ).astype(np.float32)
        self._buckets: list[dict[bytes, set[Any]]] = [
            defaultdict(set) for _ in range(self.bands)
        ]
        self._keys_of: dict[Any, list[bytes]] = {}

    def __len__(self) -> int:
        return len(self._keys_of)

    def __contains__(self, item_id: Any) -> bool:
        return item_id in self._keys_of

    def _band_keys(self, vectors: np.ndarray) -> np.ndarray:
        """Packed band keys, shape ``(n, bands)`` of ``bytes`` objects."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        bits = (vectors @ self._planes.T) >= 0  # (n, bands*rows) bool
        packed = np.packbits(
            bits.reshape(vectors.shape[0], self.bands, self.rows),
            axis=2,
        )  # (n, bands, ceil(rows/8)) uint8
        return packed

    def add(self, item_id: Any, vector: Sequence[float] | np.ndarray) -> None:
        """Index (or re-index) one vector; stale band entries are removed."""
        if item_id in self._keys_of:
            self.remove(item_id)
        keys = self._band_keys(np.asarray(vector))[0]
        stored = []
        for band in range(self.bands):
            key = keys[band].tobytes()
            self._buckets[band][key].add(item_id)
            stored.append(key)
        self._keys_of[item_id] = stored

    def add_batch(self, item_ids: Sequence[Any], vectors: np.ndarray) -> None:
        """Index many vectors with one projection pass."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(item_ids) != vectors.shape[0]:
            raise ValueError(
                f"{len(item_ids)} ids but {vectors.shape[0]} vectors"
            )
        all_keys = self._band_keys(vectors)
        for i, item_id in enumerate(item_ids):
            if item_id in self._keys_of:
                self.remove(item_id)
            stored = []
            for band in range(self.bands):
                key = all_keys[i, band].tobytes()
                self._buckets[band][key].add(item_id)
                stored.append(key)
            self._keys_of[item_id] = stored

    def remove(self, item_id: Any) -> bool:
        """Drop one item from every band bucket; False when absent."""
        keys = self._keys_of.pop(item_id, None)
        if keys is None:
            return False
        for band, key in enumerate(keys):
            bucket = self._buckets[band].get(key)
            if bucket is not None:
                bucket.discard(item_id)
                if not bucket:
                    del self._buckets[band][key]
        return True

    def clear(self) -> None:
        """Drop every item."""
        self._buckets = [defaultdict(set) for _ in range(self.bands)]
        self._keys_of = {}

    # -- persistence ----------------------------------------------------------

    def export_keys(self) -> list[list]:
        """Every item's band keys as ``[item_id, [hex, ...]]`` pairs.

        The hyperplanes themselves need no export: they regenerate
        deterministically from ``seed``, so the bucket maps are the only
        state a warm start has to read back.
        """
        return [
            [item_id, [key.hex() for key in keys]]
            for item_id, keys in self._keys_of.items()
        ]

    def load_keys(self, entries: Sequence[Sequence]) -> None:
        """Rebuild the bucket maps from :meth:`export_keys` output.

        Skips the projection pass entirely — this is what makes warm
        starts cheap.  Entries must come from an index with the same
        ``bands``/``rows``/``seed`` (the persistence layer verifies).
        """
        self.clear()
        for item_id, hex_keys in entries:
            if len(hex_keys) != self.bands:
                raise ValueError(
                    f"item {item_id!r} has {len(hex_keys)} band keys, "
                    f"expected {self.bands}"
                )
            stored = []
            for band, hex_key in enumerate(hex_keys):
                key = bytes.fromhex(hex_key)
                self._buckets[band][key].add(item_id)
                stored.append(key)
            self._keys_of[item_id] = stored

    def candidates(self, vector: Sequence[float] | np.ndarray) -> set[Any]:
        """Items sharing at least one band key with the query vector."""
        keys = self._band_keys(np.asarray(vector))[0]
        found: set[Any] = set()
        for band in range(self.bands):
            found |= self._buckets[band].get(keys[band].tobytes(), set())
        return found

    def candidates_batch(self, vectors: np.ndarray) -> list[set[Any]]:
        """Candidate sets for every query row (one projection pass)."""
        all_keys = self._band_keys(vectors)
        out = []
        for i in range(all_keys.shape[0]):
            found: set[Any] = set()
            for band in range(self.bands):
                found |= self._buckets[band].get(
                    all_keys[i, band].tobytes(), set()
                )
            out.append(found)
        return out
