"""Two-stage approximate search: LSH candidates → exact cosine rerank.

The FAISS-style retrieval shape (candidate generation, then exact
scoring on the shortlist) over the zero-dependency pieces in this
package: :class:`RandomHyperplaneLSH` proposes a candidate set in O(1)
bucket lookups, :class:`VectorIndex` reranks only those rows exactly.

Two knobs trade recall against speed:

* ``bands`` / ``rows`` — the LSH banding (see :mod:`.lsh`): more bands
  raise the chance a true neighbour lands in the candidate set, more
  rows shrink the set.
* ``candidate_multiplier`` — when LSH proposes fewer than
  ``top_k * candidate_multiplier`` candidates the query falls back to
  the exact full scan, so sparse bucket regions degrade to correct (not
  empty) results; the fallback count is visible in :meth:`stats`.

Reranked scores are *exact* cosines — two-stage results are always a
subset of the exact ranking with identical scores, the property the
test suite checks.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.search.index.lsh import RandomHyperplaneLSH
from repro.search.index.vector import VectorIndex

__all__ = ["TwoStageIndex"]


class TwoStageIndex:
    """ANN index: banded hyperplane LSH in front of an exact rerank."""

    def __init__(
        self,
        dim: int,
        bands: int = 12,
        rows: int = 10,
        seed: int = 2024,
        candidate_multiplier: int = 4,
    ) -> None:
        self.exact = VectorIndex(dim)
        self.lsh = RandomHyperplaneLSH(dim, bands=bands, rows=rows, seed=seed)
        self.candidate_multiplier = max(int(candidate_multiplier), 1)
        self._queries = 0
        self._fallbacks = 0
        self._candidates_seen = 0

    @property
    def dim(self) -> int:
        return self.exact.dim

    @property
    def ids(self) -> list:
        """Live item ids, in exact-stage row order."""
        return self.exact.ids

    def compact(self) -> None:
        """Compact the exact stage (the LSH maps hold no dead entries)."""
        self.exact.compact()

    def __len__(self) -> int:
        return len(self.exact)

    def __contains__(self, item_id: Any) -> bool:
        return item_id in self.exact

    # -- mutation ------------------------------------------------------------

    def add(self, item_id: Any, vector: Sequence[float] | np.ndarray) -> None:
        """Insert or update one item in both stages."""
        self.exact.add(item_id, vector)
        # Hash the *normalized* stored vector so signatures are scale-free.
        self.lsh.add(item_id, self.exact.vector(item_id))

    def add_batch(self, item_ids: Sequence[Any], vectors: np.ndarray) -> None:
        """Insert many items with one normalize and one projection pass."""
        self.exact.add_batch(item_ids, vectors)
        rows = [self.exact._row_of[i] for i in item_ids if i in self.exact]
        self.lsh.add_batch(
            [i for i in item_ids if i in self.exact],
            self.exact._matrix[rows],
        )

    def remove(self, item_id: Any) -> bool:
        """Drop one item from both stages; False when absent."""
        removed = self.exact.remove(item_id)
        self.lsh.remove(item_id)
        return removed

    def clear(self) -> None:
        self.exact.clear()
        self.lsh.clear()

    # -- search --------------------------------------------------------------

    def search_vector(
        self, vector: Sequence[float] | np.ndarray, top_k: int = 5
    ) -> list[tuple[Any, float]]:
        """Top-``top_k`` by exact cosine over the LSH candidate set."""
        if not len(self.exact):
            return []
        self._queries += 1
        candidates = self.lsh.candidates(np.asarray(vector))
        if len(candidates) < top_k * self.candidate_multiplier:
            self._fallbacks += 1
            return self.exact.search_vector(vector, top_k=top_k)
        self._candidates_seen += len(candidates)
        return self.exact.search_subset(vector, candidates, top_k=top_k)

    def search_batch(
        self, vectors: np.ndarray, top_k: int = 5
    ) -> list[list[tuple[Any, float]]]:
        """Batched two-stage search (one projection pass for all queries)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if not len(self.exact):
            return [[] for _ in range(vectors.shape[0])]
        candidate_sets = self.lsh.candidates_batch(vectors)
        out: list[list[tuple[Any, float]]] = []
        floor = top_k * self.candidate_multiplier
        for i, candidates in enumerate(candidate_sets):
            self._queries += 1
            if len(candidates) < floor:
                self._fallbacks += 1
                out.append(self.exact.search_vector(vectors[i], top_k=top_k))
            else:
                self._candidates_seen += len(candidates)
                out.append(
                    self.exact.search_subset(vectors[i], candidates, top_k=top_k)
                )
        return out

    def stats(self) -> dict:
        """Exact-stage occupancy plus candidate/fallback accounting."""
        reranked = self._queries - self._fallbacks
        return {
            **self.exact.stats(),
            "bands": self.lsh.bands,
            "rows": self.lsh.rows,
            "candidate_multiplier": self.candidate_multiplier,
            "queries": self._queries,
            "fallbacks": self._fallbacks,
            "mean_candidates": (
                round(self._candidates_seen / reranked, 1) if reranked else 0.0
            ),
        }
