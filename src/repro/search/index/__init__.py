"""``repro.search.index`` — the scalable vector-index subsystem.

The single retrieval substrate behind semantic text-to-code search and
code recommendation at corpus scale (ROADMAP: "search at millions of
snippets"):

* :class:`VectorIndex` — flat exact cosine index: amortized-growth
  float32 storage, tombstone O(1) remove, ``argpartition`` top-k for
  single and batched queries.
* :func:`save_index` / :func:`load_index` — versioned ``.npy`` +
  JSON-manifest persistence with ``np.memmap`` warm starts, sha256
  checksums and loud :class:`IndexPersistenceError` failures.
* :class:`RandomHyperplaneLSH` — banded SimHash candidate generation.
* :class:`TwoStageIndex` — LSH candidates → exact rerank, the FAISS
  two-stage idiom with recall/latency knobs.
"""

from repro.search.index.lsh import RandomHyperplaneLSH
from repro.search.index.persist import (
    IndexPersistenceError,
    load_index,
    manifest_info,
    save_index,
)
from repro.search.index.twostage import TwoStageIndex
from repro.search.index.vector import VectorIndex

__all__ = [
    "VectorIndex",
    "TwoStageIndex",
    "RandomHyperplaneLSH",
    "IndexPersistenceError",
    "save_index",
    "load_index",
    "manifest_info",
]
