"""Flat vector index with amortized growth and tombstone removal.

The retrieval substrate behind semantic text-to-code search (§V-B) at
registry scale.  Three properties distinguish it from the naive
matrix-per-add approach it replaces:

* **Amortized O(1) add** — vectors live in a pre-allocated float32
  matrix that doubles capacity when full, so building an index of *n*
  items costs O(n) total instead of the O(n²) of per-add ``np.vstack``.
* **O(1) remove** — removed rows are tombstoned (masked out of search)
  rather than deleted, so no O(n) row renumbering; the matrix is
  compacted in one pass when tombstones outnumber live rows.
* **Batched top-k** — queries use ``np.argpartition`` (O(n) selection)
  instead of a full O(n log n) sort, for one query or a whole batch in
  a single matrix product.

Vectors are L2-normalized float32 rows, so every score is a cosine.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = ["VectorIndex"]

#: Initial row capacity of a fresh index.
_MIN_CAPACITY = 64


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize rows in place-friendly float32 (zero rows stay zero)."""
    matrix = np.ascontiguousarray(matrix, dtype=np.float32)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    np.maximum(norms, 1e-12, out=norms)
    return matrix / norms


class VectorIndex:
    """Incremental cosine index over dense vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality; every added vector must match.
    capacity:
        Initial row capacity (grows by doubling as needed).
    """

    def __init__(self, dim: int, capacity: int = _MIN_CAPACITY) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        capacity = max(int(capacity), _MIN_CAPACITY)
        self._matrix = np.zeros((capacity, self.dim), dtype=np.float32)
        self._valid = np.zeros(capacity, dtype=bool)
        self._ids: list[Any] = []  # row -> item id (tombstones keep theirs)
        self._row_of: dict[Any, int] = {}  # live item id -> row
        self._used = 0  # high-water mark of allocated rows
        self._reallocations = 0
        self._compactions = 0
        #: True while the matrix is a read-only memmap (warm start); the
        #: first mutation materializes it into writable memory.
        self._readonly = False

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, item_id: Any) -> bool:
        return item_id in self._row_of

    @property
    def ids(self) -> list[Any]:
        """Live item ids in insertion order."""
        return [i for i in self._ids if i in self._row_of]

    def vector(self, item_id: Any) -> np.ndarray:
        """The stored (normalized) vector of one live item."""
        return np.array(self._matrix[self._row_of[item_id]])

    def stats(self) -> dict:
        """Size/occupancy counters for observability and tests."""
        return {
            "items": len(self._row_of),
            "dim": self.dim,
            "capacity": int(self._matrix.shape[0]),
            "used_rows": self._used,
            "tombstones": self._used - len(self._row_of),
            "reallocations": self._reallocations,
            "compactions": self._compactions,
            "memory_bytes": int(self._matrix.nbytes),
            "readonly": self._readonly,
        }

    # -- mutation ------------------------------------------------------------

    def _ensure_writable(self) -> None:
        if self._readonly:
            self._matrix = np.array(self._matrix, dtype=np.float32)
            self._readonly = False

    def _grow_to(self, rows_needed: int) -> None:
        capacity = self._matrix.shape[0]
        if rows_needed <= capacity:
            return
        capacity = max(capacity, _MIN_CAPACITY)
        while capacity < rows_needed:
            capacity *= 2
        matrix = np.zeros((capacity, self.dim), dtype=np.float32)
        matrix[: self._used] = self._matrix[: self._used]
        valid = np.zeros(capacity, dtype=bool)
        valid[: self._used] = self._valid[: self._used]
        self._matrix, self._valid = matrix, valid
        self._reallocations += 1
        self._readonly = False

    def add(self, item_id: Any, vector: Sequence[float] | np.ndarray) -> None:
        """Insert (or update in place) one item's vector."""
        arr = np.asarray(vector, dtype=np.float32).reshape(-1)
        if arr.shape[0] != self.dim:
            raise ValueError(
                f"vector has dim {arr.shape[0]}, index has dim {self.dim}"
            )
        norm = float(np.linalg.norm(arr))
        if norm > 0:
            arr = arr / norm
        self._ensure_writable()
        row = self._row_of.get(item_id)
        if row is not None:
            self._matrix[row] = arr
            return
        self._grow_to(self._used + 1)
        row = self._used
        self._matrix[row] = arr
        self._valid[row] = True
        self._ids.append(item_id)
        self._row_of[item_id] = row
        self._used += 1

    def add_batch(
        self, item_ids: Sequence[Any], vectors: np.ndarray
    ) -> None:
        """Insert many items at once (one allocation, one normalize pass).

        Ids already present are updated in place; new ids are appended in
        order.  Duplicate ids *within* the batch keep the last vector.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(item_ids) != vectors.shape[0]:
            raise ValueError(
                f"{len(item_ids)} ids but {vectors.shape[0]} vectors"
            )
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"vectors have dim {vectors.shape[1]}, index has dim {self.dim}"
            )
        vectors = _normalize_rows(vectors)
        self._ensure_writable()
        fresh = [i for i, item in enumerate(item_ids) if item not in self._row_of]
        self._grow_to(self._used + len(fresh))
        for i, item_id in enumerate(item_ids):
            row = self._row_of.get(item_id)
            if row is None:
                row = self._used
                self._valid[row] = True
                self._ids.append(item_id)
                self._row_of[item_id] = row
                self._used += 1
            self._matrix[row] = vectors[i]

    def remove(self, item_id: Any) -> bool:
        """Tombstone one item; returns False when absent.

        O(1): the row is masked out of search and compacted away later,
        instead of the O(n) delete-and-renumber of the flat index.
        """
        row = self._row_of.pop(item_id, None)
        if row is None:
            return False
        self._ensure_writable()
        self._valid[row] = False
        self._matrix[row] = 0.0
        live = len(self._row_of)
        if self._used >= 2 * _MIN_CAPACITY and live < self._used // 2:
            self.compact()
        return True

    def compact(self) -> None:
        """Rewrite storage with tombstones dropped (insertion order kept)."""
        self._ensure_writable()
        live_ids = [i for i in self._ids if i in self._row_of]
        rows = [self._row_of[i] for i in live_ids]
        matrix = np.zeros_like(self._matrix)
        matrix[: len(rows)] = self._matrix[rows]
        self._matrix = matrix
        self._valid[:] = False
        self._valid[: len(rows)] = True
        self._ids = live_ids
        self._row_of = {item: r for r, item in enumerate(live_ids)}
        self._used = len(live_ids)
        self._compactions += 1

    def clear(self) -> None:
        """Drop every item, keeping allocated capacity."""
        self._ensure_writable()
        self._valid[:] = False
        self._ids = []
        self._row_of = {}
        self._used = 0

    # -- search --------------------------------------------------------------

    def _top_k_from_sims(self, sims: np.ndarray, top_k: int) -> list[tuple[Any, float]]:
        """Select top-k rows of one similarity column, masked and ordered.

        ``argpartition`` gives O(n) selection; only the k winners are then
        sorted, with ties broken by row (= insertion) order so results are
        deterministic and match the old stable-argsort behaviour.
        """
        sims = np.where(self._valid[: self._used], sims, -np.inf)
        k = min(top_k, len(self._row_of))
        if k <= 0:
            return []
        if k < sims.shape[0]:
            top = np.argpartition(-sims, k - 1)[:k]
        else:
            top = np.arange(sims.shape[0])
        order = top[np.lexsort((top, -sims[top]))]
        return [
            (self._ids[i], float(sims[i]))
            for i in order
            if np.isfinite(sims[i])
        ]

    def search_vector(
        self, vector: Sequence[float] | np.ndarray, top_k: int = 5
    ) -> list[tuple[Any, float]]:
        """Top-``top_k`` ``(item_id, cosine)`` pairs for one query vector."""
        if not self._row_of:
            return []
        q = np.asarray(vector, dtype=np.float32).reshape(-1)
        norm = float(np.linalg.norm(q))
        if norm > 0:
            q = q / norm
        sims = self._matrix[: self._used] @ q
        return self._top_k_from_sims(sims, top_k)

    def search_batch(
        self, vectors: np.ndarray, top_k: int = 5
    ) -> list[list[tuple[Any, float]]]:
        """Top-k results for every row of ``vectors`` in one matrix product."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if not self._row_of:
            return [[] for _ in range(vectors.shape[0])]
        queries = _normalize_rows(vectors)
        # (used, n_queries) — one GEMM for the whole batch.
        sims = self._matrix[: self._used] @ queries.T
        return [
            self._top_k_from_sims(sims[:, j], top_k)
            for j in range(queries.shape[0])
        ]

    def search_subset(
        self,
        vector: Sequence[float] | np.ndarray,
        candidate_ids: Sequence[Any],
        top_k: int = 5,
    ) -> list[tuple[Any, float]]:
        """Exact top-k restricted to ``candidate_ids`` (the rerank stage).

        Unknown or tombstoned candidates are ignored.  Ties break by
        insertion order, matching :meth:`search_vector`.
        """
        rows = [
            self._row_of[c] for c in candidate_ids if c in self._row_of
        ]
        if not rows:
            return []
        rows = np.asarray(sorted(rows), dtype=np.int64)
        q = np.asarray(vector, dtype=np.float32).reshape(-1)
        norm = float(np.linalg.norm(q))
        if norm > 0:
            q = q / norm
        sims = self._matrix[rows] @ q
        k = min(top_k, rows.shape[0])
        if k <= 0:
            return []
        if k < sims.shape[0]:
            top = np.argpartition(-sims, k - 1)[:k]
        else:
            top = np.arange(sims.shape[0])
        order = top[np.lexsort((rows[top], -sims[top]))]
        return [(self._ids[rows[i]], float(sims[i])) for i in order]
