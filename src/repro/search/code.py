"""Code-to-code search front-end (paper §VI-A).

Wraps the two retrieval back-ends behind one interface:

* ``spt`` (default) — SPT feature overlap against stored feature sets,
  Laminar's simplified Aroma with top-5 / threshold-6.0 defaults;
* ``llm`` — the ReACC dense retriever fallback
  (``--embedding_type llm`` in the paper's CLI).

The index is incremental (add/remove per registration event) and keeps
feature sets rather than a frozen matrix, trading a little per-query
speed for zero rebuild cost — the right trade at registry scale.  For
large read-mostly corpora, :class:`repro.aroma.index.AromaIndex` (sparse
matrix) or :class:`repro.aroma.lsh.MinHashLSHIndex` are the bulk engines.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.aroma.features import extract_features
from repro.aroma.spt import ParseFailure, python_to_spt
from repro.models.reacc import ReACCRetriever

__all__ = ["CodeSearch"]

DEFAULT_TOP_K = 5
DEFAULT_THRESHOLD = 6.0


class CodeSearch:
    """Incremental structural + dense code search index."""

    def __init__(self, reacc: ReACCRetriever | None = None) -> None:
        self.reacc = reacc or ReACCRetriever()
        self._features: dict[Any, frozenset[str]] = {}
        self._code: dict[Any, str] = {}

    def __len__(self) -> int:
        return len(self._features)

    def add(self, item_id: Any, code: str, features: dict | None = None) -> None:
        """Index one snippet; ``features`` may come precomputed (registry
        ``sptEmbedding``) to skip re-parsing."""
        if features is None:
            try:
                features = dict(extract_features(python_to_spt(code)))
            except ParseFailure:
                features = {}
        self._features[item_id] = frozenset(features)
        self._code[item_id] = code

    def remove(self, item_id: Any) -> bool:
        """Drop one snippet; returns whether it was indexed."""
        if item_id not in self._features:
            return False
        del self._features[item_id]
        del self._code[item_id]
        return True

    def search_spt(
        self,
        snippet: str,
        top_k: int = DEFAULT_TOP_K,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> list[tuple[Any, float]]:
        """Structural overlap search; raises ``ParseFailure`` on garbage."""
        query = frozenset(extract_features(python_to_spt(snippet)))
        scored = [
            (item_id, float(len(query & fs)))
            for item_id, fs in self._features.items()
        ]
        scored = [(i, s) for i, s in scored if s >= threshold]
        scored.sort(key=lambda t: (-t[1], str(t[0])))
        return scored[:top_k]

    def search_llm(
        self, snippet: str, top_k: int = DEFAULT_TOP_K, threshold: float = 0.1
    ) -> list[tuple[Any, float]]:
        """Dense (ReACC) search over the indexed code bodies."""
        if not self._code:
            return []
        ids = list(self._code)
        sims = self.reacc.similarity(snippet, [self._code[i] for i in ids])
        order = np.argsort(-sims, kind="stable")
        return [
            (ids[i], float(sims[i]))
            for i in order[:top_k]
            if sims[i] >= threshold
        ]

    def search(
        self, snippet: str, embedding_type: str = "spt", **kwargs: Any
    ) -> list[tuple[Any, float]]:
        """Dispatch on ``embedding_type`` ('spt' default, 'llm' fallback)."""
        if embedding_type == "spt":
            return self.search_spt(snippet, **kwargs)
        if embedding_type == "llm":
            return self.search_llm(snippet, **kwargs)
        raise ValueError(f"unknown embedding_type {embedding_type!r}")
