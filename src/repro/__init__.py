"""repro — a from-scratch reproduction of Laminar 2.0 (SC-W 2024).

Laminar 2.0 is a serverless framework for dispel4py streaming workflows
with deep-learning-style code search and Aroma structural code
recommendation.  The package is organised as:

* :mod:`repro.d4py` — the stream dataflow engine (PEs, workflow graphs,
  sequential / multiprocessing / dynamic mappings, simulated Redis broker).
* :mod:`repro.laminar` — the serverless framework: registry, server,
  execution engine, streaming transport, client API and CLI.
* :mod:`repro.models` — deterministic substitutes for the paper's language
  models (CodeT5 describer, UniXcoder embedder, ReACC code retriever).
* :mod:`repro.aroma` — the Aroma structural code search pipeline over
  simplified parse trees (SPTs), plus the MinHash-LSH extension.
* :mod:`repro.search` — literal / semantic / code search front-ends.
* :mod:`repro.datasets` — the synthetic CodeSearchNet-PE corpus generator.
* :mod:`repro.eval` — precision/recall machinery for the paper's figures.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "2.0.0"
