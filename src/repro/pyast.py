"""Serialized AST parsing/compilation.

CPython's AST constructor maintains per-interpreter recursion-depth
accounting that is not thread-safe in some 3.11.x releases: concurrent
``ast.parse``/``compile`` calls from server handler threads sporadically
raise ``SystemError: AST constructor recursion depth mismatch``.  Every
component that parses user code on a server thread (registry services,
the execution engine, SPT generation, the describer) routes through
these helpers, which serialize parsing under one process-wide lock —
parses are microseconds, so the lock is never contended meaningfully.
"""

from __future__ import annotations

import ast
import threading
from typing import Any

__all__ = ["parse", "compile_source"]

_lock = threading.Lock()


def parse(source: str, filename: str = "<unknown>", mode: str = "exec") -> ast.AST:
    """Thread-safe ``ast.parse``."""
    with _lock:
        return ast.parse(source, filename=filename, mode=mode)


def compile_source(source: Any, filename: str, mode: str):
    """Thread-safe ``compile`` (accepts source text or an AST)."""
    with _lock:
        return compile(source, filename, mode)
