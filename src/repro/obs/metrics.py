"""Thread-safe, process-aware metrics primitives.

The measurement substrate for the paper's evaluation (§IV): every
subsystem records into a :class:`MetricsRegistry` holding three metric
kinds —

* :class:`Counter` — monotonically increasing totals (requests, tasks,
  retries);
* :class:`Gauge` — instantaneous values (queue depth, busy workers),
  either set explicitly or read live through a callback;
* :class:`Histogram` — fixed-bucket latency/size distributions with
  streaming quantile estimates interpolated from the buckets.

Metrics are *families* identified by a name; a family with label names
hands out labelled children via :meth:`MetricFamily.labels` (the
Prometheus client idiom).  All mutation is lock-guarded per child, so
concurrent workers — the dynamic mapping's threads, the job pool — can
record without coordination.

Process-awareness: forked workers (the ``multi`` mapping) cannot share a
parent's registry, so :meth:`MetricsRegistry.snapshot` produces a
JSON-able dump and :meth:`MetricsRegistry.merge` folds such a dump back
into a live registry — counters and histograms add, gauges last-write.

No dependencies beyond the standard library.
"""

from __future__ import annotations

import json
import re
import threading
import time
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Prometheus' default latency buckets (seconds); +Inf is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing total."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value

    # -- merge support -------------------------------------------------------

    def _dump(self) -> float:
        return self.value

    def _absorb(self, dumped: float) -> None:
        self.inc(float(dumped))


class Gauge:
    """An instantaneous value: settable, or backed by a live callback."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value`` (clears any callback)."""
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make the gauge read live through ``fn`` at collection time."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        """The current value (calls the callback when one is bound)."""
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            return 0.0

    def _dump(self) -> float:
        return self.value

    def _absorb(self, dumped: float) -> None:
        self.set(float(dumped))


class Histogram:
    """A fixed-bucket distribution with streaming quantile estimates.

    ``buckets`` are the finite upper bounds; an implicit +Inf bucket
    catches everything beyond the last bound.  :meth:`quantile` is the
    streaming estimate: linear interpolation inside the bucket holding
    the requested rank — exact to within one bucket's width, constant
    memory no matter how many observations arrive.
    """

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._lock = threading.Lock()
        # One count per finite bound plus the +Inf bucket (non-cumulative).
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        # Linear scan beats bisect for the short bucket lists used here.
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall time of its block."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        """Total observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[int]:
        """Non-cumulative counts, one per finite bound plus +Inf."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate by in-bucket linear interpolation.

        Returns 0.0 with no observations.  For ranks landing in the +Inf
        bucket the last finite bound is returned (the estimate cannot
        exceed what the buckets resolve).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, count in enumerate(counts):
            prev_cumulative = cumulative
            cumulative += count
            if cumulative >= rank:
                if i >= len(self.bounds):  # +Inf bucket
                    return self.bounds[-1]
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i]
                if count == 0:
                    return upper
                fraction = (rank - prev_cumulative) / count
                return lower + fraction * (upper - lower)
        return self.bounds[-1]

    def _dump(self) -> dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def _absorb(self, dumped: dict) -> None:
        if tuple(dumped["bounds"]) != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        with self._lock:
            for i, c in enumerate(dumped["counts"]):
                self._counts[i] += int(c)
            self._sum += float(dumped["sum"])
            self._count += int(dumped["count"])


class _HistogramTimer:
    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its labelled children.

    With no label names the family has exactly one child (labelless);
    otherwise children are created on first :meth:`labels` call.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        if kind not in _METRIC_TYPES:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = _check_name(name)
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> Counter | Gauge | Histogram:
        if self.kind == "histogram":
            return Histogram(self.buckets)
        return _METRIC_TYPES[self.kind]()

    def labels(self, *values: Any, **kw: Any):
        """The child for one label-value combination (created on demand)."""
        if kw:
            if values:
                raise ValueError("pass label values positionally or by name")
            values = tuple(str(kw[name]) for name in self.labelnames)
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label value(s), "
                f"got {len(values)}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._new_child()
                self._children[values] = child
            return child

    def remove(self, *values: Any) -> bool:
        """Drop one labelled child (bounds cardinality for per-run labels)."""
        key = tuple(str(v) for v in values)
        with self._lock:
            return self._children.pop(key, None) is not None

    def collect(self) -> list[tuple[tuple[str, ...], Counter | Gauge | Histogram]]:
        """Stable-ordered ``(label_values, child)`` pairs."""
        with self._lock:
            return sorted(self._children.items())

    # Unlabelled convenience passthroughs -------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self.labels().set_function(fn)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value


class MetricsRegistry:
    """All metric families of one process (or one server)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # -- family constructors -------------------------------------------------

    def _get_or_create(
        self, name: str, kind: str, help: str, labelnames: Iterable[str], **kw: Any
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}"
                    )
                return family
            family = MetricFamily(name, kind, help=help, labelnames=labelnames, **kw)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._get_or_create(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._get_or_create(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Get or create a histogram family."""
        return self._get_or_create(
            name, "histogram", help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> MetricFamily | None:
        """Look up a family by name (``None`` when absent)."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- exposition ----------------------------------------------------------

    def render_text(self) -> str:
        """Prometheus text exposition of every family (see `repro.obs.expo`)."""
        from repro.obs.expo import render_text

        return render_text(self)

    def snapshot(self) -> dict:
        """JSON-able dump of every family, suitable for :meth:`merge`.

        Shape: ``{name: {type, help, labelnames, samples}}`` where each
        sample key is the JSON-encoded label-value list.
        """
        out: dict[str, dict] = {}
        for family in self.families():
            samples = {
                json.dumps(list(values)): child._dump()
                for values, child in family.collect()
            }
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dump (e.g. from a forked worker) in.

        Counters and histograms accumulate; gauges take the incoming
        value.  Families absent here are created from the dump.
        """
        for name, family_dump in snapshot.items():
            family = self._get_or_create(
                name,
                family_dump["type"],
                family_dump.get("help", ""),
                tuple(family_dump.get("labelnames", ())),
                **(
                    {"buckets": self._merge_bounds(family_dump)}
                    if family_dump["type"] == "histogram"
                    else {}
                ),
            )
            for key, dumped in family_dump.get("samples", {}).items():
                child = family.labels(*json.loads(key))
                child._absorb(dumped)

    @staticmethod
    def _merge_bounds(family_dump: dict) -> tuple[float, ...]:
        for dumped in family_dump.get("samples", {}).values():
            return tuple(dumped["bounds"])
        return DEFAULT_BUCKETS
