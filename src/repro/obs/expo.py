"""Prometheus text exposition: render a registry, parse it back.

:func:`render_text` produces the `text-based exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP`` / ``# TYPE`` headers followed by samples, histograms expanded
into cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.

:func:`parse_text` is the inverse for the subset this renderer emits; it
exists so tests (and the acceptance criterion) can verify the output
*parses* as exposition format rather than eyeballing it, and so the CLI
can pretty-print a remote server's metrics.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

__all__ = ["render_text", "parse_text"]


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _labels(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_text(registry: "MetricsRegistry") -> str:
    """Render every family of ``registry`` as Prometheus exposition text."""
    lines: list[str] = []
    for family in registry.families():
        help_text = family.help.replace("\\", r"\\").replace("\n", r"\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.collect():
            if family.kind in ("counter", "gauge"):
                labels = _labels(family.labelnames, values)
                lines.append(f"{family.name}{labels} {_fmt(child.value)}")
                continue
            # Histogram: cumulative buckets, then sum and count.
            counts = child.bucket_counts()
            cumulative = 0
            for bound, count in zip(
                list(child.bounds) + [math.inf], counts
            ):
                cumulative += count
                labels = _labels(
                    family.labelnames, values, extra=f'le="{_fmt(bound)}"'
                )
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
            labels = _labels(family.labelnames, values)
            lines.append(f"{family.name}_sum{labels} {_fmt(child.sum)}")
            lines.append(f"{family.name}_count{labels} {child.count}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_text(text: str) -> dict:
    """Parse exposition text into ``{name: {type, help, samples}}``.

    Each sample is ``(labels_dict, value)``.  Raises ``ValueError`` on a
    malformed line, making this the format validator the tests use.
    """
    families: dict[str, dict] = {}

    def family(name: str) -> dict:
        return families.setdefault(
            name, {"type": None, "help": "", "samples": []}
        )

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            family(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            family(name)["type"] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparsable sample {line!r}")
        labels_text = match.group("labels") or ""
        labels = {}
        consumed = 0
        for pair in _LABEL_PAIR_RE.finditer(labels_text):
            labels[pair.group(1)] = (
                pair.group(2)
                .replace(r"\n", "\n")
                .replace(r"\"", '"')
                .replace(r"\\", "\\")
            )
            consumed = pair.end()
        if labels_text[consumed:].strip(", "):
            raise ValueError(
                f"line {lineno}: malformed labels {labels_text!r}"
            )
        base = match.group("name")
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = base[: -len(suffix)] if base.endswith(suffix) else None
            if stripped and families.get(stripped, {}).get("type") == "histogram":
                base = stripped
                break
        family(base)["samples"].append(
            (match.group("name"), labels, _parse_value(match.group("value")))
        )
    return families
