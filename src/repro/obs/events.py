"""Structured log events: one line, machine-parseable key=value fields.

The jobs worker (and anything else emitting lifecycle log lines) routes
through :func:`format_event` so every record carries its identifying
fields — notably ``job_id`` and ``attempt``, which the free-text retry
messages used to drop.  The shape is::

    [jobs] event=retry job_id=3 attempt=2 backoff=0.050

:func:`parse_event` inverts it for tests and log tooling.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = ["format_event", "parse_event"]

_BARE_RE = re.compile(r"^[A-Za-z0-9_.:+\-]+$")


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        text = f"{value:.6g}"
    elif isinstance(value, bool):
        text = "true" if value else "false"
    elif value is None:
        text = "null"
    else:
        text = str(value)
    if _BARE_RE.match(text):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{escaped}"'


def format_event(event: str, component: str = "jobs", **fields: Any) -> str:
    """One structured log line: ``[component] event=... k=v ...``.

    Field order is insertion order, so callers control the layout;
    values with spaces or quotes are quoted and escaped.
    """
    parts = [f"event={_fmt_value(event)}"]
    parts.extend(f"{key}={_fmt_value(value)}" for key, value in fields.items())
    return f"[{component}] " + " ".join(parts)


_EVENT_RE = re.compile(r"^\[(?P<component>[^\]]+)\]\s+(?P<fields>.*)$")
_FIELD_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)=("(?:[^"\\]|\\.)*"|[^\s]+)')


def parse_event(line: str) -> dict | None:
    """Parse a :func:`format_event` line back into a dict (or ``None``).

    Returns ``{"component": ..., "event": ..., **fields}`` with every
    value as a string; non-event lines yield ``None``.
    """
    match = _EVENT_RE.match(line)
    if match is None:
        return None
    out: dict[str, str] = {"component": match.group("component")}
    for field in _FIELD_RE.finditer(match.group("fields")):
        value = field.group(2)
        if value.startswith('"') and value.endswith('"'):
            value = (
                value[1:-1]
                .replace("\\n", "\n")
                .replace('\\"', '"')
                .replace("\\\\", "\\")
            )
        out[field.group(1)] = value
    if "event" not in out:
        return None
    return out
