"""``repro.obs`` — the dependency-free observability subsystem.

Metrics (:mod:`~repro.obs.metrics`), tracing (:mod:`~repro.obs.trace`),
Prometheus exposition (:mod:`~repro.obs.expo`), structured log events
(:mod:`~repro.obs.events`) and process-wide defaults
(:mod:`~repro.obs.runtime`).  This is the measurement substrate every
layer records into: the mappings, the execution engine, the simulated
Redis broker, the jobs subsystem and the server.

Quick start::

    from repro.obs import MetricsRegistry, Tracer

    registry = MetricsRegistry()
    requests = registry.counter("requests_total", "Requests.", ("action",))
    requests.labels("run").inc()
    print(registry.render_text())           # Prometheus exposition

    tracer = Tracer()
    with tracer.span("run:simple") as root:
        with tracer.span("setup"):
            ...
    tracer.tree()                            # nested span trees
    tracer.to_chrome()                       # load in about:tracing
"""

from repro.obs.events import format_event, parse_event
from repro.obs.expo import parse_text, render_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.runtime import (
    active_registry,
    default_registry,
    default_tracer,
    disabled,
    enabled,
    record_mapping_run,
    set_default_registry,
    split_instance_label,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "render_text",
    "parse_text",
    "format_event",
    "parse_event",
    "default_registry",
    "default_tracer",
    "set_default_registry",
    "active_registry",
    "enabled",
    "disabled",
    "record_mapping_run",
    "split_instance_label",
]
