"""Workflow tracing: spans, span trees and Chrome-trace export.

A :class:`Span` is one named, timed operation; a :class:`Tracer` collects
finished spans into a bounded ring.  One workflow enactment yields a span
*tree*: a root ``run:<mapping>`` span with children for mapping setup,
each PE instance's processing, queue waits and — for asynchronous jobs —
the lifecycle phases (queued → attempts → terminal).

Context propagation uses :mod:`contextvars`, so nested ``with
tracer.span(...)`` blocks parent automatically on one thread.  Worker
threads and forked processes do not inherit the context; they parent
explicitly (``tracer.span(name, parent=span)``) or adopt externally
timed intervals through :meth:`Tracer.record` — exactly what the multi
mapping's collector protocol does.

Exports: :meth:`Tracer.export` (JSON-able span dicts),
:meth:`Tracer.tree` (nested trees) and :meth:`Tracer.to_chrome` (the
Chrome ``about:tracing`` / Perfetto event format).
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
import uuid
from typing import Any, Iterator

__all__ = ["Span", "Tracer"]

_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "laminar_current_span", default=None
)

#: Span ids are unique across every tracer in the process, so one tracer
#: can adopt another's finished spans (see :meth:`Tracer.adopt`) without
#: id collisions corrupting :meth:`Tracer.tree`.
_span_ids = itertools.count(1)


class Span:
    """One named, timed operation inside a trace."""

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id",
        "start", "duration", "attrs", "status", "_tracer", "_perf", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        trace_id: str,
        parent_id: int | None,
        attrs: dict | None = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.status = "ok"
        self.start = time.time()
        self.duration: float | None = None
        self._perf = time.perf_counter()
        self._token: contextvars.Token | None = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (merged into ``attrs``)."""
        self.attrs.update(attrs)
        return self

    def end(self, status: str | None = None) -> "Span":
        """Finish the span; idempotent after the first call."""
        if self.duration is None:
            self.duration = time.perf_counter() - self._perf
            if status is not None:
                self.status = status
            self._tracer._finish(self)
        return self

    # -- context-manager protocol --------------------------------------------

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self.end(status="error" if exc_type is not None else None)

    def to_dict(self) -> dict:
        """JSON-able form of the span."""
        return {
            "name": self.name,
            "spanId": self.span_id,
            "parentId": self.parent_id,
            "traceId": self.trace_id,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans into a bounded ring of finished spans.

    One tracer can hold many traces (every parentless span starts a new
    ``trace_id``); a server keeps a single tracer as the sink for all
    runs and jobs.  Thread-safe throughout; spawns no threads of its own.
    """

    def __init__(self, max_spans: int = 10_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self.dropped = 0

    # -- span creation -------------------------------------------------------

    def span(
        self,
        name: str,
        parent: "Span | None" = None,
        **attrs: Any,
    ) -> Span:
        """Start a span.

        ``parent`` overrides context propagation (worker threads); when
        omitted the current context span (if any) is the parent, and a
        parentless span opens a fresh trace.  Use as a context manager
        for automatic ending and context propagation, or call
        :meth:`Span.end` manually.
        """
        if parent is None:
            parent = _current_span.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = uuid.uuid4().hex[:16], None
        return Span(
            self, name, next(_span_ids), trace_id, parent_id, attrs=attrs
        )

    def record(
        self,
        name: str,
        start: float,
        duration: float,
        parent: "Span | None" = None,
        status: str = "ok",
        **attrs: Any,
    ) -> Span:
        """Adopt an externally timed interval as a finished span.

        Used for intervals measured elsewhere — forked multi-mapping
        workers report ``(start, duration)`` through the collector queue
        and the parent records them here.
        """
        span = self.span(name, parent=parent, **attrs)
        span.start = start
        span.duration = float(duration)
        span.status = status
        self._finish(span)
        return span

    @staticmethod
    def current() -> Span | None:
        """The context-propagated current span of this thread, if any."""
        return _current_span.get()

    # -- collection ----------------------------------------------------------

    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self.dropped += 1
                return
            self._finished.append(span)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Finished spans, optionally restricted to one trace."""
        with self._lock:
            spans = list(self._finished)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def clear(self) -> None:
        """Drop every finished span (the ``get_trace`` reset)."""
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    def adopt(self, other: "Tracer") -> int:
        """Copy another tracer's finished spans into this ring.

        A server keeps one sink tracer; per-run tracers are adopted into
        it after each traced enactment.  Safe because span ids are unique
        process-wide.  Returns how many spans were copied.
        """
        count = 0
        for span in other.spans():
            self._finish(span)
            count += 1
        return count

    # -- exports -------------------------------------------------------------

    def export(self, trace_id: str | None = None) -> list[dict]:
        """Finished spans as JSON-able dicts, in finish order."""
        return [span.to_dict() for span in self.spans(trace_id)]

    def tree(self, trace_id: str | None = None) -> list[dict]:
        """Nested span trees (one per trace root), children in start order."""
        spans = self.spans(trace_id)
        nodes = {span.span_id: {**span.to_dict(), "children": []} for span in spans}
        roots = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node["children"].sort(key=lambda child: child["start"])
        roots.sort(key=lambda root: root["start"])
        return roots

    def to_chrome(self, trace_id: str | None = None) -> dict:
        """Chrome trace format (load in ``about:tracing`` or Perfetto).

        Complete ("X") events with microsecond timestamps; the trace id
        maps to the pid lane so concurrent runs separate visually.
        """
        lanes: dict[str, int] = {}
        events = []
        for span in self.spans(trace_id):
            pid = lanes.setdefault(span.trace_id, len(lanes) + 1)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": (span.duration or 0.0) * 1e6,
                    "pid": pid,
                    "tid": span.parent_id or span.span_id,
                    "args": dict(span.attrs),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self, trace_id: str | None = None) -> str:
        """The :meth:`export` list serialised to a JSON string."""
        return json.dumps(self.export(trace_id), default=repr)

    # -- iteration -----------------------------------------------------------

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())
