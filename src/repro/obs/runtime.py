"""Process-wide observability defaults and instrumentation helpers.

Library code that is not handed an explicit registry records into the
process default (:func:`default_registry`); a server constructs its own
:class:`~repro.obs.metrics.MetricsRegistry` so concurrent servers in one
process do not mix metrics.

:func:`disabled` is the kill switch the overhead benchmark uses: inside
the context, :func:`active_registry` returns ``None`` and the mapping
instrumentation becomes a handful of ``if`` checks.

:func:`record_mapping_run` is the single chokepoint through which every
mapping reports a finished enactment — per-instance iteration counters
and busy-time histograms (labelled ``pe``/``instance``/``mapping``) plus
a whole-run latency histogram.  It runs once per enactment, O(instances)
not O(items), which is how the instrumentation overhead on the simple
mapping stays in the noise.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "default_registry",
    "default_tracer",
    "set_default_registry",
    "active_registry",
    "enabled",
    "disabled",
    "record_mapping_run",
    "split_instance_label",
]

_lock = threading.Lock()
_registry: MetricsRegistry | None = None
_tracer: Tracer | None = None
_enabled = True

#: Whole-run latency buckets: enactments range from sub-ms to minutes.
RUN_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)


def default_registry() -> MetricsRegistry:
    """The process-wide registry (lazily created)."""
    global _registry
    with _lock:
        if _registry is None:
            _registry = MetricsRegistry()
        return _registry


def set_default_registry(registry: MetricsRegistry | None) -> None:
    """Replace the process default (``None`` resets to a fresh lazy one)."""
    global _registry
    with _lock:
        _registry = registry


def default_tracer() -> Tracer:
    """The process-wide span sink (lazily created)."""
    global _tracer
    with _lock:
        if _tracer is None:
            _tracer = Tracer()
        return _tracer


def enabled() -> bool:
    """Whether default-registry instrumentation is on."""
    return _enabled


def active_registry(registry: MetricsRegistry | None = None) -> MetricsRegistry | None:
    """Resolve where instrumentation should record.

    An explicit ``registry`` always wins; otherwise the process default,
    or ``None`` inside a :func:`disabled` block (callers skip recording).
    """
    if registry is not None:
        return registry
    if not _enabled:
        return None
    return default_registry()


@contextmanager
def disabled() -> Iterator[None]:
    """Turn default-registry instrumentation off inside the block."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


_INSTANCE_RE = re.compile(r"^(?P<pe>.*?)(?P<idx>\d+)$")


def split_instance_label(label: str) -> tuple[str, str]:
    """Split ``"IsPrime3"`` into ``("IsPrime", "3")``.

    Instance labels are ``<PEName><instance_index>`` everywhere (see
    :class:`repro.d4py.mappings.base.RunResult`); a label without a
    trailing index maps to instance ``0``.
    """
    match = _INSTANCE_RE.match(label)
    if match is None:
        return label, "0"
    return match.group("pe"), match.group("idx")


def record_mapping_run(
    mapping: str,
    iterations: Mapping[str, int],
    timings: Mapping[str, float],
    wall_seconds: float,
    status: str = "success",
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one finished enactment into ``registry`` (or the default).

    No-op when instrumentation is disabled and no registry was given.
    """
    registry = active_registry(registry)
    if registry is None:
        return
    runs = registry.counter(
        "laminar_runs_total",
        "Workflow enactments by mapping and status.",
        ("mapping", "status"),
    )
    run_seconds = registry.histogram(
        "laminar_run_seconds",
        "Whole-enactment wall time by mapping.",
        ("mapping",),
        buckets=RUN_BUCKETS,
    )
    pe_iterations = registry.counter(
        "laminar_pe_iterations_total",
        "Items processed per PE instance.",
        ("mapping", "pe", "instance"),
    )
    pe_busy = registry.histogram(
        "laminar_pe_busy_seconds",
        "Cumulative per-run busy time per PE instance.",
        ("mapping", "pe", "instance"),
        buckets=RUN_BUCKETS,
    )
    runs.labels(mapping, status).inc()
    run_seconds.labels(mapping).observe(wall_seconds)
    for label, count in iterations.items():
        pe, idx = split_instance_label(label)
        if count:
            pe_iterations.labels(mapping, pe, idx).inc(count)
        pe_busy.labels(mapping, pe, idx).observe(timings.get(label, 0.0))
