"""repro.laminar — the Laminar 2.0 serverless framework.

Architecture (paper Fig 4): a **client** (API + CLI) talks to a
**server** over a streaming transport; the server fronts a relational
**registry** of users, PEs and workflows, and dispatches runs to the
**execution engine**, which enacts dispel4py workflows and streams their
stdout back line by line.

* :mod:`repro.laminar.transport` — HTTP/2-style framed streaming
  (in-process and localhost TCP implementations).
* :mod:`repro.laminar.registry` — the SQLite-backed registry with the
  Fig 6 schema (User, Workflow, ProcessingElement, Execution, Response).
* :mod:`repro.laminar.server` — controllers / services / models /
  data-access layers (§III).
* :mod:`repro.laminar.execution` — the serverless execution engine with
  auto-import, resource caching and true streaming (§IV-E/F).
* :mod:`repro.laminar.client` — the Table I client functions and the
  Fig 5 CLI.
"""

from repro.laminar.client.client import LaminarClient
from repro.laminar.client.process import Process
from repro.laminar.server.app import LaminarServer

__all__ = ["LaminarClient", "LaminarServer", "Process"]
