"""Per-tenant quotas and scheduling weights.

Multi-tenancy turns the registry's ``User`` rows into *tenants*: every
request is resolved to a user, every read is scoped to that user's rows,
and this module holds the knobs that bound what one tenant can consume —

* **registry rows** — how many PEs + workflows a tenant may register;
* **queued jobs** — how many submissions may wait in the job queue;
* **running jobs** — how many may occupy workers concurrently;
* **weight** — the tenant's share of the fair-share dequeue (a weight-2
  tenant drains twice as fast as a weight-1 tenant under contention).

A :class:`QuotaConfig` is one default :class:`TenantQuota` plus named
per-tenant overrides, loadable from a JSON file via the server CLI
(``--quota-config``)::

    {
      "default": {"max_queued_jobs": 32, "weight": 1},
      "tenants": {
        "batch-team": {"weight": 4, "max_running_jobs": 8},
        "guest": {"max_registry_rows": 100}
      }
    }

Limits are ``None`` (unlimited) unless set.  Weights are clamped to
integers >= 1 so the deficit round-robin in
:class:`~repro.laminar.jobs.queue.JobQueue` always makes progress.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["TenantQuota", "QuotaConfig"]


@dataclass(frozen=True)
class TenantQuota:
    """Resource bounds for one tenant (``None`` means unlimited)."""

    max_registry_rows: int | None = None
    max_queued_jobs: int | None = None
    max_running_jobs: int | None = None
    weight: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "weight", max(1, int(self.weight)))

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the ``quota`` rows of per-tenant stats)."""
        return {
            "max_registry_rows": self.max_registry_rows,
            "max_queued_jobs": self.max_queued_jobs,
            "max_running_jobs": self.max_running_jobs,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenantQuota":
        """Build from a JSON object; unknown keys are rejected loudly."""
        known = {"max_registry_rows", "max_queued_jobs", "max_running_jobs", "weight"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown quota keys: {sorted(extra)}")
        return cls(**data)


@dataclass
class QuotaConfig:
    """A default quota plus per-tenant (by user name) overrides."""

    default: TenantQuota = field(default_factory=TenantQuota)
    tenants: dict[str, TenantQuota] = field(default_factory=dict)

    def for_tenant(self, tenant: str | None) -> TenantQuota:
        """The effective quota for a tenant name (default when unnamed)."""
        if tenant is not None and tenant in self.tenants:
            return self.tenants[tenant]
        return self.default

    def weight_of(self, tenant: str | None) -> int:
        """Fair-share weight for a tenant (>= 1)."""
        return self.for_tenant(tenant).weight

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form, inverse of :meth:`from_dict`."""
        return {
            "default": self.default.to_dict(),
            "tenants": {name: q.to_dict() for name, q in self.tenants.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QuotaConfig":
        """Build from the documented JSON shape."""
        if not isinstance(data, dict):
            raise ValueError("quota config must be a JSON object")
        default = TenantQuota.from_dict(data.get("default") or {})
        tenants = {
            str(name): TenantQuota.from_dict(quota or {})
            for name, quota in (data.get("tenants") or {}).items()
        }
        return cls(default=default, tenants=tenants)

    @classmethod
    def load(cls, path: str | Path) -> "QuotaConfig":
        """Read a quota config JSON file (the ``--quota-config`` flag)."""
        return cls.from_dict(json.loads(Path(path).read_text()))
