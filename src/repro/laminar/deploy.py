"""Container management for Laminar deployments (paper §III).

Laminar 2.0 ships a "Dockerized architecture for scalable deployment"
with integrated container management.  Docker is not available offline,
so this module provides the behaviour-preserving substitute (DESIGN.md
substitution pattern): a *container* is an isolated OS process running a
Laminar server on its own TCP port, and the :class:`Orchestrator` offers
the lifecycle operations a compose file would — up, down, status,
health checks, restart-on-failure, and scaling to several replicas.

Each replica owns its registry (the deployment unit of the paper's
architecture diagram, Fig 4); a fronting client can target any healthy
replica via :meth:`Orchestrator.any_healthy`.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field

from repro.laminar.client.client import LaminarClient
from repro.laminar.transport.tcp import TcpClientTransport

__all__ = ["ContainerSpec", "Container", "Orchestrator"]


@dataclass(frozen=True)
class ContainerSpec:
    """Launch parameters for one Laminar server container."""

    name: str
    host: str = "127.0.0.1"
    db_path: str = ":memory:"


def _container_main(spec: ContainerSpec, port_pipe) -> None:
    """Child-process entry point: serve a Laminar server over TCP."""
    # Imports resolved post-fork so the child builds its own state.
    from repro.laminar.server.app import LaminarServer
    from repro.laminar.transport.tcp import TcpServerTransport

    server = LaminarServer(spec.db_path)
    transport = TcpServerTransport(server, host=spec.host, port=0).start()
    port_pipe.send(transport.address[1])
    port_pipe.close()
    try:
        while True:  # serve until the orchestrator terminates us
            time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - signal-dependent
        pass


@dataclass
class Container:
    """One running server container: a child process plus its port."""

    spec: ContainerSpec
    process: mp.process.BaseProcess
    port: int
    started_at: float = field(default_factory=time.monotonic)
    restarts: int = 0

    @property
    def alive(self) -> bool:
        """True while the container process is running."""
        return self.process.is_alive()

    def healthy(self, timeout: float = 2.0) -> bool:
        """Liveness probe: a ``ping`` action over a fresh connection."""
        if not self.alive:
            return False
        try:
            conn = TcpClientTransport(self.spec.host, self.port, timeout=timeout)
            try:
                response = conn.request({"action": "ping"})
                return response.get("status") == 200
            finally:
                conn.close()
        except OSError:
            return False

    def client(self) -> LaminarClient:
        """A client connected to this container."""
        return LaminarClient.connect(self.spec.host, self.port)

    def stop(self) -> None:
        """Terminate the container process (escalating to kill)."""
        if self.alive:
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(timeout=5.0)


class Orchestrator:
    """Compose-style lifecycle management for Laminar containers."""

    def __init__(self) -> None:
        self._ctx = mp.get_context("fork")
        self.containers: dict[str, Container] = {}

    def up(self, spec: ContainerSpec, start_timeout: float = 15.0) -> Container:
        """Launch one container and wait until it is serving."""
        if spec.name in self.containers and self.containers[spec.name].alive:
            raise ValueError(f"container {spec.name!r} is already running")
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_container_main, args=(spec, child_conn), daemon=True
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(start_timeout):
            process.terminate()
            raise TimeoutError(f"container {spec.name!r} did not start")
        port = parent_conn.recv()
        parent_conn.close()
        container = Container(spec=spec, process=process, port=port)
        self.containers[spec.name] = container
        return container

    def scale(self, base_name: str, replicas: int) -> list[Container]:
        """Ensure ``replicas`` containers named ``base_name-i`` run."""
        out = []
        for i in range(replicas):
            name = f"{base_name}-{i}"
            existing = self.containers.get(name)
            if existing is not None and existing.alive:
                out.append(existing)
                continue
            out.append(self.up(ContainerSpec(name=name)))
        return out

    def status(self) -> dict[str, dict]:
        """Per-container state: alive, healthy, port, restart count."""
        return {
            name: {
                "alive": c.alive,
                "healthy": c.healthy(),
                "port": c.port,
                "restarts": c.restarts,
            }
            for name, c in self.containers.items()
        }

    def ensure_healthy(self) -> list[str]:
        """Restart-on-failure pass; returns names that were restarted."""
        restarted = []
        for name, container in list(self.containers.items()):
            if container.healthy():
                continue
            container.stop()
            replacement = self.up(container.spec)
            replacement.restarts = container.restarts + 1
            self.containers[name] = replacement
            restarted.append(name)
        return restarted

    def any_healthy(self) -> Container:
        """Pick a healthy replica (first found); raises when none is."""
        for container in self.containers.values():
            if container.healthy():
                return container
        raise RuntimeError("no healthy containers")

    def down(self) -> None:
        """Stop everything."""
        for container in self.containers.values():
            container.stop()
        self.containers.clear()

    def __enter__(self) -> "Orchestrator":
        return self

    def __exit__(self, *exc) -> None:
        self.down()
