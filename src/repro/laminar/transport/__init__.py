"""Client–server transports with HTTP/2-style streaming.

Laminar 1.0 used HTTP/1.1 request/response: the engine ran the whole
workflow, captured stdout, and returned one batch body.  Laminar 2.0
moved to HTTP/2 streaming — independent, bidirectional frames — so
output lines reach the client as they are produced (§IV-E).

A real HTTP/2 stack is out of scope offline; DESIGN.md substitution S7
replaces it with a framed protocol that preserves the property under
test — *incremental delivery*:

* :mod:`repro.laminar.transport.frames` — HEADERS/DATA/END frame types.
* :mod:`repro.laminar.transport.inprocess` — zero-copy in-process
  transport (client holds the server object; streams are generators).
* :mod:`repro.laminar.transport.tcp` — localhost TCP with
  length-prefixed JSON frames and multiplexed stream ids.

Both implement the same two-method interface (:class:`Transport`), so
every client feature works identically over either.
"""

from repro.laminar.transport.frames import Frame, FrameType
from repro.laminar.transport.inprocess import InProcessTransport
from repro.laminar.transport.tcp import TcpServerTransport, TcpClientTransport

__all__ = [
    "Frame",
    "FrameType",
    "InProcessTransport",
    "TcpServerTransport",
    "TcpClientTransport",
]
