"""Client–server transports with HTTP/2-style streaming.

Laminar 1.0 used HTTP/1.1 request/response: the engine ran the whole
workflow, captured stdout, and returned one batch body.  Laminar 2.0
moved to HTTP/2 streaming — independent, bidirectional frames — so
output lines reach the client as they are produced (§IV-E).

A real HTTP/2 stack is out of scope offline; DESIGN.md substitution S7
replaces it with a framed protocol that preserves the property under
test — *incremental delivery*:

* :mod:`repro.laminar.transport.frames` — HEADERS/DATA/END/ERROR/PING/
  PONG frame types with strict JSON-safe encoding and loud truncation
  errors.
* :mod:`repro.laminar.transport.inprocess` — zero-copy in-process
  transport (client holds the server object; streams are generators).
* :mod:`repro.laminar.transport.tcp` — localhost TCP with
  length-prefixed JSON frames, multiplexed stream ids, structured
  ERROR propagation, PING/PONG heartbeats and bounded
  reconnect-with-backoff for idempotent exchanges.

Both implement the same two-method interface (:class:`Transport`), so
every client feature works identically over either.
"""

from repro.laminar.transport.frames import (
    Frame,
    FramePayloadError,
    FrameProtocolError,
    FrameType,
)
from repro.laminar.transport.inprocess import InProcessTransport
from repro.laminar.transport.tcp import (
    HeartbeatTimeout,
    RetryPolicy,
    TcpClientTransport,
    TcpServerTransport,
)

__all__ = [
    "Frame",
    "FrameType",
    "FramePayloadError",
    "FrameProtocolError",
    "HeartbeatTimeout",
    "RetryPolicy",
    "InProcessTransport",
    "TcpServerTransport",
    "TcpClientTransport",
]
