"""Frame model for the streaming transport (HTTP/2-flavoured).

A logical request/response exchange is one *stream*; frames belonging to
a stream carry its id, mirroring RFC 9113's multiplexing.  Six frame
types cover Laminar's traffic:

* ``HEADERS`` — opens an exchange; payload is the request or the
  response status/metadata.
* ``DATA`` — one chunk of streamed body (an output line, a file part).
* ``END`` — closes the stream; payload optionally carries a summary.
* ``ERROR`` — closes the stream abnormally; payload is a structured
  ``{status, error_type, error}`` record so a server-side handler
  failure reaches the client as data instead of a dead connection.
* ``PING`` / ``PONG`` — liveness probes (RFC 9113 §6.7): the server
  pushes PING while a long exchange is in flight so the client can
  tell a slow run from a dead server; a PING received while idle is
  answered with a PONG echoing its payload.

Encoding is strict: a payload that is not JSON-safe raises
:class:`FramePayloadError` at ``encode`` time (the old behaviour
silently stringified it with ``default=str``), and a wire read that
ends mid-frame raises :class:`FrameProtocolError` (the old behaviour
reported truncation as a clean EOF).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["FrameType", "Frame", "FramePayloadError", "FrameProtocolError"]


class FrameType(enum.Enum):
    """The six frame kinds: HEADERS, DATA, END, ERROR, PING, PONG."""
    HEADERS = "headers"
    DATA = "data"
    END = "end"
    ERROR = "error"
    PING = "ping"
    PONG = "pong"


class FramePayloadError(TypeError):
    """A frame payload that cannot be represented as strict JSON."""


class FrameProtocolError(ConnectionError):
    """The wire ended or corrupted mid-frame (truncation, bad JSON)."""


@dataclass
class Frame:
    """One transport frame."""

    stream_id: int
    type: FrameType
    payload: Any = field(default=None)

    def encode(self) -> bytes:
        """Length-prefixed JSON wire form (4-byte big-endian length).

        Raises :class:`FramePayloadError` if the payload is not strictly
        JSON-safe (unknown types, NaN/Infinity) — a lossy ``default=str``
        fallback would corrupt typed payloads silently.
        """
        try:
            body = json.dumps(
                {"stream_id": self.stream_id, "type": self.type.value, "payload": self.payload},
                allow_nan=False,
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise FramePayloadError(
                f"frame payload for stream {self.stream_id} is not JSON-safe: {exc}"
            ) from exc
        return len(body).to_bytes(4, "big") + body

    @classmethod
    def decode(cls, body: bytes) -> "Frame":
        """Inverse of :meth:`encode` (without the length prefix)."""
        obj = json.loads(body.decode("utf-8"))
        return cls(
            stream_id=int(obj["stream_id"]),
            type=FrameType(obj["type"]),
            payload=obj.get("payload"),
        )

    @classmethod
    def read_from(cls, sock_file) -> "Frame | None":
        """Read one frame from a binary file-like; ``None`` at clean EOF.

        EOF is clean only on a frame boundary (zero bytes read).  A
        partial header or truncated body means the peer died mid-frame
        and raises :class:`FrameProtocolError` so callers never mistake
        a half-delivered response for the end of the exchange.
        """
        header = sock_file.read(4)
        if not header:
            return None
        if len(header) < 4:
            raise FrameProtocolError(
                f"connection truncated mid-frame: {len(header)}/4 header bytes"
            )
        length = int.from_bytes(header, "big")
        body = sock_file.read(length)
        if len(body) < length:
            raise FrameProtocolError(
                f"connection truncated mid-frame: {len(body)}/{length} body bytes"
            )
        try:
            return cls.decode(body)
        except (ValueError, KeyError) as exc:
            raise FrameProtocolError(f"undecodable frame: {exc}") from exc
