"""Frame model for the streaming transport (HTTP/2-flavoured).

A logical request/response exchange is one *stream*; frames belonging to
a stream carry its id, mirroring RFC 9113's multiplexing.  Three frame
types are enough for Laminar's traffic:

* ``HEADERS`` — opens an exchange; payload is the request or the
  response status/metadata.
* ``DATA`` — one chunk of streamed body (an output line, a file part).
* ``END`` — closes the stream; payload optionally carries a summary.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["FrameType", "Frame"]


class FrameType(enum.Enum):
    """The three frame kinds: HEADERS, DATA, END."""
    HEADERS = "headers"
    DATA = "data"
    END = "end"


@dataclass
class Frame:
    """One transport frame."""

    stream_id: int
    type: FrameType
    payload: Any = field(default=None)

    def encode(self) -> bytes:
        """Length-prefixed JSON wire form (4-byte big-endian length)."""
        body = json.dumps(
            {"stream_id": self.stream_id, "type": self.type.value, "payload": self.payload},
            default=str,
        ).encode("utf-8")
        return len(body).to_bytes(4, "big") + body

    @classmethod
    def decode(cls, body: bytes) -> "Frame":
        """Inverse of :meth:`encode` (without the length prefix)."""
        obj = json.loads(body.decode("utf-8"))
        return cls(
            stream_id=int(obj["stream_id"]),
            type=FrameType(obj["type"]),
            payload=obj.get("payload"),
        )

    @classmethod
    def read_from(cls, sock_file) -> "Frame | None":
        """Read one frame from a binary file-like; ``None`` at EOF."""
        header = sock_file.read(4)
        if len(header) < 4:
            return None
        length = int.from_bytes(header, "big")
        body = sock_file.read(length)
        if len(body) < length:
            return None
        return cls.decode(body)
