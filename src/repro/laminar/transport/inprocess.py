"""In-process transport: the client holds the server object directly.

This is the zero-configuration mode used by tests, examples and the
benchmark harness: no sockets, but the same framed streaming semantics —
``stream`` yields DATA payloads as the execution engine produces them,
because the server returns a live generator.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.laminar.transport.frames import Frame, FrameType

__all__ = ["InProcessTransport", "ServerStream"]


class ServerStream:
    """A streaming server response: an iterator of chunks plus a summary.

    ``chunks`` yields JSON-able payloads (typically output lines);
    ``summary()`` becomes the END frame payload once the iterator is
    exhausted (the callable form lets the summary reflect what was
    streamed).
    """

    def __init__(self, chunks: Iterator[Any], summary=None) -> None:
        self.chunks = chunks
        self._summary = summary

    def summary(self) -> Any:
        """The END-frame payload (resolved after chunks drain)."""
        return self._summary() if callable(self._summary) else self._summary


class InProcessTransport:
    """Direct client↔server coupling with streaming support."""

    def __init__(self, server) -> None:
        self._server = server
        self._next_stream_id = 1

    def request(self, payload: dict) -> dict:
        """Unary exchange; a streaming response is drained into a list."""
        response = self._server.handle(payload)
        if isinstance(response.get("body"), ServerStream):
            stream = response["body"]
            lines = list(stream.chunks)
            return {
                "status": response["status"],
                "body": {"lines": lines, "summary": stream.summary()},
            }
        return response

    def stream(self, payload: dict) -> Iterator[Frame]:
        """Framed exchange: HEADERS, then DATA per chunk, then END."""
        stream_id = self._next_stream_id
        self._next_stream_id += 1
        response = self._server.handle(payload)
        body = response.get("body")
        if isinstance(body, ServerStream):
            yield Frame(stream_id, FrameType.HEADERS, {"status": response["status"]})
            for chunk in body.chunks:
                yield Frame(stream_id, FrameType.DATA, chunk)
            yield Frame(stream_id, FrameType.END, body.summary())
        else:
            yield Frame(stream_id, FrameType.HEADERS, {"status": response["status"]})
            yield Frame(stream_id, FrameType.END, body)

    def close(self) -> None:
        """Nothing to release for the in-process transport."""
