"""In-process transport: the client holds the server object directly.

This is the zero-configuration mode used by tests, examples and the
benchmark harness: no sockets, but the same framed streaming semantics —
``stream`` yields DATA payloads as the execution engine produces them,
because the server returns a live generator.  Failure semantics also
mirror the TCP transport: an exception escaping the server's handler
(or raised lazily while a streamed body is drained) becomes a
structured 500 / ERROR frame instead of propagating into the client.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.laminar.transport.frames import Frame, FrameType

__all__ = ["InProcessTransport", "ServerStream"]


class ServerStream:
    """A streaming server response: an iterator of chunks plus a summary.

    ``chunks`` yields JSON-able payloads (typically output lines);
    ``summary()`` becomes the END frame payload once the iterator is
    exhausted (the callable form lets the summary reflect what was
    streamed).
    """

    def __init__(self, chunks: Iterator[Any], summary=None) -> None:
        self.chunks = chunks
        self._summary = summary

    def summary(self) -> Any:
        """The END-frame payload (resolved after chunks drain)."""
        return self._summary() if callable(self._summary) else self._summary


def _error_body(exc: BaseException) -> dict:
    return {
        "error": str(exc) or type(exc).__name__,
        "error_type": type(exc).__name__,
    }


class InProcessTransport:
    """Direct client↔server coupling with streaming support."""

    def __init__(self, server) -> None:
        self._server = server
        self._next_stream_id = 1

    def request(self, payload: dict, idempotent: bool = False) -> dict:
        """Unary exchange; a streaming response is drained into a list.

        ``idempotent`` is accepted for interface parity with the TCP
        transport; there is no connection to lose in-process.
        """
        try:
            response = self._server.handle(payload)
        except Exception as exc:  # noqa: BLE001 — mirror the ERROR frame path
            return {"status": 500, "body": _error_body(exc)}
        if isinstance(response.get("body"), ServerStream):
            stream = response["body"]
            try:
                lines = list(stream.chunks)
                summary = stream.summary()
            except Exception as exc:  # noqa: BLE001 — lazy body failure
                return {"status": 500, "body": _error_body(exc)}
            return {
                "status": response["status"],
                "body": {"lines": lines, "summary": summary},
            }
        return response

    def stream(self, payload: dict) -> Iterator[Frame]:
        """Framed exchange: HEADERS, then DATA per chunk, then END.

        A handler or mid-stream exception terminates the exchange with
        an ERROR frame, exactly like the TCP server handler.
        """
        stream_id = self._next_stream_id
        self._next_stream_id += 1
        try:
            response = self._server.handle(payload)
        except Exception as exc:  # noqa: BLE001
            yield Frame(stream_id, FrameType.ERROR, {"status": 500, **_error_body(exc)})
            return
        body = response.get("body")
        yield Frame(stream_id, FrameType.HEADERS, {"status": response["status"]})
        if isinstance(body, ServerStream):
            try:
                for chunk in body.chunks:
                    yield Frame(stream_id, FrameType.DATA, chunk)
                summary = body.summary()
            except Exception as exc:  # noqa: BLE001
                yield Frame(
                    stream_id, FrameType.ERROR, {"status": 500, **_error_body(exc)}
                )
                return
            yield Frame(stream_id, FrameType.END, summary)
        else:
            yield Frame(stream_id, FrameType.END, body)

    def close(self) -> None:
        """Nothing to release for the in-process transport."""
