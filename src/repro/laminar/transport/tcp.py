"""Localhost TCP transport with length-prefixed, multiplex-ready frames.

One connection carries one exchange at a time (the client serialises
requests), but every frame carries its stream id so the wire format is
multiplex-capable like HTTP/2.  The server is a threading socket server:
each connection gets a handler thread, and streaming responses are
written frame by frame as the execution engine produces chunks — the
client observes output lines *before* the workflow finishes, which is
what the A1 ablation bench measures.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any, Iterator

from repro.laminar.transport.frames import Frame, FrameType
from repro.laminar.transport.inprocess import ServerStream

__all__ = ["TcpServerTransport", "TcpClientTransport"]


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        """Serve HEADERS-opened exchanges until the peer disconnects."""
        while True:
            frame = Frame.read_from(self.rfile)
            if frame is None:
                return
            if frame.type is not FrameType.HEADERS:
                continue  # ignore stray frames; HEADERS opens an exchange
            response = self.server.laminar_server.handle(frame.payload)
            body = response.get("body")
            try:
                self.wfile.write(
                    Frame(
                        frame.stream_id,
                        FrameType.HEADERS,
                        {"status": response["status"]},
                    ).encode()
                )
                if isinstance(body, ServerStream):
                    for chunk in body.chunks:
                        self.wfile.write(
                            Frame(frame.stream_id, FrameType.DATA, chunk).encode()
                        )
                        self.wfile.flush()
                    self.wfile.write(
                        Frame(frame.stream_id, FrameType.END, body.summary()).encode()
                    )
                else:
                    self.wfile.write(
                        Frame(frame.stream_id, FrameType.END, body).encode()
                    )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TcpServerTransport:
    """Serves a :class:`~repro.laminar.server.app.LaminarServer` over TCP."""

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0) -> None:
        self._tcp = _ThreadingServer((host, port), _Handler)
        self._tcp.laminar_server = server
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        return self._tcp.server_address

    def start(self) -> "TcpServerTransport":
        """Begin serving on a daemon thread."""
        self._thread = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and join the serving thread."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


class TcpClientTransport:
    """Client side: one persistent connection, sequential exchanges."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_stream_id = 1
        self._lock = threading.Lock()

    def _open(self, payload: dict) -> int:
        stream_id = self._next_stream_id
        self._next_stream_id += 2  # odd ids, client-initiated (RFC 9113 §5.1.1)
        self._wfile.write(Frame(stream_id, FrameType.HEADERS, payload).encode())
        self._wfile.flush()
        return stream_id

    def request(self, payload: dict) -> dict:
        """Unary exchange; DATA frames (if any) are collected into lines."""
        with self._lock:
            self._open(payload)
            status: dict[str, Any] = {}
            lines: list[Any] = []
            while True:
                frame = Frame.read_from(self._rfile)
                if frame is None:
                    raise ConnectionError("server closed mid-exchange")
                if frame.type is FrameType.HEADERS:
                    status = frame.payload or {}
                elif frame.type is FrameType.DATA:
                    lines.append(frame.payload)
                else:  # END
                    body = frame.payload
                    if lines:
                        body = {"lines": lines, "summary": frame.payload}
                    return {"status": status.get("status", 500), "body": body}

    def stream(self, payload: dict) -> Iterator[Frame]:
        """Framed exchange yielding frames as they arrive on the wire."""
        with self._lock:
            self._open(payload)
            while True:
                frame = Frame.read_from(self._rfile)
                if frame is None:
                    raise ConnectionError("server closed mid-exchange")
                yield frame
                if frame.type is FrameType.END:
                    return

    def close(self) -> None:
        """Close the socket and its file handles."""
        for handle in (self._rfile, self._wfile):
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._sock.close()
