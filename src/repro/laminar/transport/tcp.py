"""Localhost TCP transport with length-prefixed, multiplex-ready frames.

One connection carries one exchange at a time (the client serialises
requests), but every frame carries its stream id so the wire format is
multiplex-capable like HTTP/2.  The server is a threading socket server:
each connection gets a handler thread, and streaming responses are
written frame by frame as the execution engine produces chunks — the
client observes output lines *before* the workflow finishes, which is
what the A1 ablation bench measures.

Robustness (the §IV request path under partial failure):

* a handler exception becomes a structured ``ERROR`` frame — the
  connection survives and the next exchange proceeds normally;
* the server pushes ``PING`` heartbeats while an exchange is in flight,
  and the client enforces a configurable ``idle_deadline`` of silence,
  so a slow run (heartbeats keep arriving) is distinguishable from a
  dead server (:class:`HeartbeatTimeout`);
* :meth:`TcpClientTransport.request` reconnects with bounded
  exponential backoff (:class:`RetryPolicy`, the same shape as the jobs
  worker's retry policy) — but only when the caller marks the exchange
  idempotent, because a resend must be safe.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator

from repro.laminar.transport.frames import (
    Frame,
    FrameProtocolError,
    FrameType,
)
from repro.laminar.transport.inprocess import ServerStream

__all__ = [
    "TcpServerTransport",
    "TcpClientTransport",
    "RetryPolicy",
    "HeartbeatTimeout",
]


class HeartbeatTimeout(ConnectionError):
    """No frame (not even a heartbeat) arrived within the idle deadline."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff, mirroring the jobs worker's shape
    (``retry_backoff * 2 ** (attempt - 1)``)."""

    max_retries: int = 2
    backoff: float = 0.05
    factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        return self.backoff * self.factor ** (attempt - 1)


def _error_payload(exc: BaseException, status: int = 500) -> dict:
    """The structured body of an ERROR frame."""
    return {
        "status": status,
        "error_type": type(exc).__name__,
        "error": str(exc) or type(exc).__name__,
    }


class _Handler(socketserver.StreamRequestHandler):
    # Frames are written as several small buffered writes; without
    # TCP_NODELAY, Nagle + delayed ACK turns every exchange into a
    # ~40 ms round-trip even on loopback.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        super().setup()
        # Responses and heartbeats interleave on one socket, so every
        # frame write happens under this lock.
        self._write_lock = threading.Lock()
        self._in_flight = threading.Event()
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        interval = getattr(self.server, "heartbeat_interval", 0.0)
        if interval and interval > 0:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(float(interval),),
                name="laminar-tcp-heartbeat",
                daemon=True,
            )
            self._hb_thread.start()

    def finish(self) -> None:
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=1.0)
        super().finish()

    def _send(self, frame: Frame) -> None:
        with self._write_lock:
            self.wfile.write(frame.encode())
            self.wfile.flush()

    def _heartbeat_loop(self, interval: float) -> None:
        """Push PING frames while an exchange is being served.

        Heartbeats only flow mid-exchange: an idle connection has nothing
        to prove (the client probes it with its own PING), and skipping
        idle periods keeps the socket buffer of a parked client empty.
        """
        while not self._hb_stop.wait(interval):
            if not self._in_flight.is_set():
                continue
            try:
                self._send(Frame(0, FrameType.PING, {"ts": time.time()}))
                self.server.count_heartbeat()
            except (OSError, ValueError):
                return  # peer gone / socket closed underneath us

    def handle(self) -> None:
        """Serve HEADERS-opened exchanges until the peer disconnects."""
        while True:
            try:
                frame = Frame.read_from(self.rfile)
            except (FrameProtocolError, OSError):
                return  # peer died mid-frame; nothing left to answer
            if frame is None:
                return
            if frame.type is FrameType.PING:
                try:
                    self._send(Frame(frame.stream_id, FrameType.PONG, frame.payload))
                except (OSError, ValueError):
                    return
                continue
            if frame.type is not FrameType.HEADERS:
                continue  # ignore stray frames; HEADERS opens an exchange
            try:
                self._serve_exchange(frame)
            except (BrokenPipeError, ConnectionResetError, ValueError):
                return

    def _serve_exchange(self, frame: Frame) -> None:
        """Answer one exchange; a handler failure becomes an ERROR frame."""
        self._in_flight.set()
        try:
            try:
                response = self.server.laminar_server.handle(frame.payload)
                body = response.get("body")
                self._send(
                    Frame(
                        frame.stream_id,
                        FrameType.HEADERS,
                        {"status": response["status"]},
                    )
                )
                if isinstance(body, ServerStream):
                    for chunk in body.chunks:
                        self._send(Frame(frame.stream_id, FrameType.DATA, chunk))
                    self._send(Frame(frame.stream_id, FrameType.END, body.summary()))
                else:
                    self._send(Frame(frame.stream_id, FrameType.END, body))
            except (BrokenPipeError, ConnectionResetError):
                raise  # the *client* died; nobody left to inform
            except Exception as exc:  # noqa: BLE001 — anything else is reportable
                self.server.count_handler_error(type(exc).__name__)
                self._send(Frame(frame.stream_id, FrameType.ERROR, _error_payload(exc)))
        finally:
            self._in_flight.clear()


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    heartbeat_interval: float = 1.0
    transport_errors = None  # obs counter families, bound by the transport
    heartbeats = None

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Live connection sockets, so stop() can sever them: handler
        # threads otherwise outlive the listener and keep answering on a
        # server whose database is already closed.
        self._live_requests: set = set()
        self._live_lock = threading.Lock()

    def process_request(self, request, client_address) -> None:
        with self._live_lock:
            self._live_requests.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._live_lock:
            self._live_requests.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        """Hard-close every live connection (peers see a reset)."""
        with self._live_lock:
            sockets = list(self._live_requests)
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def count_handler_error(self, error_type: str) -> None:
        if self.transport_errors is not None:
            self.transport_errors.labels(error_type).inc()

    def count_heartbeat(self) -> None:
        if self.heartbeats is not None:
            self.heartbeats.inc()


class TcpServerTransport:
    """Serves a :class:`~repro.laminar.server.app.LaminarServer` over TCP."""

    def __init__(
        self,
        server,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 1.0,
    ) -> None:
        self._tcp = _ThreadingServer((host, port), _Handler)
        self._tcp.laminar_server = server
        self._tcp.heartbeat_interval = heartbeat_interval
        registry = getattr(server, "obs_registry", None)
        if registry is not None:
            self._tcp.transport_errors = registry.counter(
                "laminar_transport_handler_errors_total",
                "Handler exceptions surfaced to clients as ERROR frames.",
                ("error_type",),
            )
            self._tcp.heartbeats = registry.counter(
                "laminar_transport_heartbeats_total",
                "PING heartbeats pushed to clients during long exchanges.",
            )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        return self._tcp.server_address

    def start(self) -> "TcpServerTransport":
        """Begin serving on a daemon thread."""
        self._thread = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener, sever live connections, join the thread.

        Severing matters for cluster failover: a killed shard must
        surface to connected clients as a connection error (so they
        re-route), never as answers computed over torn-down state.
        """
        self._tcp.shutdown()
        self._tcp.close_all_connections()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


class TcpClientTransport:
    """Client side: one persistent connection, sequential exchanges.

    ``idle_deadline`` bounds how long the client tolerates total silence
    mid-exchange; server heartbeats (or any frame) reset the clock, so
    the deadline only fires when the server is actually gone.  A dropped
    connection is re-established lazily on the next call, and
    :meth:`request` additionally retries exchanges the caller marked
    idempotent, with bounded exponential backoff.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        idle_deadline: float | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self.idle_deadline = idle_deadline
        self.retry_policy = retry_policy or RetryPolicy()
        self._sock: socket.socket | None = None
        self._rfile = None
        self._wfile = None
        self._next_stream_id = 1
        self._lock = threading.Lock()
        # Fault accounting, exposed via bind_metrics().
        self.reconnects = 0
        self.retries = 0
        self.pings_sent = 0
        self._connect()

    # -- connection management ------------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        # See _ThreadingServer.disable_nagle_algorithm — same stall in
        # the other direction without this.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def _teardown(self) -> None:
        """Drop the (possibly poisoned) connection; reconnect happens lazily."""
        for handle in (self._rfile, self._wfile, self._sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        self._rfile = self._wfile = self._sock = None

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()
            self.reconnects += 1

    def bind_metrics(self, registry) -> None:
        """Register live gauges for this client's fault accounting.

        Gauges are labelled by endpoint (``host:port``) so one registry
        can watch several connections — a sharded client binds every
        per-shard transport into the same registry without collisions.
        """
        endpoint = f"{self._host}:{self._port}"
        registry.gauge(
            "laminar_client_reconnects_total",
            "Connections re-established by the TCP client transport.",
            ("endpoint",),
        ).labels(endpoint).set_function(lambda: self.reconnects)
        registry.gauge(
            "laminar_client_request_retries_total",
            "Idempotent exchanges resent after a connection failure.",
            ("endpoint",),
        ).labels(endpoint).set_function(lambda: self.retries)

    # -- frame plumbing -------------------------------------------------------

    def _open(self, payload: dict) -> int:
        stream_id = self._next_stream_id
        self._next_stream_id += 2  # odd ids, client-initiated (RFC 9113 §5.1.1)
        self._wfile.write(Frame(stream_id, FrameType.HEADERS, payload).encode())
        self._wfile.flush()
        return stream_id

    def _read_frame(self) -> Frame:
        """Next exchange frame; heartbeats are consumed as liveness proof."""
        while True:
            try:
                frame = Frame.read_from(self._rfile)
            except TimeoutError as exc:
                raise HeartbeatTimeout(
                    f"no frame or heartbeat from server within "
                    f"{self.idle_deadline}s — presuming it dead"
                ) from exc
            if frame is None:
                raise ConnectionError("server closed mid-exchange")
            if frame.type in (FrameType.PING, FrameType.PONG):
                continue  # liveness only; each read re-arms the idle deadline
            return frame

    # -- exchanges ------------------------------------------------------------

    def request(self, payload: dict, idempotent: bool = False) -> dict:
        """Unary exchange; DATA frames (if any) are collected into lines.

        With ``idempotent=True`` a connection failure (including a
        heartbeat timeout) tears the socket down, backs off, reconnects
        and resends — up to ``retry_policy.max_retries`` times.  Non-
        idempotent exchanges never resend; they fail loudly and the next
        call reconnects.
        """
        with self._lock:
            attempt = 0
            while True:
                try:
                    self._ensure_connected()
                    return self._exchange(payload)
                except (ConnectionError, OSError):
                    self._teardown()
                    attempt += 1
                    if not idempotent or attempt > self.retry_policy.max_retries:
                        raise
                    self.retries += 1
                    time.sleep(self.retry_policy.delay(attempt))

    def _exchange(self, payload: dict) -> dict:
        self._open(payload)
        if self.idle_deadline is not None:
            self._sock.settimeout(self.idle_deadline)
        try:
            status: dict[str, Any] = {}
            lines: list[Any] = []
            while True:
                frame = self._read_frame()
                if frame.type is FrameType.HEADERS:
                    status = frame.payload or {}
                elif frame.type is FrameType.DATA:
                    lines.append(frame.payload)
                elif frame.type is FrameType.ERROR:
                    err = frame.payload or {}
                    return {
                        "status": int(err.get("status", 500)),
                        "body": {
                            "error": err.get("error", "server error"),
                            "error_type": err.get("error_type"),
                        },
                    }
                else:  # END
                    body = frame.payload
                    if lines:
                        body = {"lines": lines, "summary": frame.payload}
                    return {"status": status.get("status", 500), "body": body}
        finally:
            if self._sock is not None:
                self._sock.settimeout(self._timeout)

    def stream(self, payload: dict) -> Iterator[Frame]:
        """Framed exchange yielding frames as they arrive on the wire.

        Heartbeats are filtered out; an ERROR frame is yielded (so the
        caller sees the structured failure) and terminates the stream.
        """
        with self._lock:
            try:
                self._ensure_connected()
                self._open(payload)
                if self.idle_deadline is not None:
                    self._sock.settimeout(self.idle_deadline)
                try:
                    while True:
                        frame = self._read_frame()
                        yield frame
                        if frame.type in (FrameType.END, FrameType.ERROR):
                            return
                finally:
                    if self._sock is not None:
                        self._sock.settimeout(self._timeout)
            except (ConnectionError, OSError):
                self._teardown()
                raise

    def ping(self, timeout: float = 5.0) -> float:
        """Round-trip liveness probe; returns the RTT in seconds.

        Sends a PING and waits up to ``timeout`` for the PONG.  Raises
        :class:`HeartbeatTimeout` when the server never answers.
        """
        with self._lock:
            try:
                self._ensure_connected()
                started = time.monotonic()
                stream_id = self._next_stream_id
                self._next_stream_id += 2
                self._wfile.write(
                    Frame(stream_id, FrameType.PING, {"ts": time.time()}).encode()
                )
                self._wfile.flush()
                self.pings_sent += 1
                self._sock.settimeout(timeout)
                try:
                    while True:
                        frame = Frame.read_from(self._rfile)
                        if frame is None:
                            raise ConnectionError("server closed during ping")
                        if frame.type is FrameType.PONG:
                            return time.monotonic() - started
                except TimeoutError as exc:
                    raise HeartbeatTimeout(
                        f"server did not answer PING within {timeout}s"
                    ) from exc
                finally:
                    if self._sock is not None:
                        self._sock.settimeout(self._timeout)
            except (ConnectionError, OSError):
                self._teardown()
                raise

    def close(self) -> None:
        """Close the socket and its file handles."""
        self._teardown()
