"""Service layer: authentication, registry operations and execution.

This is where the paper's feature set lives:

* :class:`AuthService` — user registration/login with salted password
  hashes and opaque session tokens.
* :class:`RegistryService` — PE/workflow registration with automatic
  description generation (CodeT5 substitute, full-class context, §IV-C),
  description embeddings (UniXcoder substitute, §V-B) and SPT embeddings
  (Aroma features, §VI) computed once and stored in the registry; plus
  literal search, semantic search and code recommendation.
* :class:`ExecutionService` — workflow runs through the execution
  engine with Execution/Response bookkeeping and the §IV-F resource
  handshake.
* :class:`JobService` — asynchronous workflow runs: submission into the
  bounded job queue (429 on backpressure), polling, cancellation.
"""

from __future__ import annotations

import ast
import hashlib
import hmac
import json
import secrets
import time
from collections import Counter
from pathlib import Path
from typing import Any

import numpy as np

from repro.aroma.features import extract_features
from repro.aroma.spt import ParseFailure, python_to_spt
from repro.d4py.mappings import MAPPINGS
from repro.laminar.execution.engine import ExecutionEngine
from repro.laminar.jobs import (
    InvalidTransition,
    JobManager,
    JobSpec,
    JobState,
    QueueFull,
    UnknownJob,
)
from repro.laminar.execution.resources import ResourceManifestEntry, file_digest
from repro.laminar.server.dataaccess import (
    ExecutionRepository,
    PERepository,
    ResponseRepository,
    UserRepository,
    WorkflowRepository,
)
from repro.laminar.server.models import PERecord, UserRecord, WorkflowRecord
from repro.laminar.transport.inprocess import ServerStream
from repro.models.describer import CodeT5Describer, DescriptionContext
from repro.models.embedder import UniXcoderEmbedder
from repro.models.reacc import ReACCRetriever
from repro.obs.events import format_event
from repro.search.code import CodeSearch
from repro.search.index import IndexPersistenceError, load_index, save_index
from repro.search.semantic import SemanticSearch

__all__ = [
    "AuthService",
    "RegistryService",
    "ExecutionService",
    "JobService",
    "ServiceError",
]

#: Base classes that mark a class definition as a Processing Element.
_PE_BASES = {"GenericPE", "IterativePE", "ProducerPE", "ConsumerPE", "CompositePE"}

#: Laminar's defaults for code recommendation (§VI-A).
DEFAULT_TOP_K = 5
DEFAULT_SPT_THRESHOLD = 6.0


class ServiceError(Exception):
    """A client-visible failure with an HTTP-ish status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


#: Credential prefix that routes ``resolve`` to the API-key table
#: instead of the in-memory session map.
API_KEY_PREFIX = "lmk_"

#: Default sliding session lifetime (seconds).
DEFAULT_TOKEN_TTL = 24 * 3600.0


class AuthService:
    """Registration, login, logout and credential resolution.

    Two credential kinds share the ``token`` request field:

    * **session tokens** — minted by :meth:`login`, in-memory, with a
      *sliding* TTL (each successful resolve extends the expiry);
    * **API keys** — minted by :meth:`create_api_key`, ``lmk_``-prefixed,
      stored as SHA-256 digests in the registry database, long-lived
      until revoked, and valid across server restarts.

    With ``require_auth`` set, tokenless requests are rejected with 401
    instead of falling back to the shared guest account.
    """

    def __init__(
        self,
        users: UserRepository,
        api_keys=None,
        require_auth: bool = False,
        token_ttl: float = DEFAULT_TOKEN_TTL,
    ) -> None:
        self.users = users
        self.api_keys = api_keys
        self.require_auth = require_auth
        self.token_ttl = float(token_ttl)
        #: token → (user_id, expires_at epoch seconds).
        self._tokens: dict[str, tuple[int, float]] = {}
        self._guest: UserRecord | None = None

    @staticmethod
    def _hash(password: str, salt: str) -> str:
        return salt + ":" + hashlib.sha256((salt + password).encode()).hexdigest()

    @staticmethod
    def _verify(password: str, stored: str) -> bool:
        salt, _, _digest = stored.partition(":")
        # Constant-time comparison: with `==`, response timing leaks how
        # many digest characters matched — exactly the co-residency
        # side channel the Shadow-Hunting threat model exploits.
        return hmac.compare_digest(AuthService._hash(password, salt), stored)

    def register(self, user_name: str, password: str) -> dict:
        """Create an account; 409 when the name is taken."""
        if not user_name:
            raise ServiceError(400, "userName is required")
        if self.users.by_name(user_name) is not None:
            raise ServiceError(409, f"user {user_name!r} already exists")
        user = self.users.create(user_name, self._hash(password, secrets.token_hex(8)))
        return user.to_public()

    def login(self, user_name: str, password: str) -> dict:
        """Verify credentials; returns a session token (sliding TTL)."""
        user = self.users.by_name(user_name)
        if user is None or not self._verify(password, user.passwordHash):
            raise ServiceError(401, "invalid credentials")
        token = secrets.token_hex(16)
        self._tokens[token] = (user.userId, time.time() + self.token_ttl)
        return {"token": token, "expiresIn": self.token_ttl, **user.to_public()}

    def logout(self, token: str | None) -> dict:
        """Revoke a session token (idempotent)."""
        revoked = bool(token) and self._tokens.pop(token, None) is not None
        return {"loggedOut": revoked}

    def _evict_expired(self, now: float) -> None:
        expired = [t for t, (_, exp) in self._tokens.items() if exp <= now]
        for token in expired:
            del self._tokens[token]

    # -- API keys ------------------------------------------------------------

    @staticmethod
    def _key_digest(key: str) -> str:
        return hashlib.sha256(key.encode()).hexdigest()

    def create_api_key(self, user: UserRecord, name: str = "") -> dict:
        """Mint a long-lived API key for ``user``.

        The plaintext key is returned exactly once; only its SHA-256
        digest is stored, so a leaked database does not leak keys.
        """
        if self.api_keys is None:
            raise ServiceError(501, "API keys are not enabled on this server")
        key = API_KEY_PREFIX + secrets.token_hex(20)
        record = self.api_keys.create(user.userId, self._key_digest(key), name)
        return {"apiKey": key, "keyId": record.keyId, "name": record.name}

    def revoke_api_key(self, user: UserRecord, key_id: int) -> dict:
        """Revoke one of the caller's own API keys (404 otherwise)."""
        if self.api_keys is None:
            raise ServiceError(501, "API keys are not enabled on this server")
        record = self.api_keys.get(int(key_id))
        if record is None or record.userId != user.userId:
            raise ServiceError(404, f"no API key {key_id!r}")
        self.api_keys.delete(record.keyId)
        return {"revoked": record.keyId}

    def _resolve_api_key(self, key: str) -> UserRecord:
        if self.api_keys is None:
            raise ServiceError(401, "invalid or expired token")
        record = self.api_keys.by_digest(self._key_digest(key))
        if record is None:
            raise ServiceError(401, "invalid or expired token")
        user = self.users.get(record.userId)
        if user is None:  # pragma: no cover - key for a deleted user
            raise ServiceError(401, "user no longer exists")
        return user

    # -- resolution ----------------------------------------------------------

    def resolve(self, token: str | None) -> UserRecord:
        """Map a credential to its user; tokenless requests act as guest.

        The guest account keeps single-user workflows friction-free (the
        paper's CLI examples never log in) while the schema still records
        ownership — unless the server runs with ``require_auth``, in
        which case anonymous requests answer 401.
        """
        now = time.time()
        self._evict_expired(now)
        if token:
            if token.startswith(API_KEY_PREFIX):
                return self._resolve_api_key(token)
            entry = self._tokens.get(token)
            if entry is None:
                raise ServiceError(401, "invalid or expired token")
            user_id, _expires = entry
            # Sliding TTL: activity keeps the session alive.
            self._tokens[token] = (user_id, now + self.token_ttl)
            user = self.users.get(user_id)
            if user is None:  # pragma: no cover - token for a deleted user
                raise ServiceError(401, "user no longer exists")
            return user
        if self.require_auth:
            raise ServiceError(
                401, "authentication required: log in or present an API key"
            )
        if self._guest is None:
            self._guest = self.users.by_name("guest") or self.users.create(
                "guest", self._hash("", secrets.token_hex(8))
            )
        return self._guest


class _SemanticIndexState:
    """One kind's live semantic index: the index, its record map, and the
    registry revision it reflects."""

    __slots__ = ("search", "by_id", "revision")

    def __init__(self, search: SemanticSearch, by_id: dict, revision: int) -> None:
        self.search = search
        self.by_id = by_id
        self.revision = revision


class RegistryService:
    """PE/workflow registration, metadata generation and search.

    Semantic search runs on persistent incremental
    :class:`~repro.search.index.VectorIndex` instances (one per kind):
    register/update/remove apply O(1) index deltas instead of the old
    rebuild-on-revision-bump, and ``index_dir`` enables warm starts —
    the index is persisted with :func:`repro.search.index.save_index`
    and memmap-loaded on the next boot instead of re-parsing every
    stored embedding.  A corrupt or stale persisted index falls back,
    loudly, to a rebuild from the registry (the source of truth).
    """

    def __init__(
        self,
        pes: PERepository,
        workflows: WorkflowRepository,
        describer: CodeT5Describer | None = None,
        embedder: UniXcoderEmbedder | None = None,
        reacc: ReACCRetriever | None = None,
        index_dir: str | Path | None = None,
        shard_id: str | None = None,
        quotas=None,
    ) -> None:
        self.pes = pes
        self.workflows = workflows
        #: Optional :class:`~repro.laminar.tenancy.QuotaConfig`; bounds
        #: each tenant's registry rows (PEs + workflows) at registration.
        self.quotas = quotas
        self.describer = describer or CodeT5Describer()
        self.embedder = embedder or UniXcoderEmbedder()
        self.reacc = reacc or ReACCRetriever()
        self.index_dir = Path(index_dir) if index_dir else None
        #: Cluster shard this registry partition belongs to (None when
        #: running standalone); stamped into index lifecycle events so
        #: merged logs from a cluster stay attributable.
        self.shard_id = shard_id
        # Search-index caching: any registry mutation bumps the revision.
        # Semantic indexes are updated *incrementally* by the mutation
        # paths below (state.revision tracks _revision); a revision bump
        # with no matching index delta (e.g. registry import) leaves the
        # state stale and the next query rebuilds from the registry.
        self._revision = 0
        self._sem_states: dict[str, _SemanticIndexState] = {}
        self._code_cache: tuple[int, CodeSearch, dict] | None = None
        #: Structured one-line events from index lifecycle (warm starts,
        #: rebuilds, corruption fallbacks) — surfaced via index_stats.
        self.index_events: list[str] = []
        self._rebuilds = {"pe": 0, "workflow": 0}
        self._metrics: dict[str, Any] | None = None

    def _mutated(self) -> None:
        self._revision += 1

    def _mutated_with_deltas(self) -> None:
        """Revision bump for a mutation whose index updates are applied
        explicitly via ``_index_add``/``_index_remove``.

        States already synced stay synced (a PE registration must not
        make the untouched workflow index look stale); the touched kind
        is re-synced by its delta. Plain :meth:`_mutated` remains the
        out-of-band path (e.g. registry import) that stales everything.
        """
        before = self._revision
        self._revision += 1
        for state in self._sem_states.values():
            if state.revision == before:
                state.revision = self._revision

    # -- observability -------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Register search/index metrics on a ``repro.obs`` registry."""
        self._metrics = {
            "queries": registry.counter(
                "laminar_search_queries_total",
                "Search queries served, by mode and kind.",
                ("mode", "kind"),
            ),
            "latency": registry.histogram(
                "laminar_search_query_seconds",
                "Search query latency, by mode.",
                ("mode",),
            ),
            "size": registry.gauge(
                "laminar_search_index_size",
                "Live items in the semantic index, by kind.",
                ("kind",),
            ),
            "candidates": registry.gauge(
                "laminar_search_candidates",
                "Vectors scored by the last semantic query, by kind.",
                ("kind",),
            ),
            "rebuilds": registry.counter(
                "laminar_search_index_rebuilds_total",
                "Semantic index rebuilds from the registry, by kind and cause.",
                ("kind", "cause"),
            ),
            "warm_starts": registry.counter(
                "laminar_search_index_warm_starts_total",
                "Semantic indexes loaded from their persisted form, by kind.",
                ("kind",),
            ),
        }

    def _metric(self, name: str):
        return self._metrics.get(name) if self._metrics else None

    def _record_query(self, mode: str, kind: str, started: float) -> None:
        if not self._metrics:
            return
        self._metrics["queries"].labels(mode, kind).inc()
        self._metrics["latency"].labels(mode).observe(time.monotonic() - started)

    def _index_event(self, event: str, **fields: Any) -> None:
        if self.shard_id is not None:
            fields.setdefault("shard", self.shard_id)
        self.index_events.append(format_event(event, component="search", **fields))

    # -- semantic index lifecycle --------------------------------------------

    def _kind_records(self, kind: str) -> list[PERecord | WorkflowRecord]:
        return list(self.pes.all() if kind == "pe" else self.workflows.all())

    def _record_id(self, kind: str, record: PERecord | WorkflowRecord) -> int:
        return record.peId if kind == "pe" else record.workflowId

    def _record_vector(self, record: PERecord | WorkflowRecord) -> list[float]:
        return record.desc_vector() or [0.0] * self.embedder.dim

    def _kind_dir(self, kind: str, base: Path | None = None) -> Path | None:
        root = base if base is not None else self.index_dir
        return (root / kind) if root is not None else None

    def _try_warm_start(self, kind: str) -> _SemanticIndexState | None:
        """Load the persisted index for ``kind`` if it matches the registry."""
        path = self._kind_dir(kind)
        if path is None or not path.exists():
            return None
        try:
            index = load_index(path, mmap=True, verify=True)
        except IndexPersistenceError as exc:
            self._index_event(
                "index_corrupt", kind=kind, reason=exc.reason, detail=exc.detail
            )
            counter = self._metric("rebuilds")
            if counter:
                counter.labels(kind, "corrupt").inc()
            return None
        records = self._kind_records(kind)
        by_id = {self._record_id(kind, r): r for r in records}
        if set(index.ids) != set(by_id):
            # Registry changed since the index was saved — it is not a
            # warm copy of the truth, so rebuild rather than serve it.
            self._index_event(
                "index_stale", kind=kind, persisted=len(index), registry=len(by_id)
            )
            counter = self._metric("rebuilds")
            if counter:
                counter.labels(kind, "stale").inc()
            return None
        self._index_event("index_warm_start", kind=kind, items=len(index))
        counter = self._metric("warm_starts")
        if counter:
            counter.labels(kind).inc()
        search = SemanticSearch(self.embedder, index=index)
        return _SemanticIndexState(search, by_id, self._revision)

    def _rebuild_state(self, kind: str, cause: str) -> _SemanticIndexState:
        records = self._kind_records(kind)
        search = SemanticSearch(self.embedder)
        by_id = {}
        ids, vectors = [], []
        for record in records:
            rid = self._record_id(kind, record)
            by_id[rid] = record
            ids.append(rid)
            vectors.append(self._record_vector(record))
        if ids:
            search.add_precomputed_batch(
                ids, np.asarray(vectors, dtype=np.float32)
            )
        self._rebuilds[kind] += 1
        counter = self._metric("rebuilds")
        if counter:
            counter.labels(kind, cause).inc()
        return _SemanticIndexState(search, by_id, self._revision)

    def _sem_state(self, kind: str) -> _SemanticIndexState:
        """The live semantic index for ``kind``, (re)built only when needed."""
        state = self._sem_states.get(kind)
        if state is not None and state.revision == self._revision:
            return state
        if state is None:
            warmed = self._try_warm_start(kind)
            state = warmed or self._rebuild_state(kind, "cold")
        else:
            # Revision moved without an index delta (registry import or a
            # direct repository write) — the registry is the truth.
            state = self._rebuild_state(kind, "stale")
        self._sem_states[kind] = state
        gauge = self._metric("size")
        if gauge:
            gauge.labels(kind).set(len(state.search))
        return state

    def _index_add(self, kind: str, record: PERecord | WorkflowRecord) -> None:
        """Apply one insert/update delta to the live index, if built."""
        state = self._sem_states.get(kind)
        if state is None:
            return
        rid = self._record_id(kind, record)
        state.search.add_precomputed(rid, self._record_vector(record))
        state.by_id[rid] = record
        state.revision = self._revision
        gauge = self._metric("size")
        if gauge:
            gauge.labels(kind).set(len(state.search))

    def _index_remove(self, kind: str, record_id: int) -> None:
        """Apply one remove delta to the live index, if built."""
        state = self._sem_states.get(kind)
        if state is None:
            return
        state.search.remove(record_id)
        state.by_id.pop(record_id, None)
        state.revision = self._revision
        gauge = self._metric("size")
        if gauge:
            gauge.labels(kind).set(len(state.search))

    # -- index management actions --------------------------------------------

    def index_stats(self) -> dict:
        """Occupancy, rebuild and persistence stats of the semantic indexes."""
        kinds = {}
        for kind in ("pe", "workflow"):
            state = self._sem_state(kind)
            stats = state.search.index.stats()
            stats["rebuilds"] = self._rebuilds[kind]
            stats["synced"] = state.revision == self._revision
            kinds[kind] = stats
        return {
            "revision": self._revision,
            "shard": self.shard_id,
            "index_dir": str(self.index_dir) if self.index_dir else None,
            "kinds": kinds,
            "events": list(self.index_events[-20:]),
        }

    def index_save(self, path: str | None = None) -> dict:
        """Persist both semantic indexes for warm starts; returns manifests."""
        base = Path(path) if path else self.index_dir
        if base is None:
            raise ServiceError(
                400, "no index path: pass one or configure the server's index_dir"
            )
        saved = {}
        for kind in ("pe", "workflow"):
            state = self._sem_state(kind)
            target = self._kind_dir(kind, base)
            try:
                manifest = save_index(state.search.index, target)
            except (IndexPersistenceError, OSError, AttributeError) as exc:
                raise ServiceError(500, f"cannot save {kind} index: {exc}") from exc
            saved[kind] = {
                "path": str(target),
                "count": manifest["count"],
                "dim": manifest["dim"],
                "checksum": manifest["checksum"],
            }
            self._index_event("index_saved", kind=kind, items=manifest["count"])
        return saved

    # -- metadata helpers ---------------------------------------------------

    def _desc_embedding(self, description: str) -> str:
        return json.dumps(self.embedder.encode(description)[0].round(8).tolist())

    def _spt_embedding(self, code: str) -> str:
        try:
            return json.dumps(dict(extract_features(python_to_spt(code))))
        except ParseFailure:
            return json.dumps({})

    # -- PE registration ------------------------------------------------------

    @staticmethod
    def extract_pe_classes(code: str) -> list[tuple[str, str]]:
        """Find PE class definitions: ``[(class_name, class_source), ...]``.

        A class is a PE when any base name (directly or dotted) is one of
        the dispel4py PE base classes.  This is the client-side "extracts
        the full class definition" step of §VI, performed server-side too
        for defence in depth.
        """
        try:
            from repro import pyast

            tree = pyast.parse(code)
        except SyntaxError as exc:
            raise ServiceError(400, f"code does not parse: {exc}") from exc
        found = []
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = set()
            for base in node.bases:
                if isinstance(base, ast.Name):
                    base_names.add(base.id)
                elif isinstance(base, ast.Attribute):
                    base_names.add(base.attr)
            if base_names & _PE_BASES:
                segment = ast.get_source_segment(code, node)
                if segment:
                    found.append((node.name, segment))
        return found

    def _check_registry_quota(self, user: UserRecord, adding: int = 1) -> None:
        """429 when registering ``adding`` rows would exceed the tenant's
        registry-row quota (PEs + workflows combined)."""
        if self.quotas is None or user is None:
            return
        cap = self.quotas.for_tenant(user.userName).max_registry_rows
        if cap is None:
            return
        held = self.pes.count(user.userId) + self.workflows.count(user.userId)
        if held + adding > cap:
            raise ServiceError(
                429,
                f"tenant {user.userName!r} is at its registry quota "
                f"({held}/{cap} rows); remove entries before registering more",
            )

    def register_pe(
        self, user: UserRecord, code: str, name: str | None = None,
        description: str | None = None,
    ) -> PERecord:
        """Register one PE; generates description/embeddings when absent."""
        self._check_registry_quota(user)
        classes = self.extract_pe_classes(code)
        if classes:
            class_name, class_source = classes[0]
        else:
            # Accept non-class snippets (bare functions) under a given name.
            if not name:
                raise ServiceError(
                    400, "code defines no PE class and no name was provided"
                )
            class_name, class_source = name, code
        desc = description or self.describer.describe(
            class_source, DescriptionContext.FULL_CLASS
        )
        record = self.pes.create(
            user_id=user.userId,
            name=name or class_name,
            code=class_source,
            description=desc,
            desc_embedding=self._desc_embedding(desc),
            spt_embedding=self._spt_embedding(class_source),
        )
        self._mutated_with_deltas()
        self._index_add("pe", record)
        return record

    def register_workflow(
        self,
        user: UserRecord,
        code: str,
        name: str,
        description: str | None = None,
        entry_point: str | None = None,
    ) -> tuple[WorkflowRecord, list[PERecord]]:
        """Register a workflow and every PE it defines (paper Fig 5a)."""
        classes = self.extract_pe_classes(code)
        self._check_registry_quota(user, adding=len(classes) + 1)
        pe_records = [
            self.pes.create(
                user_id=user.userId,
                name=class_name,
                code=class_source,
                description=self.describer.describe(
                    class_source, DescriptionContext.FULL_CLASS
                ),
                desc_embedding=self._desc_embedding(
                    self.describer.describe(class_source)
                ),
                spt_embedding=self._spt_embedding(class_source),
            )
            for class_name, class_source in classes
        ]
        desc = description or self.describer.describe_workflow(
            name, [src for _, src in classes]
        )
        workflow = self.workflows.create(
            user_id=user.userId,
            name=name,
            code=code,
            entry_point=entry_point or "",
            description=desc,
            desc_embedding=self._desc_embedding(desc),
            spt_embedding=self._spt_embedding(code),
        )
        for pe in pe_records:
            self.workflows.link_pe(workflow.workflowId, pe.peId)
        self._mutated_with_deltas()
        for pe in pe_records:
            self._index_add("pe", pe)
        self._index_add("workflow", workflow)
        return workflow, pe_records

    # -- lookup --------------------------------------------------------------------

    @staticmethod
    def _owned(record, user: UserRecord | None) -> bool:
        """Tenant check: ``user=None`` means an unscoped (internal) caller.

        Cross-tenant access answers 404, not 403 — a 403 would confirm
        the entity exists, handing other tenants an enumeration oracle.
        """
        return user is None or record.userId == user.userId

    def get_pe(self, ident: int | str, user: UserRecord | None = None) -> PERecord:
        """Resolve a PE by numeric id or name, scoped to ``user`` (404
        when absent or owned by another tenant)."""
        record = (
            self.pes.get(int(ident))
            if str(ident).isdigit()
            else self.pes.by_name(str(ident))
        )
        if record is None or not self._owned(record, user):
            raise ServiceError(404, f"no PE {ident!r}")
        return record

    def get_workflow(
        self, ident: int | str, user: UserRecord | None = None
    ) -> WorkflowRecord:
        """Resolve a workflow by numeric id or name, scoped to ``user``
        (404 when absent or owned by another tenant)."""
        record = (
            self.workflows.get(int(ident))
            if str(ident).isdigit()
            else self.workflows.by_name(str(ident))
        )
        if record is None or not self._owned(record, user):
            raise ServiceError(404, f"no workflow {ident!r}")
        return record

    def registry_listing(self, user: UserRecord | None = None) -> dict:
        """The caller's PEs and workflows, without code bodies (every
        tenant's when unscoped)."""
        user_id = None if user is None else user.userId
        return {
            "pes": [
                pe.to_public(include_code=False)
                for pe in self.pes.all(user_id=user_id)
            ],
            "workflows": [
                wf.to_public(include_code=False)
                for wf in self.workflows.all(user_id=user_id)
            ],
        }

    # -- description updates ----------------------------------------------------------

    def update_pe_description(
        self, ident: int | str, description: str, user: UserRecord | None = None
    ) -> PERecord:
        """Replace a PE's description and re-embed it."""
        pe = self.get_pe(ident, user=user)
        self.pes.update_description(
            pe.peId, description, self._desc_embedding(description)
        )
        self._mutated_with_deltas()
        updated = self.pes.get(pe.peId)
        self._index_add("pe", updated)
        return updated

    def update_workflow_description(
        self, ident: int | str, description: str, user: UserRecord | None = None
    ) -> WorkflowRecord:
        """Replace a workflow's description and re-embed it."""
        wf = self.get_workflow(ident, user=user)
        self.workflows.update_description(
            wf.workflowId, description, self._desc_embedding(description)
        )
        self._mutated_with_deltas()
        updated = self.workflows.get(wf.workflowId)
        self._index_add("workflow", updated)
        return updated

    # -- search -------------------------------------------------------------------------

    def literal_search(
        self, term: str, kind: str = "all", user: UserRecord | None = None
    ) -> dict:
        """Substring search over names and descriptions (§V-A, Fig 7),
        scoped to the caller's rows when a ``user`` is given."""
        started = time.monotonic()
        user_id = None if user is None else user.userId
        result: dict[str, list] = {}
        if kind in ("all", "pe"):
            result["pes"] = [
                pe.to_public(include_code=False)
                for pe in self.pes.literal_search(term, user_id=user_id)
            ]
        if kind in ("all", "workflow"):
            result["workflows"] = [
                wf.to_public(include_code=False)
                for wf in self.workflows.literal_search(term, user_id=user_id)
            ]
        self._record_query("literal", kind, started)
        return result

    def semantic_search(
        self,
        query: str,
        kind: str = "pe",
        top_k: int = DEFAULT_TOP_K,
        user: UserRecord | None = None,
    ) -> list[dict]:
        """Text-to-code search by embedding cosine (§V-B, Fig 8).

        Served from the kind's persistent incremental index
        (:class:`~repro.search.index.VectorIndex` under
        :class:`~repro.search.semantic.SemanticSearch`): registrations
        and removals apply O(1) deltas, so a query costs one matrix
        product over the live corpus — no per-revision rebuild.
        """
        started = time.monotonic()
        state = self._sem_state(kind)
        if not state.by_id:
            self._record_query("semantic", kind, started)
            return []
        # Tenancy: the vector index is shared across tenants; scoped
        # queries over-fetch (the whole corpus) and filter by owner so a
        # tenant's top-k is never diluted by rows it cannot see.
        fetch = len(state.search) if user is not None else top_k
        out = []
        for rid, sim in state.search.search(query, top_k=fetch):
            record = state.by_id[rid]
            if not self._owned(record, user):
                continue
            entry = record.to_public(include_code=False)
            entry["cosine_similarity"] = float(round(sim, 6))
            out.append(entry)
            if len(out) >= top_k:
                break
        gauge = self._metric("candidates")
        if gauge:
            gauge.labels(kind).set(len(state.search))
        self._record_query("semantic", kind, started)
        return out

    def code_recommendation(
        self,
        snippet: str,
        kind: str = "pe",
        embedding_type: str = "spt",
        top_k: int = DEFAULT_TOP_K,
        threshold: float | None = None,
        user: UserRecord | None = None,
    ) -> list[dict]:
        """Code-to-code recommendation (§VI-A, Fig 9).

        ``embedding_type='spt'`` (default) scores by SPT-feature overlap
        against the stored ``sptEmbedding`` with Laminar's threshold of
        6.0; ``'llm'`` falls back to the ReACC retriever.  Workflow
        recommendations find similar PEs first, then rank the workflows
        containing them by occurrence (only supported for 'spt').
        """
        started = time.monotonic()
        if embedding_type not in ("spt", "llm"):
            raise ServiceError(400, f"unknown embedding_type {embedding_type!r}")
        if kind == "workflow" and embedding_type == "llm":
            raise ServiceError(
                400, "workflow recommendations are only possible with 'spt'"
            )
        if self._code_cache is not None and self._code_cache[0] == self._revision:
            _, index, by_id = self._code_cache
        else:
            pes = self.pes.all()
            index = CodeSearch(self.reacc)
            by_id = {pe.peId: pe for pe in pes}
            for pe in pes:
                index.add(pe.peId, pe.peCode, features=pe.spt_features())
            self._code_cache = (self._revision, index, by_id)
        if not by_id:
            return []
        wide = max(len(by_id), top_k)
        try:
            if embedding_type == "spt":
                cut = DEFAULT_SPT_THRESHOLD if threshold is None else threshold
                hits = index.search_spt(snippet, top_k=wide, threshold=cut)
            else:
                cut = 0.1 if threshold is None else threshold
                hits = index.search_llm(snippet, top_k=wide, threshold=cut)
        except ParseFailure as exc:
            raise ServiceError(400, f"snippet does not parse: {exc}") from exc
        scored = [
            (score, by_id[pe_id])
            for pe_id, score in hits
            if self._owned(by_id[pe_id], user)
        ]

        if kind == "pe":
            out = []
            for score, pe in scored[:top_k]:
                entry = pe.to_public()
                entry["score"] = round(float(score), 4)
                out.append(entry)
            self._record_query("code", kind, started)
            return out

        # Workflow recommendation: aggregate over workflows containing hits.
        occurrences: Counter = Counter()
        best_scores: dict[int, float] = {}
        wf_by_id: dict[int, WorkflowRecord] = {}
        for score, pe in scored:
            for wf in self.workflows.workflows_of_pe(pe.peId):
                if not self._owned(wf, user):
                    continue
                occurrences[wf.workflowId] += 1
                best_scores[wf.workflowId] = max(
                    best_scores.get(wf.workflowId, 0.0), float(score)
                )
                wf_by_id[wf.workflowId] = wf
        ranked = sorted(
            occurrences, key=lambda wid: (-best_scores[wid], -occurrences[wid])
        )
        out = []
        for wid in ranked[:top_k]:
            entry = wf_by_id[wid].to_public()
            entry["occurrences"] = occurrences[wid]
            entry["score"] = round(best_scores[wid], 4)
            out.append(entry)
        self._record_query("code", kind, started)
        return out

    def code_completion(
        self,
        snippet: str,
        embedding_type: str = "spt",
        top_k: int = 3,
        user: UserRecord | None = None,
    ) -> list[dict]:
        """Complete a partial snippet from the best-matching PEs (§I).

        Retrieval reuses :meth:`code_recommendation`; for each hit the
        *continuation* is computed by aligning the query against the
        matched PE's source — the suggestion is the code that follows the
        last line the developer has already written.  Hits whose code is
        fully contained in the query offer nothing and are skipped.
        """
        hits = self.code_recommendation(
            snippet, kind="pe", embedding_type=embedding_type,
            top_k=max(top_k * 2, top_k), threshold=1.0 if embedding_type == "spt" else None,
            user=user,
        )
        query_lines = [line.strip() for line in snippet.splitlines() if line.strip()]
        completions = []
        for hit in hits:
            source_lines = hit["peCode"].splitlines()
            cut = 0
            if query_lines:
                stripped = [line.strip() for line in source_lines]
                last = query_lines[-1]
                for i, line in enumerate(stripped):
                    if line and (line in last or last in line):
                        cut = i + 1
            continuation = "\n".join(source_lines[cut:]).strip("\n")
            if not continuation:
                continue
            completions.append(
                {
                    "peId": hit["peId"],
                    "peName": hit["peName"],
                    "score": hit["score"],
                    "completion": continuation,
                }
            )
            if len(completions) >= top_k:
                break
        return completions

    # -- removal -----------------------------------------------------------------------

    def remove_pe(self, ident: int | str, user: UserRecord | None = None) -> dict:
        """Delete a PE by id or name (the caller's own when scoped)."""
        pe = self.get_pe(ident, user=user)
        self.pes.delete(pe.peId)
        self._mutated_with_deltas()
        self._index_remove("pe", pe.peId)
        return {"removed": pe.peName, "peId": pe.peId}

    def remove_workflow(
        self, ident: int | str, user: UserRecord | None = None
    ) -> dict:
        """Delete a workflow by id or name (the caller's own when scoped)."""
        wf = self.get_workflow(ident, user=user)
        self.workflows.delete(wf.workflowId)
        self._mutated_with_deltas()
        self._index_remove("workflow", wf.workflowId)
        return {"removed": wf.workflowName, "workflowId": wf.workflowId}

    def remove_all(self, user: UserRecord | None = None) -> dict:
        """Delete every PE and workflow (the caller's own when scoped)."""
        user_id = None if user is None else user.userId
        self._mutated()
        self._sem_states = {}
        return {
            "pes_removed": self.pes.delete_all(user_id=user_id),
            "workflows_removed": self.workflows.delete_all(user_id=user_id),
        }


class ExecutionService:
    """Runs registered workflows through the execution engine."""

    def __init__(
        self,
        registry: RegistryService,
        executions: ExecutionRepository,
        responses: ResponseRepository,
        engine: ExecutionEngine | None = None,
    ) -> None:
        self.registry = registry
        self.executions = executions
        self.responses = responses
        self.engine = engine or ExecutionEngine()

    def check_resources(self, manifest: list[dict]) -> dict:
        """The §IV-F handshake: which declared resources must be uploaded."""
        entries = [ResourceManifestEntry.from_dict(m) for m in manifest]
        return {"missing": self.engine.cache.missing(entries)}

    def upload_resource(self, data_hex: str) -> dict:
        """Store hex-encoded content; returns its digest."""
        data = bytes.fromhex(data_hex)
        digest = self.engine.cache.put(data)
        return {"digest": digest, "bytes": len(data)}

    def visualize_workflow(
        self, ident: int | str, user: UserRecord | None = None
    ) -> dict:
        """Graph renderings (text/DOT) of a registered workflow."""
        workflow = self.registry.get_workflow(ident, user=user)
        try:
            return self.engine.inspect(
                workflow.workflowCode, graph_name=workflow.entryPoint or None
            )
        except (SyntaxError, ValueError) as exc:
            raise ServiceError(400, f"cannot build workflow graph: {exc}") from exc

    def run_workflow(
        self,
        user: UserRecord,
        ident: int | str,
        input: Any = 1,
        mapping: str = "simple",
        resources: list[dict] | None = None,
        verbose: bool = False,
        **options: Any,
    ) -> ServerStream:
        """Start a run; returns a stream of output lines plus a summary.

        Raises :class:`ServiceError` 428 when declared resources are not
        yet cached (the client uploads them and retries).
        """
        workflow = self.registry.get_workflow(ident, user=user)
        if resources:
            missing = self.check_resources(resources)["missing"]
            if missing:
                raise ServiceError(
                    428, "resources required: " + ", ".join(sorted(missing))
                )
        execution = self.executions.create(
            workflow.workflowId,
            user.userId,
            mapping,
            json.dumps(input, default=str),
        )
        stream, outcome = self.engine.execute_streaming(
            workflow.workflowCode,
            input=input,
            mapping=mapping,
            graph_name=workflow.entryPoint or None,
            resources=resources,
            verbose=verbose,
            **options,
        )

        def chunks():
            collected = []
            for line in stream:
                collected.append(line)
                yield line
            self.executions.finish(execution.executionId, outcome.status)
            self.responses.create(
                execution.executionId,
                output=json.dumps(outcome.outputs),
                log_lines="\n".join(outcome.logs + collected),
            )

        return ServerStream(
            chunks(),
            summary=lambda: {
                "executionId": execution.executionId,
                **outcome.to_public(),
            },
        )


class JobService:
    """Asynchronous workflow runs over the jobs subsystem.

    Thin HTTP-ish shim over :class:`~repro.laminar.jobs.manager.
    JobManager`: resolves the workflow, freezes the submit parameters
    into a :class:`~repro.laminar.jobs.model.JobSpec` and maps
    job-subsystem failures to :class:`ServiceError` statuses (429 queue
    full, 404 unknown job, 409 illegal lifecycle operations).
    """

    def __init__(self, registry: RegistryService, manager: JobManager) -> None:
        self.registry = registry
        self.manager = manager

    def submit(
        self,
        user: UserRecord,
        ident: int | str,
        input: Any = 1,
        mapping: str = "simple",
        timeout: float | None = None,
        max_retries: int = 0,
        priority: int = 0,
        options: dict | None = None,
    ) -> dict:
        """Queue a run of a registered workflow; returns the QUEUED job."""
        if mapping not in MAPPINGS:
            raise ServiceError(400, f"unknown mapping {mapping!r}")
        workflow = self.registry.get_workflow(ident, user=user)
        spec = JobSpec(
            workflow_code=workflow.workflowCode,
            workflow_name=workflow.workflowName,
            workflow_id=workflow.workflowId,
            entry_point=workflow.entryPoint or None,
            user_id=user.userId,
            user_name=user.userName,
            input=input,
            mapping=mapping,
            options=dict(options or {}),
            priority=int(priority),
            timeout=float(timeout) if timeout is not None else None,
            max_retries=int(max_retries),
        )
        try:
            job = self.manager.submit(spec)
        except QueueFull as exc:
            raise ServiceError(429, str(exc)) from exc
        return job.to_public()

    def _job(self, job_id: int, user: UserRecord | None = None):
        """Fetch a job, scoped to its owner (404 for another tenant's —
        the same anti-enumeration choice as the registry lookups)."""
        try:
            job = self.manager.get(int(job_id))
        except (UnknownJob, ValueError) as exc:
            raise ServiceError(404, f"no job {job_id!r}") from exc
        if user is not None and job.spec.user_id != user.userId:
            raise ServiceError(404, f"no job {job_id!r}")
        return job

    def status(self, job_id: int, user: UserRecord | None = None) -> dict:
        """Current lifecycle state of one job."""
        return self._job(job_id, user=user).to_public()

    def result(self, job_id: int, user: UserRecord | None = None) -> dict:
        """Terminal state plus outcome; 409 while the job is still live."""
        job = self._job(job_id, user=user)
        if not job.terminal:
            raise ServiceError(
                409, f"job {job.job_id} not finished (state {job.state.value})"
            )
        return job.to_public(include_result=True)

    def logs(self, job_id: int, user: UserRecord | None = None) -> dict:
        """Output lines captured so far (usable mid-run)."""
        job = self._job(job_id, user=user)
        return {
            "jobId": job.job_id,
            "state": job.state.value,
            "lines": job.log_snapshot(),
        }

    def cancel(self, job_id: int, user: UserRecord | None = None) -> dict:
        """Cooperatively cancel a queued or running job (409 when final)."""
        self._job(job_id, user=user)
        try:
            return self.manager.cancel(int(job_id)).to_public()
        except InvalidTransition as exc:
            raise ServiceError(409, str(exc)) from exc

    def list_jobs(
        self,
        state: str | None = None,
        limit: int = 50,
        user: UserRecord | None = None,
    ) -> list[dict]:
        """Newest-first job summaries (the caller's own when scoped)."""
        if state is not None:
            try:
                state = JobState(str(state).upper())
            except ValueError as exc:
                raise ServiceError(400, f"unknown job state {state!r}") from exc
        return self.manager.list_jobs(
            state=state,
            limit=int(limit),
            user_id=None if user is None else user.userId,
        )
