"""The Laminar server, organised in the paper's four layers (§III):

* :mod:`repro.laminar.server.models` — record dataclasses.
* :mod:`repro.laminar.server.dataaccess` — repositories over the registry.
* :mod:`repro.laminar.server.services` — auth, registry (registration,
  description/embedding generation, search) and execution services.
* :mod:`repro.laminar.server.controllers` — request routing.
* :mod:`repro.laminar.server.app` — :class:`LaminarServer`, the assembled
  application handling transport payloads.
"""

from repro.laminar.server.app import LaminarServer

__all__ = ["LaminarServer"]
