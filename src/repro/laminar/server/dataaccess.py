"""Data-access layer: repositories over the registry database.

Each repository owns the SQL for one entity and returns model records,
keeping the service layer free of SQL — the layering the paper describes
("controllers, services, models, and data access").
"""

from __future__ import annotations

import json

from repro.laminar.registry.database import RegistryDatabase
from repro.laminar.server.models import (
    ApiKeyRecord,
    ExecutionRecord,
    JobRecord,
    PERecord,
    ResponseRecord,
    UserRecord,
    WorkflowRecord,
)

__all__ = [
    "UserRepository",
    "ApiKeyRepository",
    "PERepository",
    "WorkflowRepository",
    "ExecutionRepository",
    "ResponseRepository",
    "JobRepository",
]


class UserRepository:
    """SQL access for User rows."""
    def __init__(self, db: RegistryDatabase) -> None:
        self.db = db

    def create(self, user_name: str, password_hash: str) -> UserRecord:
        """Insert one row; returns the stored record."""
        user_id = self.db.execute(
            "INSERT INTO User (userName, passwordHash) VALUES (?, ?)",
            (user_name, password_hash),
        )
        return self.get(user_id)

    def get(self, user_id: int) -> UserRecord | None:
        """Fetch by primary key, or ``None``."""
        row = self.db.query_one("SELECT * FROM User WHERE userId = ?", (user_id,))
        return UserRecord(**row) if row else None

    def by_name(self, user_name: str) -> UserRecord | None:
        """Fetch the newest record with this name, or ``None``."""
        row = self.db.query_one(
            "SELECT * FROM User WHERE userName = ?", (user_name,)
        )
        return UserRecord(**row) if row else None


class ApiKeyRepository:
    """SQL access for ApiKey rows (long-lived credentials, digest-only)."""

    def __init__(self, db: RegistryDatabase) -> None:
        self.db = db

    def create(self, user_id: int, key_digest: str, name: str = "") -> ApiKeyRecord:
        """Insert one row; returns the stored record."""
        key_id = self.db.execute(
            "INSERT INTO ApiKey (userId, keyDigest, name) VALUES (?, ?, ?)",
            (user_id, key_digest, name),
        )
        return self.get(key_id)

    def get(self, key_id: int) -> ApiKeyRecord | None:
        """Fetch by primary key, or ``None``."""
        row = self.db.query_one("SELECT * FROM ApiKey WHERE keyId = ?", (key_id,))
        return ApiKeyRecord(**row) if row else None

    def by_digest(self, key_digest: str) -> ApiKeyRecord | None:
        """Fetch by key digest (the resolve path), or ``None``."""
        row = self.db.query_one(
            "SELECT * FROM ApiKey WHERE keyDigest = ?", (key_digest,)
        )
        return ApiKeyRecord(**row) if row else None

    def for_user(self, user_id: int) -> list[ApiKeyRecord]:
        """One user's keys, id-ordered."""
        rows = self.db.query(
            "SELECT * FROM ApiKey WHERE userId = ? ORDER BY keyId", (user_id,)
        )
        return [ApiKeyRecord(**row) for row in rows]

    def delete(self, key_id: int) -> bool:
        """Revoke (delete) by id; returns whether the row existed."""
        existed = self.get(key_id) is not None
        self.db.execute("DELETE FROM ApiKey WHERE keyId = ?", (key_id,))
        return existed


class PERepository:
    """SQL access for ProcessingElement rows."""
    def __init__(self, db: RegistryDatabase) -> None:
        self.db = db

    def create(
        self,
        user_id: int,
        name: str,
        code: str,
        description: str,
        desc_embedding: str,
        spt_embedding: str,
    ) -> PERecord:
        """Insert one row; returns the stored record."""
        pe_id = self.db.execute(
            "INSERT INTO ProcessingElement "
            "(userId, peName, peCode, description, descEmbedding, sptEmbedding) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (user_id, name, code, description, desc_embedding, spt_embedding),
        )
        return self.get(pe_id)

    def get(self, pe_id: int) -> PERecord | None:
        """Fetch by primary key, or ``None``."""
        row = self.db.query_one(
            "SELECT * FROM ProcessingElement WHERE peId = ?", (pe_id,)
        )
        return PERecord(**row) if row else None

    def by_name(self, name: str) -> PERecord | None:
        """Fetch the newest record with this name, or ``None``."""
        row = self.db.query_one(
            "SELECT * FROM ProcessingElement WHERE peName = ? "
            "ORDER BY peId DESC LIMIT 1",
            (name,),
        )
        return PERecord(**row) if row else None

    def all(self, user_id: int | None = None) -> list[PERecord]:
        """Every row, id-ordered; one tenant's when ``user_id`` is given."""
        if user_id is not None:
            rows = self.db.query(
                "SELECT * FROM ProcessingElement WHERE userId = ? ORDER BY peId",
                (user_id,),
            )
        else:
            rows = self.db.query("SELECT * FROM ProcessingElement ORDER BY peId")
        return [PERecord(**row) for row in rows]

    def count(self, user_id: int | None = None) -> int:
        """Row count, optionally for one tenant (the quota check)."""
        if user_id is not None:
            row = self.db.query_one(
                "SELECT COUNT(*) AS n FROM ProcessingElement WHERE userId = ?",
                (user_id,),
            )
        else:
            row = self.db.query_one("SELECT COUNT(*) AS n FROM ProcessingElement")
        return row["n"]

    def update_description(
        self, pe_id: int, description: str, desc_embedding: str
    ) -> bool:
        """Rewrite description + its embedding."""
        self.db.execute(
            "UPDATE ProcessingElement SET description = ?, descEmbedding = ? "
            "WHERE peId = ?",
            (description, desc_embedding, pe_id),
        )
        return self.get(pe_id) is not None

    def delete(self, pe_id: int) -> bool:
        """Delete by id; returns whether the row existed."""
        existed = self.get(pe_id) is not None
        self.db.execute("DELETE FROM ProcessingElement WHERE peId = ?", (pe_id,))
        return existed

    def delete_all(self, user_id: int | None = None) -> int:
        """Delete every row (one tenant's when scoped); returns the count."""
        count = self.count(user_id)
        if user_id is not None:
            self.db.execute(
                "DELETE FROM ProcessingElement WHERE userId = ?", (user_id,)
            )
        else:
            self.db.execute("DELETE FROM ProcessingElement")
        return count

    def literal_search(
        self, term: str, user_id: int | None = None
    ) -> list[PERecord]:
        """Substring match over names and descriptions (§V-A)."""
        like = f"%{term}%"
        if user_id is not None:
            rows = self.db.query(
                "SELECT * FROM ProcessingElement "
                "WHERE (peName LIKE ? OR description LIKE ?) AND userId = ? "
                "ORDER BY peId",
                (like, like, user_id),
            )
        else:
            rows = self.db.query(
                "SELECT * FROM ProcessingElement "
                "WHERE peName LIKE ? OR description LIKE ? ORDER BY peId",
                (like, like),
            )
        return [PERecord(**row) for row in rows]


class WorkflowRepository:
    """SQL access for Workflow rows and PE links."""
    def __init__(self, db: RegistryDatabase) -> None:
        self.db = db

    def create(
        self,
        user_id: int,
        name: str,
        code: str,
        entry_point: str,
        description: str,
        desc_embedding: str,
        spt_embedding: str,
    ) -> WorkflowRecord:
        """Insert one row; returns the stored record."""
        wf_id = self.db.execute(
            "INSERT INTO Workflow "
            "(userId, workflowName, workflowCode, entryPoint, description, "
            " descEmbedding, sptEmbedding) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (user_id, name, code, entry_point, description, desc_embedding, spt_embedding),
        )
        return self.get(wf_id)

    def get(self, wf_id: int) -> WorkflowRecord | None:
        """Fetch by primary key, or ``None``."""
        row = self.db.query_one(
            "SELECT * FROM Workflow WHERE workflowId = ?", (wf_id,)
        )
        return WorkflowRecord(**row) if row else None

    def by_name(self, name: str) -> WorkflowRecord | None:
        """Fetch the newest record with this name, or ``None``."""
        row = self.db.query_one(
            "SELECT * FROM Workflow WHERE workflowName = ? "
            "ORDER BY workflowId DESC LIMIT 1",
            (name,),
        )
        return WorkflowRecord(**row) if row else None

    def all(self, user_id: int | None = None) -> list[WorkflowRecord]:
        """Every row, id-ordered; one tenant's when ``user_id`` is given."""
        if user_id is not None:
            rows = self.db.query(
                "SELECT * FROM Workflow WHERE userId = ? ORDER BY workflowId",
                (user_id,),
            )
        else:
            rows = self.db.query("SELECT * FROM Workflow ORDER BY workflowId")
        return [WorkflowRecord(**row) for row in rows]

    def count(self, user_id: int | None = None) -> int:
        """Row count, optionally for one tenant (the quota check)."""
        if user_id is not None:
            row = self.db.query_one(
                "SELECT COUNT(*) AS n FROM Workflow WHERE userId = ?", (user_id,)
            )
        else:
            row = self.db.query_one("SELECT COUNT(*) AS n FROM Workflow")
        return row["n"]

    def update_description(
        self, wf_id: int, description: str, desc_embedding: str
    ) -> bool:
        """Rewrite description + its embedding."""
        self.db.execute(
            "UPDATE Workflow SET description = ?, descEmbedding = ? "
            "WHERE workflowId = ?",
            (description, desc_embedding, wf_id),
        )
        return self.get(wf_id) is not None

    def delete(self, wf_id: int) -> bool:
        """Delete by id; returns whether the row existed."""
        existed = self.get(wf_id) is not None
        self.db.execute("DELETE FROM Workflow WHERE workflowId = ?", (wf_id,))
        return existed

    def delete_all(self, user_id: int | None = None) -> int:
        """Delete every row (one tenant's when scoped); returns the count."""
        count = self.count(user_id)
        if user_id is not None:
            self.db.execute("DELETE FROM Workflow WHERE userId = ?", (user_id,))
        else:
            self.db.execute("DELETE FROM Workflow")
        return count

    def literal_search(
        self, term: str, user_id: int | None = None
    ) -> list[WorkflowRecord]:
        """Substring match over names and descriptions."""
        like = f"%{term}%"
        if user_id is not None:
            rows = self.db.query(
                "SELECT * FROM Workflow "
                "WHERE (workflowName LIKE ? OR description LIKE ?) "
                "AND userId = ? ORDER BY workflowId",
                (like, like, user_id),
            )
        else:
            rows = self.db.query(
                "SELECT * FROM Workflow "
                "WHERE workflowName LIKE ? OR description LIKE ? "
                "ORDER BY workflowId",
                (like, like),
            )
        return [WorkflowRecord(**row) for row in rows]

    # -- workflow <-> PE association ------------------------------------------

    def link_pe(self, wf_id: int, pe_id: int) -> None:
        """Associate a PE with a workflow (idempotent)."""
        self.db.execute(
            "INSERT OR IGNORE INTO WorkflowPE (workflowId, peId) VALUES (?, ?)",
            (wf_id, pe_id),
        )

    def pes_of(self, wf_id: int) -> list[PERecord]:
        """PEs linked to one workflow, id-ordered."""
        rows = self.db.query(
            "SELECT pe.* FROM ProcessingElement pe "
            "JOIN WorkflowPE link ON link.peId = pe.peId "
            "WHERE link.workflowId = ? ORDER BY pe.peId",
            (wf_id,),
        )
        return [PERecord(**row) for row in rows]

    def workflows_of_pe(self, pe_id: int) -> list[WorkflowRecord]:
        """Workflows containing one PE, id-ordered."""
        rows = self.db.query(
            "SELECT wf.* FROM Workflow wf "
            "JOIN WorkflowPE link ON link.workflowId = wf.workflowId "
            "WHERE link.peId = ? ORDER BY wf.workflowId",
            (pe_id,),
        )
        return [WorkflowRecord(**row) for row in rows]


class ExecutionRepository:
    """SQL access for Execution rows."""
    def __init__(self, db: RegistryDatabase) -> None:
        self.db = db

    def create(
        self, workflow_id: int, user_id: int, mapping: str, input_spec: str
    ) -> ExecutionRecord:
        """Insert one row; returns the stored record."""
        exec_id = self.db.execute(
            "INSERT INTO Execution (workflowId, userId, mapping, inputSpec, "
            "status, startedAt) VALUES (?, ?, ?, ?, 'running', datetime('now'))",
            (workflow_id, user_id, mapping, input_spec),
        )
        return self.get(exec_id)

    def get(self, exec_id: int) -> ExecutionRecord | None:
        """Fetch by primary key, or ``None``."""
        row = self.db.query_one(
            "SELECT * FROM Execution WHERE executionId = ?", (exec_id,)
        )
        return ExecutionRecord(**row) if row else None

    def finish(self, exec_id: int, status: str) -> None:
        """Mark an execution finished with the given status."""
        self.db.execute(
            "UPDATE Execution SET status = ?, finishedAt = datetime('now') "
            "WHERE executionId = ?",
            (status, exec_id),
        )

    def for_workflow(self, workflow_id: int) -> list[ExecutionRecord]:
        """Execution history of one workflow."""
        rows = self.db.query(
            "SELECT * FROM Execution WHERE workflowId = ? ORDER BY executionId",
            (workflow_id,),
        )
        return [ExecutionRecord(**row) for row in rows]


class JobRepository:
    """SQL access for Job rows (asynchronous workflow runs).

    The live :class:`~repro.laminar.jobs.model.Job` objects are the
    runtime truth; this repository mirrors their lifecycle into the
    registry so job history survives in the relational schema alongside
    ``Execution`` rows.
    """

    def __init__(self, db: RegistryDatabase) -> None:
        self.db = db

    def create(self, spec) -> JobRecord:
        """Insert one QUEUED row from a ``JobSpec``; returns the record.

        Runs inside one transaction so the insert and read-back cannot
        interleave with concurrent worker updates.
        """
        with self.db.transaction() as conn:
            cursor = conn.execute(
                "INSERT INTO Job (workflowId, userId, workflowName, mapping, "
                "inputSpec, priority, timeoutSeconds, maxRetries) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec.workflow_id,
                    spec.user_id,
                    spec.workflow_name,
                    spec.mapping,
                    json.dumps(spec.input, default=str),
                    spec.priority,
                    spec.timeout,
                    spec.max_retries,
                ),
            )
            row = conn.execute(
                "SELECT * FROM Job WHERE jobId = ?", (cursor.lastrowid,)
            ).fetchone()
        return JobRecord(**dict(row))

    def get(self, job_id: int) -> JobRecord | None:
        """Fetch by primary key, or ``None``."""
        row = self.db.query_one("SELECT * FROM Job WHERE jobId = ?", (job_id,))
        return JobRecord(**row) if row else None

    def update(self, job) -> None:
        """Mirror a live ``Job``'s current lifecycle into its row."""
        self.db.execute(
            "UPDATE Job SET state = ?, attempts = ?, error = ?, result = ?, "
            "logLines = ?, queueSeconds = ?, runSeconds = ?, "
            "startedAt = CASE WHEN ? IS NULL THEN startedAt "
            "ELSE datetime(?, 'unixepoch') END, "
            "finishedAt = CASE WHEN ? IS NULL THEN finishedAt "
            "ELSE datetime(?, 'unixepoch') END "
            "WHERE jobId = ?",
            (
                job.state.value,
                job.attempts,
                job.error,
                json.dumps(job.result) if job.result is not None else None,
                "\n".join(job.log_snapshot()),
                round(job.queue_seconds, 6),
                round(job.run_seconds, 6),
                job.started_at,
                job.started_at,
                job.finished_at,
                job.finished_at,
                job.job_id,
            ),
        )

    def delete(self, job_id: int) -> bool:
        """Delete by id (rejected admissions); returns whether it existed."""
        existed = self.get(job_id) is not None
        self.db.execute("DELETE FROM Job WHERE jobId = ?", (job_id,))
        return existed

    def list(self, state: str | None = None, limit: int = 50) -> list[JobRecord]:
        """Newest-first rows, optionally filtered by lifecycle state."""
        if state is not None:
            rows = self.db.query(
                "SELECT * FROM Job WHERE state = ? ORDER BY jobId DESC LIMIT ?",
                (state, limit),
            )
        else:
            rows = self.db.query(
                "SELECT * FROM Job ORDER BY jobId DESC LIMIT ?", (limit,)
            )
        return [JobRecord(**row) for row in rows]

    def counts_by_state(self) -> dict[str, int]:
        """``{state: row count}`` over the whole table."""
        rows = self.db.query("SELECT state, COUNT(*) AS n FROM Job GROUP BY state")
        return {row["state"]: row["n"] for row in rows}


class ResponseRepository:
    """SQL access for Response rows."""
    def __init__(self, db: RegistryDatabase) -> None:
        self.db = db

    def create(self, execution_id: int, output: str, log_lines: str) -> ResponseRecord:
        """Insert one row; returns the stored record."""
        resp_id = self.db.execute(
            "INSERT INTO Response (executionId, output, logLines) VALUES (?, ?, ?)",
            (execution_id, output, log_lines),
        )
        row = self.db.query_one(
            "SELECT * FROM Response WHERE responseId = ?", (resp_id,)
        )
        return ResponseRecord(**row)

    def for_execution(self, execution_id: int) -> list[ResponseRecord]:
        """Responses captured for one execution."""
        rows = self.db.query(
            "SELECT * FROM Response WHERE executionId = ? ORDER BY responseId",
            (execution_id,),
        )
        return [ResponseRecord(**row) for row in rows]
