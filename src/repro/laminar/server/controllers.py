"""Controller layer: route transport payloads to service calls.

A request is a JSON-able dict ``{"action": ..., "token": ..., **params}``.
Each controller method validates its parameters, invokes the service and
returns the response body; the app wraps bodies into
``{"status": ..., "body": ...}`` envelopes and converts
:class:`~repro.laminar.server.services.ServiceError` into error statuses.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.laminar.registry.schema import schema_summary
from repro.laminar.server.services import (
    AuthService,
    ExecutionService,
    JobService,
    RegistryService,
    ServiceError,
)

__all__ = ["Router", "ANONYMOUS_ACTIONS"]

#: Actions servable without a credential even under ``--require-auth``:
#: the login bootstrap (you cannot present a token before you have one)
#: and liveness pings (the cluster supervisor health checks are
#: tokenless).  Every other action requires a resolved user.
ANONYMOUS_ACTIONS = frozenset(
    {"ping", "schema", "register_user", "login", "logout"}
)

#: The subset of anonymous actions that additionally tolerate a *stale*
#: credential in the payload: a client re-logging-in after its session
#: expired still sends the dead token, and revoking an expired token via
#: logout must not 401.  A bad token on any other action — anonymous or
#: not — fails closed.
CREDENTIAL_REPAIR_ACTIONS = frozenset({"register_user", "login", "logout"})


def _require(params: dict, *names: str) -> list[Any]:
    values = []
    for name in names:
        if name not in params or params[name] is None:
            raise ServiceError(400, f"missing required parameter {name!r}")
        values.append(params[name])
    return values


class Router:
    """Dispatch table from action names to handlers."""

    def __init__(
        self,
        auth: AuthService,
        registry: RegistryService,
        execution: ExecutionService,
        jobs: JobService | None = None,
    ) -> None:
        self.auth = auth
        self.registry = registry
        self.execution = execution
        self.jobs = jobs
        self._handlers: dict[str, Callable[[Any, dict], Any]] = {
            "ping": self._ping,
            "schema": self._schema,
            "register_user": self._register_user,
            "login": self._login,
            "logout": self._logout,
            "create_api_key": self._create_api_key,
            "revoke_api_key": self._revoke_api_key,
            "whoami": self._whoami,
            "register_pe": self._register_pe,
            "register_workflow": self._register_workflow,
            "get_pe": self._get_pe,
            "get_workflow": self._get_workflow,
            "get_pes_by_workflow": self._get_pes_by_workflow,
            "get_registry": self._get_registry,
            "describe": self._describe,
            "update_pe_description": self._update_pe_description,
            "update_workflow_description": self._update_workflow_description,
            "remove_pe": self._remove_pe,
            "remove_workflow": self._remove_workflow,
            "remove_all": self._remove_all,
            "search_literal": self._search_literal,
            "search_semantic": self._search_semantic,
            "index_stats": self._index_stats,
            "index_save": self._index_save,
            "code_recommendation": self._code_recommendation,
            "code_completion": self._code_completion,
            "check_resources": self._check_resources,
            "upload_resource": self._upload_resource,
            "run": self._run,
            "visualize": self._visualize,
            "export_registry": self._export_registry,
            "import_registry": self._import_registry,
        }
        if jobs is not None:
            self._handlers.update(
                {
                    "submit_job": self._submit_job,
                    "job_status": self._job_status,
                    "job_result": self._job_result,
                    "job_logs": self._job_logs,
                    "cancel_job": self._cancel_job,
                    "list_jobs": self._list_jobs,
                }
            )

    def actions(self) -> list[str]:
        """Sorted names of every routable action."""
        return sorted(self._handlers)

    def resolve_user(self, payload: dict):
        """Resolve the payload's credential under the anonymous-action
        rules; ``None`` for a permitted anonymous caller.

        Tokenless anonymous actions pass (the supervisor's health pings
        carry no token); a *presented* invalid token fails closed except
        on credential-repair actions, where the stale token is the very
        thing being replaced or revoked.
        """
        action = payload.get("action")
        token = payload.get("token")
        try:
            return self.auth.resolve(token)
        except ServiceError:
            if action in ANONYMOUS_ACTIONS and (
                not token or action in CREDENTIAL_REPAIR_ACTIONS
            ):
                return None
            raise

    def dispatch(self, payload: dict, user=None) -> Any:
        """Resolve the caller, route the action, return the body.

        A pre-resolved ``user`` skips resolution (the app passes one so
        request metrics carry the tenant label).
        """
        action = payload.get("action")
        handler = self._handlers.get(action)
        if handler is None:
            raise ServiceError(404, f"unknown action {action!r}")
        if user is None:
            user = self.resolve_user(payload)
        return handler(user, payload)

    # -- handlers ------------------------------------------------------------

    def _ping(self, user, params):
        return {"pong": True, "user": user.userName if user else None}

    def _schema(self, user, params):
        return {"tables": schema_summary()}

    def _register_user(self, user, params):
        name, password = _require(params, "userName", "password")
        return self.auth.register(name, password)

    def _login(self, user, params):
        name, password = _require(params, "userName", "password")
        return self.auth.login(name, password)

    def _logout(self, user, params):
        return self.auth.logout(params.get("token"))

    def _create_api_key(self, user, params):
        return self.auth.create_api_key(user, name=str(params.get("name", "")))

    def _revoke_api_key(self, user, params):
        (key_id,) = _require(params, "keyId")
        return self.auth.revoke_api_key(user, key_id)

    def _whoami(self, user, params):
        return user.to_public()

    def _register_pe(self, user, params):
        (code,) = _require(params, "code")
        record = self.registry.register_pe(
            user, code, name=params.get("name"), description=params.get("description")
        )
        return record.to_public()

    def _register_workflow(self, user, params):
        code, name = _require(params, "code", "name")
        workflow, pes = self.registry.register_workflow(
            user,
            code,
            name,
            description=params.get("description"),
            entry_point=params.get("entryPoint"),
        )
        return {
            "workflow": workflow.to_public(include_code=False),
            "pes": [pe.to_public(include_code=False) for pe in pes],
        }

    def _get_pe(self, user, params):
        (ident,) = _require(params, "id")
        return self.registry.get_pe(ident, user=user).to_public()

    def _get_workflow(self, user, params):
        (ident,) = _require(params, "id")
        return self.registry.get_workflow(ident, user=user).to_public()

    def _get_pes_by_workflow(self, user, params):
        (ident,) = _require(params, "id")
        workflow = self.registry.get_workflow(ident, user=user)
        pes = self.registry.workflows.pes_of(workflow.workflowId)
        return [pe.to_public(include_code=False) for pe in pes]

    def _get_registry(self, user, params):
        return self.registry.registry_listing(user=user)

    def _describe(self, user, params):
        kind, ident = _require(params, "kind", "id")
        if kind == "pe":
            return self.registry.get_pe(ident, user=user).to_public(
                include_code=True
            )
        if kind == "workflow":
            return self.registry.get_workflow(ident, user=user).to_public(
                include_code=True
            )
        raise ServiceError(400, f"kind must be 'pe' or 'workflow', got {kind!r}")

    def _update_pe_description(self, user, params):
        ident, description = _require(params, "id", "description")
        return self.registry.update_pe_description(
            ident, description, user=user
        ).to_public()

    def _update_workflow_description(self, user, params):
        ident, description = _require(params, "id", "description")
        return self.registry.update_workflow_description(
            ident, description, user=user
        ).to_public()

    def _remove_pe(self, user, params):
        (ident,) = _require(params, "id")
        return self.registry.remove_pe(ident, user=user)

    def _remove_workflow(self, user, params):
        (ident,) = _require(params, "id")
        return self.registry.remove_workflow(ident, user=user)

    def _remove_all(self, user, params):
        return self.registry.remove_all(user=user)

    def _search_literal(self, user, params):
        (term,) = _require(params, "term")
        return self.registry.literal_search(
            term, kind=params.get("kind", "all"), user=user
        )

    def _search_semantic(self, user, params):
        (query,) = _require(params, "query")
        return self.registry.semantic_search(
            query,
            kind=params.get("kind", "pe"),
            top_k=int(params.get("topK", 5)),
            user=user,
        )

    def _index_stats(self, user, params):
        return self.registry.index_stats()

    def _index_save(self, user, params):
        return {"saved": self.registry.index_save(params.get("path"))}

    def _code_recommendation(self, user, params):
        (snippet,) = _require(params, "snippet")
        return self.registry.code_recommendation(
            snippet,
            kind=params.get("kind", "pe"),
            embedding_type=params.get("embeddingType", "spt"),
            top_k=int(params.get("topK", 5)),
            threshold=params.get("threshold"),
            user=user,
        )

    def _code_completion(self, user, params):
        (snippet,) = _require(params, "snippet")
        return self.registry.code_completion(
            snippet,
            embedding_type=params.get("embeddingType", "spt"),
            top_k=int(params.get("topK", 3)),
            user=user,
        )

    def _check_resources(self, user, params):
        (manifest,) = _require(params, "manifest")
        return self.execution.check_resources(manifest)

    def _upload_resource(self, user, params):
        (data_hex,) = _require(params, "data")
        return self.execution.upload_resource(data_hex)

    def _visualize(self, user, params):
        (ident,) = _require(params, "id")
        return self.execution.visualize_workflow(ident, user=user)

    def _export_registry(self, user, params):
        from repro.laminar.registry.portability import export_registry

        return export_registry(self.registry.pes, self.registry.workflows, user=user)

    def _import_registry(self, user, params):
        from repro.laminar.registry.portability import import_registry

        (dump,) = _require(params, "dump")
        try:
            counts = import_registry(
                dump, self.registry.pes, self.registry.workflows, user
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ServiceError(400, f"invalid registry dump: {exc}") from exc
        self.registry._mutated()  # imported content must invalidate caches
        return counts

    # -- asynchronous jobs ----------------------------------------------------

    def _submit_job(self, user, params):
        (ident,) = _require(params, "id")
        return self.jobs.submit(
            user,
            ident,
            input=params.get("input", 1),
            mapping=params.get("mapping", "simple"),
            timeout=params.get("timeout"),
            max_retries=int(params.get("maxRetries", 0)),
            priority=int(params.get("priority", 0)),
            options=params.get("options"),
        )

    def _job_status(self, user, params):
        (job_id,) = _require(params, "jobId")
        return self.jobs.status(job_id, user=user)

    def _job_result(self, user, params):
        (job_id,) = _require(params, "jobId")
        return self.jobs.result(job_id, user=user)

    def _job_logs(self, user, params):
        (job_id,) = _require(params, "jobId")
        return self.jobs.logs(job_id, user=user)

    def _cancel_job(self, user, params):
        (job_id,) = _require(params, "jobId")
        return self.jobs.cancel(job_id, user=user)

    def _list_jobs(self, user, params):
        return self.jobs.list_jobs(
            state=params.get("state"),
            limit=int(params.get("limit", 50)),
            user=user,
        )

    def _run(self, user, params):
        (ident,) = _require(params, "id")
        options = dict(params.get("options") or {})
        return self.execution.run_workflow(
            user,
            ident,
            input=params.get("input", 1),
            mapping=params.get("mapping", "simple"),
            resources=params.get("resources"),
            verbose=bool(params.get("verbose", False)),
            **options,
        )
