"""The assembled Laminar server application.

Wires registry database → repositories → services → router and exposes
``handle(payload)``, the single entry point every transport calls.
Streaming responses pass through as
:class:`~repro.laminar.transport.inprocess.ServerStream` bodies; the
transport decides how to frame them.
"""

from __future__ import annotations

import time
import traceback
from typing import Any

from repro.laminar.execution.engine import ExecutionEngine
from repro.laminar.jobs import DatabaseJobStore, Job, JobManager
from repro.laminar.registry.database import RegistryDatabase
from repro.laminar.server.controllers import Router
from repro.laminar.server.dataaccess import (
    ExecutionRepository,
    JobRepository,
    PERepository,
    ResponseRepository,
    UserRepository,
    WorkflowRepository,
)
from repro.laminar.server.services import (
    AuthService,
    ExecutionService,
    JobService,
    RegistryService,
    ServiceError,
)
from repro.obs import MetricsRegistry, Tracer

__all__ = ["LaminarServer", "ServerMetrics"]


class ServerMetrics:
    """Per-action request accounting backed by a :class:`MetricsRegistry`.

    The resource-management observability of §IV-F at the server level.
    Every sample lives in the registry (``laminar_server_*`` /
    ``laminar_job_*`` families, served raw by ``get_metrics``);
    :meth:`snapshot` derives the legacy JSON summary the ``stats`` action
    has always returned, so existing clients see an unchanged shape.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started_at = time.monotonic()
        self._requests = self.registry.counter(
            "laminar_server_requests_total",
            "Requests handled by the server, by action.",
            ("action",),
        )
        self._errors = self.registry.counter(
            "laminar_server_request_errors_total",
            "Requests answered with status >= 400, by action.",
            ("action",),
        )
        self._latency = self.registry.histogram(
            "laminar_server_request_seconds",
            "Request handling latency, by action.",
            ("action",),
        )
        self._jobs_finished = self.registry.counter(
            "laminar_jobs_finished_total",
            "Jobs that reached a terminal state, by state.",
            ("state",),
        )
        self._job_retries = self.registry.counter(
            "laminar_job_retries_total",
            "Retry attempts accumulated by finished jobs.",
        )
        self._job_wait = self.registry.histogram(
            "laminar_job_wait_seconds",
            "Queue wait (submit to first run) of finished jobs.",
        )
        self._job_run = self.registry.histogram(
            "laminar_job_run_seconds",
            "Cumulative running time of finished jobs.",
        )
        self.registry.gauge(
            "laminar_server_uptime_seconds",
            "Seconds since this server was constructed.",
        ).set_function(lambda: time.monotonic() - self.started_at)

    def record(self, action: str, elapsed: float, ok: bool) -> None:
        """Account one handled request."""
        self._requests.labels(action).inc()
        self._latency.labels(action).observe(elapsed)
        if not ok:
            self._errors.labels(action).inc()

    def record_job(self, job: Job) -> None:
        """Account one job reaching a terminal state."""
        self._jobs_finished.labels(job.state.value).inc()
        self._job_wait.observe(job.queue_seconds)
        self._job_run.observe(job.run_seconds)
        if job.retries:
            self._job_retries.inc(job.retries)

    def snapshot(self) -> dict:
        """JSON-able metrics summary (the ``stats`` action body)."""
        by_action = {}
        for (action,), counter in self._requests.collect():
            count = int(counter.value)
            latency = self._latency.labels(action)
            by_action[action] = {
                "requests": count,
                "errors": int(self._errors.labels(action).value),
                "mean_ms": round(1e3 * latency.sum / count, 3) if count else 0.0,
            }
        finished_by_state = {
            state: int(counter.value)
            for (state,), counter in self._jobs_finished.collect()
        }
        finished = sum(finished_by_state.values())
        wait, run = self._job_wait.labels(), self._job_run.labels()
        return {
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "total_requests": sum(a["requests"] for a in by_action.values()),
            "by_action": by_action,
            "jobs": {
                "finished": finished_by_state,
                "retries": int(self._job_retries.value),
                "mean_wait_ms": round(1e3 * wait.sum / finished, 3)
                if finished
                else 0.0,
                "mean_run_ms": round(1e3 * run.sum / finished, 3)
                if finished
                else 0.0,
            },
        }


class LaminarServer:
    """A complete Laminar 2.0 server over one registry database."""

    def __init__(
        self,
        db_path: str = ":memory:",
        job_workers: int = 2,
        job_queue_capacity: int = 64,
        job_default_timeout: float | None = None,
        index_dir: str | None = None,
        shard_id: str | None = None,
        cluster_config=None,
        broker=None,
    ) -> None:
        # Cluster identity: a shard knows its own id and (when given the
        # shared ClusterConfig) verifies key ownership per request — a
        # misrouted keyed request is answered 421 with the true owner
        # instead of being served from the wrong registry partition.
        self.shard_id = shard_id
        self.cluster_config = cluster_config
        self._shard_router = None
        if cluster_config is not None and shard_id is not None:
            from repro.laminar.cluster.router import ShardRouter

            self._shard_router = ShardRouter(cluster_config)
        self.db = RegistryDatabase(db_path)
        self.users = UserRepository(self.db)
        self.pes = PERepository(self.db)
        self.workflows = WorkflowRepository(self.db)
        self.executions = ExecutionRepository(self.db)
        self.responses = ResponseRepository(self.db)
        self.job_rows = JobRepository(self.db)

        self.auth = AuthService(self.users)
        # ``index_dir`` enables warm starts: semantic indexes persisted
        # there (``index_save``) are memmap-loaded on boot instead of
        # rebuilt from every stored embedding.
        self.registry = RegistryService(
            self.pes, self.workflows, index_dir=index_dir, shard_id=shard_id
        )
        # Per-server observability sinks: a private registry/tracer so
        # several servers in one process (tests!) never mix metrics.
        self.obs_registry = MetricsRegistry()
        self.tracer = Tracer()
        self.registry.bind_metrics(self.obs_registry)
        self.engine = ExecutionEngine(
            registry=self.obs_registry, tracer=self.tracer, broker=broker
        )
        self.execution = ExecutionService(
            self.registry, self.executions, self.responses, self.engine
        )
        self.metrics = ServerMetrics(registry=self.obs_registry)
        self.job_manager = JobManager(
            engine=self.engine,
            store=DatabaseJobStore(self.job_rows),
            workers=job_workers,
            queue_capacity=job_queue_capacity,
            default_timeout=job_default_timeout,
            on_terminal=self.metrics.record_job,
            registry=self.obs_registry,
            tracer=self.tracer,
        )
        self.jobs = JobService(self.registry, self.job_manager)
        self.router = Router(self.auth, self.registry, self.execution, self.jobs)
        if shard_id is not None:
            # Per-shard identity gauge: every metric family scraped from
            # this server is attributable to its shard by joining on it.
            self.obs_registry.gauge(
                "laminar_cluster_shard_up",
                "1 for the shard serving this metrics registry.",
                ("shard",),
            ).labels(shard_id).set(1.0)
            self._misdirected = self.metrics.registry.counter(
                "laminar_cluster_misdirected_total",
                "Keyed requests rejected with 421 (wrong shard), by action.",
                ("action",),
            )
        else:
            self._misdirected = None

    def handle(self, payload: Any) -> dict:
        """Process one request payload into a ``{status, body}`` envelope."""
        if not isinstance(payload, dict):
            return {"status": 400, "body": {"error": "payload must be an object"}}
        action = str(payload.get("action"))
        if action == "cluster_info":
            body = {"shardId": self.shard_id, "cluster": None}
            if self.cluster_config is not None:
                body["cluster"] = self.cluster_config.to_dict()
            return {"status": 200, "body": body}
        if self._shard_router is not None:
            hint = self._shard_router.misdirected(self.shard_id, action, payload)
            if hint is not None:
                self._misdirected.labels(action).inc()
                return {
                    "status": 421,
                    "body": {
                        "error": (
                            f"shard {self.shard_id} does not own {hint['key']!r} "
                            f"(owner: {hint['owner']})"
                        ),
                        **hint,
                    },
                }
        if action == "stats":
            body = self.metrics.snapshot()
            # Live queue/worker gauges come from the manager; the counters
            # above only see jobs that already finished.
            body["jobs"].update(self.job_manager.stats())
            return {"status": 200, "body": body}
        if action == "get_metrics":
            # Raw exposition of the server's whole registry — requests,
            # jobs, mapping runs, broker gauges — in Prometheus text
            # format (default) or as the JSON snapshot dump.
            if str(payload.get("format", "text")) == "json":
                return {"status": 200, "body": {"metrics": self.obs_registry.snapshot()}}
            return {
                "status": 200,
                "body": {
                    "content_type": "text/plain; version=0.0.4",
                    "text": self.obs_registry.render_text(),
                },
            }
        if action == "get_trace":
            trace_id = payload.get("trace_id")
            fmt = str(payload.get("format", "tree"))
            if fmt == "chrome":
                body = {"trace": self.tracer.to_chrome(trace_id)}
            elif fmt == "spans":
                body = {"spans": self.tracer.export(trace_id)}
            else:
                body = {"trace": self.tracer.tree(trace_id)}
            body["dropped_spans"] = self.tracer.dropped
            if payload.get("clear"):
                self.tracer.clear()
            return {"status": 200, "body": body}
        started = time.monotonic()
        try:
            body = self.router.dispatch(payload)
            response = {"status": 200, "body": body}
        except ServiceError as exc:
            response = {"status": exc.status, "body": {"error": exc.message}}
        except Exception:
            response = {
                "status": 500,
                "body": {"error": traceback.format_exc(limit=3)},
            }
        self.metrics.record(
            action, time.monotonic() - started, ok=response["status"] < 400
        )
        return response

    def close(self) -> None:
        """Stop the job workers and close the registry database."""
        self.job_manager.shutdown(wait=True)
        self.db.close()
