"""The assembled Laminar server application.

Wires registry database → repositories → services → router and exposes
``handle(payload)``, the single entry point every transport calls.
Streaming responses pass through as
:class:`~repro.laminar.transport.inprocess.ServerStream` bodies; the
transport decides how to frame them.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.laminar.execution.engine import ExecutionEngine
from repro.laminar.jobs import DatabaseJobStore, Job, JobManager
from repro.laminar.registry.database import RegistryDatabase
from repro.laminar.server.controllers import Router
from repro.laminar.server.dataaccess import (
    ExecutionRepository,
    JobRepository,
    PERepository,
    ResponseRepository,
    UserRepository,
    WorkflowRepository,
)
from repro.laminar.server.services import (
    AuthService,
    ExecutionService,
    JobService,
    RegistryService,
    ServiceError,
)

__all__ = ["LaminarServer", "ServerMetrics"]


@dataclass
class ServerMetrics:
    """Per-action request accounting (counts, errors, cumulative latency).

    The resource-management observability of §IV-F at the server level:
    ``snapshot()`` is what the ``stats`` action returns.
    """

    started_at: float = field(default_factory=time.monotonic)
    requests: dict[str, int] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)
    jobs_finished: dict[str, int] = field(default_factory=dict)
    job_wait_seconds: float = 0.0
    job_run_seconds: float = 0.0
    job_retries: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, action: str, elapsed: float, ok: bool) -> None:
        """Account one handled request."""
        with self._lock:
            self.requests[action] = self.requests.get(action, 0) + 1
            self.seconds[action] = self.seconds.get(action, 0.0) + elapsed
            if not ok:
                self.errors[action] = self.errors.get(action, 0) + 1

    def record_job(self, job: Job) -> None:
        """Account one job reaching a terminal state."""
        with self._lock:
            state = job.state.value
            self.jobs_finished[state] = self.jobs_finished.get(state, 0) + 1
            self.job_wait_seconds += job.queue_seconds
            self.job_run_seconds += job.run_seconds
            self.job_retries += job.retries

    def snapshot(self) -> dict:
        """JSON-able metrics summary (the ``stats`` action body)."""
        with self._lock:
            total = sum(self.requests.values())
            finished = sum(self.jobs_finished.values())
            return {
                "uptime_seconds": round(time.monotonic() - self.started_at, 3),
                "total_requests": total,
                "by_action": {
                    action: {
                        "requests": count,
                        "errors": self.errors.get(action, 0),
                        "mean_ms": round(
                            1e3 * self.seconds.get(action, 0.0) / count, 3
                        ),
                    }
                    for action, count in sorted(self.requests.items())
                },
                "jobs": {
                    "finished": dict(sorted(self.jobs_finished.items())),
                    "retries": self.job_retries,
                    "mean_wait_ms": round(
                        1e3 * self.job_wait_seconds / finished, 3
                    )
                    if finished
                    else 0.0,
                    "mean_run_ms": round(1e3 * self.job_run_seconds / finished, 3)
                    if finished
                    else 0.0,
                },
            }


class LaminarServer:
    """A complete Laminar 2.0 server over one registry database."""

    def __init__(
        self,
        db_path: str = ":memory:",
        job_workers: int = 2,
        job_queue_capacity: int = 64,
        job_default_timeout: float | None = None,
    ) -> None:
        self.db = RegistryDatabase(db_path)
        self.users = UserRepository(self.db)
        self.pes = PERepository(self.db)
        self.workflows = WorkflowRepository(self.db)
        self.executions = ExecutionRepository(self.db)
        self.responses = ResponseRepository(self.db)
        self.job_rows = JobRepository(self.db)

        self.auth = AuthService(self.users)
        self.registry = RegistryService(self.pes, self.workflows)
        self.engine = ExecutionEngine()
        self.execution = ExecutionService(
            self.registry, self.executions, self.responses, self.engine
        )
        self.metrics = ServerMetrics()
        self.job_manager = JobManager(
            engine=self.engine,
            store=DatabaseJobStore(self.job_rows),
            workers=job_workers,
            queue_capacity=job_queue_capacity,
            default_timeout=job_default_timeout,
            on_terminal=self.metrics.record_job,
        )
        self.jobs = JobService(self.registry, self.job_manager)
        self.router = Router(self.auth, self.registry, self.execution, self.jobs)

    def handle(self, payload: Any) -> dict:
        """Process one request payload into a ``{status, body}`` envelope."""
        if not isinstance(payload, dict):
            return {"status": 400, "body": {"error": "payload must be an object"}}
        action = str(payload.get("action"))
        if action == "stats":
            body = self.metrics.snapshot()
            # Live queue/worker gauges come from the manager; the counters
            # above only see jobs that already finished.
            body["jobs"].update(self.job_manager.stats())
            return {"status": 200, "body": body}
        started = time.monotonic()
        try:
            body = self.router.dispatch(payload)
            response = {"status": 200, "body": body}
        except ServiceError as exc:
            response = {"status": exc.status, "body": {"error": exc.message}}
        except Exception:
            response = {
                "status": 500,
                "body": {"error": traceback.format_exc(limit=3)},
            }
        self.metrics.record(
            action, time.monotonic() - started, ok=response["status"] < 400
        )
        return response

    def close(self) -> None:
        """Stop the job workers and close the registry database."""
        self.job_manager.shutdown(wait=True)
        self.db.close()
