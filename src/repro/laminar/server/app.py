"""The assembled Laminar server application.

Wires registry database → repositories → services → router and exposes
``handle(payload)``, the single entry point every transport calls.
Streaming responses pass through as
:class:`~repro.laminar.transport.inprocess.ServerStream` bodies; the
transport decides how to frame them.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.laminar.execution.engine import ExecutionEngine
from repro.laminar.registry.database import RegistryDatabase
from repro.laminar.server.controllers import Router
from repro.laminar.server.dataaccess import (
    ExecutionRepository,
    PERepository,
    ResponseRepository,
    UserRepository,
    WorkflowRepository,
)
from repro.laminar.server.services import (
    AuthService,
    ExecutionService,
    RegistryService,
    ServiceError,
)

__all__ = ["LaminarServer", "ServerMetrics"]


@dataclass
class ServerMetrics:
    """Per-action request accounting (counts, errors, cumulative latency).

    The resource-management observability of §IV-F at the server level:
    ``snapshot()`` is what the ``stats`` action returns.
    """

    started_at: float = field(default_factory=time.monotonic)
    requests: dict[str, int] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, action: str, elapsed: float, ok: bool) -> None:
        """Account one handled request."""
        with self._lock:
            self.requests[action] = self.requests.get(action, 0) + 1
            self.seconds[action] = self.seconds.get(action, 0.0) + elapsed
            if not ok:
                self.errors[action] = self.errors.get(action, 0) + 1

    def snapshot(self) -> dict:
        """JSON-able metrics summary (the ``stats`` action body)."""
        with self._lock:
            total = sum(self.requests.values())
            return {
                "uptime_seconds": round(time.monotonic() - self.started_at, 3),
                "total_requests": total,
                "by_action": {
                    action: {
                        "requests": count,
                        "errors": self.errors.get(action, 0),
                        "mean_ms": round(
                            1e3 * self.seconds.get(action, 0.0) / count, 3
                        ),
                    }
                    for action, count in sorted(self.requests.items())
                },
            }


class LaminarServer:
    """A complete Laminar 2.0 server over one registry database."""

    def __init__(self, db_path: str = ":memory:") -> None:
        self.db = RegistryDatabase(db_path)
        self.users = UserRepository(self.db)
        self.pes = PERepository(self.db)
        self.workflows = WorkflowRepository(self.db)
        self.executions = ExecutionRepository(self.db)
        self.responses = ResponseRepository(self.db)

        self.auth = AuthService(self.users)
        self.registry = RegistryService(self.pes, self.workflows)
        self.engine = ExecutionEngine()
        self.execution = ExecutionService(
            self.registry, self.executions, self.responses, self.engine
        )
        self.router = Router(self.auth, self.registry, self.execution)
        self.metrics = ServerMetrics()

    def handle(self, payload: Any) -> dict:
        """Process one request payload into a ``{status, body}`` envelope."""
        if not isinstance(payload, dict):
            return {"status": 400, "body": {"error": "payload must be an object"}}
        action = str(payload.get("action"))
        if action == "stats":
            return {"status": 200, "body": self.metrics.snapshot()}
        started = time.monotonic()
        try:
            body = self.router.dispatch(payload)
            response = {"status": 200, "body": body}
        except ServiceError as exc:
            response = {"status": exc.status, "body": {"error": exc.message}}
        except Exception:
            response = {
                "status": 500,
                "body": {"error": traceback.format_exc(limit=3)},
            }
        self.metrics.record(
            action, time.monotonic() - started, ok=response["status"] < 400
        )
        return response

    def close(self) -> None:
        """Close the registry database."""
        self.db.close()
