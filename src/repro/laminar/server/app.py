"""The assembled Laminar server application.

Wires registry database → repositories → services → router and exposes
``handle(payload)``, the single entry point every transport calls.
Streaming responses pass through as
:class:`~repro.laminar.transport.inprocess.ServerStream` bodies; the
transport decides how to frame them.
"""

from __future__ import annotations

import time
import traceback
from typing import Any

from repro.laminar.execution.engine import ExecutionEngine
from repro.laminar.jobs import DatabaseJobStore, Job, JobManager
from repro.laminar.registry.database import RegistryDatabase
from repro.laminar.server.controllers import Router
from repro.laminar.server.dataaccess import (
    ApiKeyRepository,
    ExecutionRepository,
    JobRepository,
    PERepository,
    ResponseRepository,
    UserRepository,
    WorkflowRepository,
)
from repro.laminar.server.services import (
    AuthService,
    ExecutionService,
    JobService,
    RegistryService,
    ServiceError,
)
from repro.obs import MetricsRegistry, Tracer

__all__ = ["LaminarServer", "ServerMetrics"]


class ServerMetrics:
    """Per-action request accounting backed by a :class:`MetricsRegistry`.

    The resource-management observability of §IV-F at the server level.
    Every sample lives in the registry (``laminar_server_*`` /
    ``laminar_job_*`` families, served raw by ``get_metrics``);
    :meth:`snapshot` derives the legacy JSON summary the ``stats`` action
    has always returned, so existing clients see an unchanged shape.
    """

    #: Tenant label used for requests with no resolved user (anonymous
    #: pings, failed auth) and for intrinsic observability actions.
    ANON_TENANT = "-"

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started_at = time.monotonic()
        # Counters carry a ``tenant`` label so per-tenant consumption is
        # scrapable; the latency histogram deliberately stays per-action
        # only (actions x tenants histograms would explode cardinality).
        self._requests = self.registry.counter(
            "laminar_server_requests_total",
            "Requests handled by the server, by action and tenant.",
            ("action", "tenant"),
        )
        self._errors = self.registry.counter(
            "laminar_server_request_errors_total",
            "Requests answered with status >= 400, by action and tenant.",
            ("action", "tenant"),
        )
        self._latency = self.registry.histogram(
            "laminar_server_request_seconds",
            "Request handling latency, by action.",
            ("action",),
        )
        self._jobs_finished = self.registry.counter(
            "laminar_jobs_finished_total",
            "Jobs that reached a terminal state, by state and tenant.",
            ("state", "tenant"),
        )
        self._job_retries = self.registry.counter(
            "laminar_job_retries_total",
            "Retry attempts accumulated by finished jobs.",
        )
        self._job_wait = self.registry.histogram(
            "laminar_job_wait_seconds",
            "Queue wait (submit to first run) of finished jobs, by tenant.",
            ("tenant",),
        )
        self._job_run = self.registry.histogram(
            "laminar_job_run_seconds",
            "Cumulative running time of finished jobs, by tenant.",
            ("tenant",),
        )
        self.registry.gauge(
            "laminar_server_uptime_seconds",
            "Seconds since this server was constructed.",
        ).set_function(lambda: time.monotonic() - self.started_at)

    def record(
        self, action: str, elapsed: float, ok: bool, tenant: str | None = None
    ) -> None:
        """Account one handled request."""
        tenant = tenant or self.ANON_TENANT
        self._requests.labels(action, tenant).inc()
        self._latency.labels(action).observe(elapsed)
        if not ok:
            self._errors.labels(action, tenant).inc()

    def record_job(self, job: Job) -> None:
        """Account one job reaching a terminal state."""
        tenant = job.spec.tenant
        self._jobs_finished.labels(job.state.value, tenant).inc()
        self._job_wait.labels(tenant).observe(job.queue_seconds)
        self._job_run.labels(tenant).observe(job.run_seconds)
        if job.retries:
            self._job_retries.inc(job.retries)

    def snapshot(self) -> dict:
        """JSON-able metrics summary (the ``stats`` action body).

        ``by_action`` and ``jobs`` keep their pre-tenancy shape by
        aggregating over the tenant label; ``tenants`` adds one row per
        tenant (request/error totals, finished jobs, mean waits).
        """
        by_action: dict[str, dict] = {}
        tenants: dict[str, dict] = {}

        def tenant_row(tenant: str) -> dict:
            return tenants.setdefault(
                tenant,
                {
                    "requests": 0,
                    "errors": 0,
                    "jobs_finished": 0,
                    "mean_wait_ms": 0.0,
                    "mean_run_ms": 0.0,
                },
            )

        for (action, tenant), counter in self._requests.collect():
            count = int(counter.value)
            errors = int(self._errors.labels(action, tenant).value)
            entry = by_action.setdefault(
                action, {"requests": 0, "errors": 0, "mean_ms": 0.0}
            )
            entry["requests"] += count
            entry["errors"] += errors
            row = tenant_row(tenant)
            row["requests"] += count
            row["errors"] += errors
        for action, entry in by_action.items():
            latency = self._latency.labels(action)
            count = entry["requests"]
            entry["mean_ms"] = round(1e3 * latency.sum / count, 3) if count else 0.0

        finished_by_state: dict[str, int] = {}
        for (state, tenant), counter in self._jobs_finished.collect():
            value = int(counter.value)
            finished_by_state[state] = finished_by_state.get(state, 0) + value
            tenant_row(tenant)["jobs_finished"] += value
        for (tenant,), wait in self._job_wait.collect():
            if wait.count:
                tenant_row(tenant)["mean_wait_ms"] = round(
                    1e3 * wait.sum / wait.count, 3
                )
        for (tenant,), run in self._job_run.collect():
            if run.count:
                tenant_row(tenant)["mean_run_ms"] = round(
                    1e3 * run.sum / run.count, 3
                )

        finished = sum(finished_by_state.values())
        wait_sum = sum(child.sum for _, child in self._job_wait.collect())
        run_sum = sum(child.sum for _, child in self._job_run.collect())
        return {
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "total_requests": sum(a["requests"] for a in by_action.values()),
            "by_action": by_action,
            "tenants": tenants,
            "jobs": {
                "finished": finished_by_state,
                "retries": int(self._job_retries.value),
                "mean_wait_ms": round(1e3 * wait_sum / finished, 3)
                if finished
                else 0.0,
                "mean_run_ms": round(1e3 * run_sum / finished, 3)
                if finished
                else 0.0,
            },
        }


class LaminarServer:
    """A complete Laminar 2.0 server over one registry database."""

    def __init__(
        self,
        db_path: str = ":memory:",
        job_workers: int = 2,
        job_queue_capacity: int = 64,
        job_default_timeout: float | None = None,
        index_dir: str | None = None,
        shard_id: str | None = None,
        cluster_config=None,
        broker=None,
        require_auth: bool = False,
        quotas=None,
    ) -> None:
        """``require_auth`` disables the anonymous guest fallback (every
        request must carry a session token or API key); ``quotas`` is an
        optional :class:`~repro.laminar.tenancy.QuotaConfig` bounding
        each tenant's registry rows, queued jobs, running jobs and
        fair-share weight."""
        # Cluster identity: a shard knows its own id and (when given the
        # shared ClusterConfig) verifies key ownership per request — a
        # misrouted keyed request is answered 421 with the true owner
        # instead of being served from the wrong registry partition.
        self.shard_id = shard_id
        self.cluster_config = cluster_config
        self._shard_router = None
        if cluster_config is not None and shard_id is not None:
            from repro.laminar.cluster.router import ShardRouter

            self._shard_router = ShardRouter(cluster_config)
        self.db = RegistryDatabase(db_path)
        self.users = UserRepository(self.db)
        self.api_keys = ApiKeyRepository(self.db)
        self.pes = PERepository(self.db)
        self.workflows = WorkflowRepository(self.db)
        self.executions = ExecutionRepository(self.db)
        self.responses = ResponseRepository(self.db)
        self.job_rows = JobRepository(self.db)
        self.quotas = quotas

        self.auth = AuthService(
            self.users, api_keys=self.api_keys, require_auth=require_auth
        )
        # ``index_dir`` enables warm starts: semantic indexes persisted
        # there (``index_save``) are memmap-loaded on boot instead of
        # rebuilt from every stored embedding.
        self.registry = RegistryService(
            self.pes,
            self.workflows,
            index_dir=index_dir,
            shard_id=shard_id,
            quotas=quotas,
        )
        # Per-server observability sinks: a private registry/tracer so
        # several servers in one process (tests!) never mix metrics.
        self.obs_registry = MetricsRegistry()
        self.tracer = Tracer()
        self.registry.bind_metrics(self.obs_registry)
        self.engine = ExecutionEngine(
            registry=self.obs_registry, tracer=self.tracer, broker=broker
        )
        self.execution = ExecutionService(
            self.registry, self.executions, self.responses, self.engine
        )
        self.metrics = ServerMetrics(registry=self.obs_registry)
        self.job_manager = JobManager(
            engine=self.engine,
            store=DatabaseJobStore(self.job_rows),
            workers=job_workers,
            queue_capacity=job_queue_capacity,
            default_timeout=job_default_timeout,
            on_terminal=self.metrics.record_job,
            registry=self.obs_registry,
            tracer=self.tracer,
            quotas=quotas,
        )
        self.jobs = JobService(self.registry, self.job_manager)
        self.router = Router(self.auth, self.registry, self.execution, self.jobs)
        if shard_id is not None:
            # Per-shard identity gauge: every metric family scraped from
            # this server is attributable to its shard by joining on it.
            self.obs_registry.gauge(
                "laminar_cluster_shard_up",
                "1 for the shard serving this metrics registry.",
                ("shard",),
            ).labels(shard_id).set(1.0)
            self._misdirected = self.metrics.registry.counter(
                "laminar_cluster_misdirected_total",
                "Keyed requests rejected with 421 (wrong shard), by action.",
                ("action",),
            )
        else:
            self._misdirected = None

    #: Intrinsic observability actions: unauthenticated (a scraper needs
    #: no account), served outside the router, but accounted and
    #: exception-wrapped like every other action.
    _INTRINSIC_ACTIONS = frozenset(
        {"stats", "get_metrics", "get_trace", "cluster_info"}
    )

    def _handle_intrinsic(self, action: str, payload: dict) -> dict:
        if action == "cluster_info":
            body = {"shardId": self.shard_id, "cluster": None}
            if self.cluster_config is not None:
                body["cluster"] = self.cluster_config.to_dict()
            return {"status": 200, "body": body}
        if action == "stats":
            body = self.metrics.snapshot()
            # Live queue/worker gauges come from the manager; the counters
            # above only see jobs that already finished.
            body["jobs"].update(self.job_manager.stats())
            return {"status": 200, "body": body}
        if action == "get_metrics":
            # Raw exposition of the server's whole registry — requests,
            # jobs, mapping runs, broker gauges — in Prometheus text
            # format (default) or as the JSON snapshot dump.
            if str(payload.get("format", "text")) == "json":
                return {
                    "status": 200,
                    "body": {"metrics": self.obs_registry.snapshot()},
                }
            return {
                "status": 200,
                "body": {
                    "content_type": "text/plain; version=0.0.4",
                    "text": self.obs_registry.render_text(),
                },
            }
        # get_trace
        trace_id = payload.get("trace_id")
        fmt = str(payload.get("format", "tree"))
        if fmt == "chrome":
            body = {"trace": self.tracer.to_chrome(trace_id)}
        elif fmt == "spans":
            body = {"spans": self.tracer.export(trace_id)}
        else:
            body = {"trace": self.tracer.tree(trace_id)}
        body["dropped_spans"] = self.tracer.dropped
        if payload.get("clear"):
            self.tracer.clear()
        return {"status": 200, "body": body}

    def handle(self, payload: Any) -> dict:
        """Process one request payload into a ``{status, body}`` envelope.

        Every action — including the intrinsic observability ones — runs
        inside the same accounting/try-except: an exception anywhere
        returns a structured 500 (never kills the transport exchange)
        and lands in ``laminar_server_*`` metrics.
        """
        if not isinstance(payload, dict):
            return {"status": 400, "body": {"error": "payload must be an object"}}
        action = str(payload.get("action"))
        if self._shard_router is not None and action != "cluster_info":
            hint = self._shard_router.misdirected(self.shard_id, action, payload)
            if hint is not None:
                self._misdirected.labels(action).inc()
                return {
                    "status": 421,
                    "body": {
                        "error": (
                            f"shard {self.shard_id} does not own {hint['key']!r} "
                            f"(owner: {hint['owner']})"
                        ),
                        **hint,
                    },
                }
        started = time.monotonic()
        tenant = None
        try:
            if action in self._INTRINSIC_ACTIONS:
                # Intrinsic actions stay unauthenticated (a scraper needs
                # no account), but a presented credential still
                # attributes the request to its tenant.
                token = payload.get("token")
                if token:
                    try:
                        user = self.auth.resolve(token)
                        tenant = user.userName if user is not None else None
                    except ServiceError:
                        pass
                response = self._handle_intrinsic(action, payload)
            else:
                # Resolve here (not in dispatch) so the request metrics
                # carry the tenant label even when the handler fails.
                user = self.router.resolve_user(payload)
                tenant = user.userName if user is not None else None
                body = self.router.dispatch(payload, user=user)
                response = {"status": 200, "body": body}
        except ServiceError as exc:
            response = {"status": exc.status, "body": {"error": exc.message}}
        except Exception:
            response = {
                "status": 500,
                "body": {"error": traceback.format_exc(limit=3)},
            }
        self.metrics.record(
            action,
            time.monotonic() - started,
            ok=response["status"] < 400,
            tenant=tenant,
        )
        return response

    def close(self) -> None:
        """Stop the job workers and close the registry database."""
        self.job_manager.shutdown(wait=True)
        self.db.close()
