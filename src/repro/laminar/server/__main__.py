"""Standalone Laminar server: ``python -m repro.laminar.server``.

Serves a Laminar 2.0 server over the framed TCP transport, optionally
with an on-disk registry so content survives restarts:

    python -m repro.laminar.server --port 8421 --db laminar.db

Clients connect with ``laminar --connect HOST:PORT`` or
``LaminarClient.connect(host, port)``.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.laminar.server.app import LaminarServer
from repro.laminar.transport.tcp import TcpServerTransport

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, serve until SIGINT/SIGTERM."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.laminar.server", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = pick a free port")
    parser.add_argument(
        "--db", default=":memory:", help="registry database path (default in-memory)"
    )
    ns = parser.parse_args(argv)

    server = LaminarServer(ns.db)
    transport = TcpServerTransport(server, host=ns.host, port=ns.port).start()
    host, port = transport.address
    print(f"laminar server listening on {host}:{port} (registry: {ns.db})", flush=True)

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, lambda *_: stop.set())
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        stop.wait()
    finally:
        transport.stop()
        server.close()
        print("laminar server stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
