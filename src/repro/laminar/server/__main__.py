"""Standalone Laminar server: ``python -m repro.laminar.server``.

Serves a Laminar 2.0 server over the framed TCP transport, optionally
with an on-disk registry so content survives restarts:

    python -m repro.laminar.server --port 8421 --db laminar.db

Clients connect with ``laminar --connect HOST:PORT`` or
``LaminarClient.connect(host, port)``.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.laminar.server.app import LaminarServer
from repro.laminar.transport.tcp import TcpServerTransport

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, serve until SIGINT/SIGTERM."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.laminar.server", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = pick a free port")
    parser.add_argument(
        "--db", default=":memory:", help="registry database path (default in-memory)"
    )
    parser.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="threads enacting asynchronous jobs (default 2)",
    )
    parser.add_argument(
        "--job-queue",
        type=int,
        default=64,
        help="bounded job queue capacity; beyond it submits get 429 (default 64)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default per-job timeout in seconds (default none)",
    )
    parser.add_argument(
        "--index-dir",
        default=None,
        help="directory for the persisted semantic-search index; warm-starts "
        "on boot when it matches the registry (default none)",
    )
    ns = parser.parse_args(argv)

    server = LaminarServer(
        ns.db,
        job_workers=ns.job_workers,
        job_queue_capacity=ns.job_queue,
        job_default_timeout=ns.job_timeout,
        index_dir=ns.index_dir,
    )
    transport = TcpServerTransport(server, host=ns.host, port=ns.port).start()
    host, port = transport.address
    print(
        f"laminar server listening on {host}:{port} (registry: {ns.db}, "
        f"{ns.job_workers} job workers, queue {ns.job_queue})",
        flush=True,
    )

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, lambda *_: stop.set())
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        stop.wait()
    finally:
        transport.stop()
        server.close()
        print("laminar server stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
