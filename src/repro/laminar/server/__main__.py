"""Standalone Laminar server: ``python -m repro.laminar.server``.

Serves a Laminar 2.0 server over the framed TCP transport, optionally
with an on-disk registry so content survives restarts:

    python -m repro.laminar.server --port 8421 --db laminar.db

Clients connect with ``laminar --connect HOST:PORT`` or
``LaminarClient.connect(host, port)``.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.laminar.server.app import LaminarServer
from repro.laminar.transport.tcp import TcpServerTransport

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, serve until SIGINT/SIGTERM."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.laminar.server", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = pick a free port")
    parser.add_argument(
        "--db", default=":memory:", help="registry database path (default in-memory)"
    )
    parser.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="threads enacting asynchronous jobs (default 2)",
    )
    parser.add_argument(
        "--job-queue",
        type=int,
        default=64,
        help="bounded job queue capacity; beyond it submits get 429 (default 64)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default per-job timeout in seconds (default none)",
    )
    parser.add_argument(
        "--index-dir",
        default=None,
        help="directory for the persisted semantic-search index; warm-starts "
        "on boot when it matches the registry (default none)",
    )
    parser.add_argument(
        "--require-auth",
        action="store_true",
        help="refuse unauthenticated requests instead of falling back to "
        "the guest account (login / API key required)",
    )
    parser.add_argument(
        "--quota-config",
        default=None,
        help="path to a per-tenant quota JSON ({'default': {...}, "
        "'tenants': {name: {...}}}); limits registry rows, queued and "
        "running jobs, and sets fair-share weights",
    )
    parser.add_argument(
        "--shard-id",
        default=None,
        help="this server's shard id when serving as one member of a "
        "cluster (must appear in --cluster-config)",
    )
    parser.add_argument(
        "--cluster-config",
        default=None,
        help="path to the shared cluster config JSON (shard map, vnodes, "
        "replication); with --shard-id, misdirected keyed requests are "
        "answered 421 with the true owner",
    )
    ns = parser.parse_args(argv)

    cluster_config = None
    if ns.cluster_config is not None:
        from repro.laminar.cluster.config import ClusterConfig

        cluster_config = ClusterConfig.load(ns.cluster_config)
        if ns.shard_id is not None and ns.shard_id not in cluster_config.shard_ids:
            parser.error(
                f"--shard-id {ns.shard_id!r} is not in {ns.cluster_config}"
            )

    quotas = None
    if ns.quota_config is not None:
        from repro.laminar.tenancy import QuotaConfig

        try:
            quotas = QuotaConfig.load(ns.quota_config)
        except (OSError, ValueError) as exc:
            parser.error(f"--quota-config {ns.quota_config!r}: {exc}")

    server = LaminarServer(
        ns.db,
        job_workers=ns.job_workers,
        job_queue_capacity=ns.job_queue,
        job_default_timeout=ns.job_timeout,
        index_dir=ns.index_dir,
        shard_id=ns.shard_id,
        cluster_config=cluster_config,
        require_auth=ns.require_auth,
        quotas=quotas,
    )
    transport = TcpServerTransport(server, host=ns.host, port=ns.port).start()
    host, port = transport.address
    shard_note = f", shard {ns.shard_id}" if ns.shard_id else ""
    auth_note = ", auth required" if ns.require_auth else ""
    print(
        f"laminar server listening on {host}:{port} (registry: {ns.db}, "
        f"{ns.job_workers} job workers, queue {ns.job_queue}"
        f"{shard_note}{auth_note})",
        flush=True,
    )

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, lambda *_: stop.set())
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        stop.wait()
    finally:
        transport.stop()
        server.close()
        print("laminar server stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
