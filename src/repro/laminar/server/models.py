"""Record dataclasses for the server's model layer.

These mirror the registry rows (Fig 6) one-to-one; the data-access layer
converts sqlite rows into them and the services hand them to clients as
plain dicts via :meth:`to_public`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "UserRecord",
    "ApiKeyRecord",
    "PERecord",
    "WorkflowRecord",
    "ExecutionRecord",
    "ResponseRecord",
    "JobRecord",
]


@dataclass
class UserRecord:
    """One User row."""
    userId: int
    userName: str
    passwordHash: str = ""
    createdAt: str = ""

    def to_public(self) -> dict:
        """Client-facing dict (embeddings and secrets omitted)."""
        return {"userId": self.userId, "userName": self.userName}


@dataclass
class ApiKeyRecord:
    """One ApiKey row: a long-lived credential, stored by digest only."""
    keyId: int
    userId: int
    keyDigest: str = ""
    name: str = ""
    createdAt: str = ""

    def to_public(self) -> dict:
        """Client-facing dict — never includes the digest."""
        return {
            "keyId": self.keyId,
            "userId": self.userId,
            "name": self.name,
            "createdAt": self.createdAt,
        }


@dataclass
class PERecord:
    """One ProcessingElement row."""
    peId: int
    userId: int
    peName: str
    peCode: str
    description: str = ""
    descEmbedding: str = ""  # JSON list[float]
    sptEmbedding: str = ""  # JSON dict[str, int]
    createdAt: str = ""

    def desc_vector(self) -> list[float]:
        """Parsed description embedding ([] when unset)."""
        return json.loads(self.descEmbedding) if self.descEmbedding else []

    def spt_features(self) -> dict[str, int]:
        """Parsed SPT feature counter ({} when unset)."""
        return json.loads(self.sptEmbedding) if self.sptEmbedding else {}

    def to_public(self, include_code: bool = True) -> dict:
        """Client-facing dict (embeddings and secrets omitted)."""
        public = {
            "peId": self.peId,
            "peName": self.peName,
            "description": self.description,
        }
        if include_code:
            public["peCode"] = self.peCode
        return public


@dataclass
class WorkflowRecord:
    """One Workflow row."""
    workflowId: int
    userId: int
    workflowName: str
    workflowCode: str
    entryPoint: str = ""
    description: str = ""
    descEmbedding: str = ""
    sptEmbedding: str = ""
    createdAt: str = ""

    def desc_vector(self) -> list[float]:
        """Parsed description embedding ([] when unset)."""
        return json.loads(self.descEmbedding) if self.descEmbedding else []

    def spt_features(self) -> dict[str, int]:
        """Parsed SPT feature counter ({} when unset)."""
        return json.loads(self.sptEmbedding) if self.sptEmbedding else {}

    def to_public(self, include_code: bool = True) -> dict:
        """Client-facing dict (embeddings and secrets omitted)."""
        public = {
            "workflowId": self.workflowId,
            "workflowName": self.workflowName,
            "description": self.description,
        }
        if include_code:
            public["workflowCode"] = self.workflowCode
        return public


@dataclass
class ExecutionRecord:
    """One Execution row."""
    executionId: int
    workflowId: int
    userId: int
    mapping: str
    inputSpec: str = ""
    status: str = "pending"
    startedAt: str | None = None
    finishedAt: str | None = None

    def to_public(self) -> dict:
        """Client-facing dict (embeddings and secrets omitted)."""
        return asdict(self)


@dataclass
class JobRecord:
    """One Job row: an asynchronous workflow run's persisted lifecycle."""
    jobId: int
    workflowId: int | None = None
    userId: int | None = None
    workflowName: str = "workflow"
    state: str = "QUEUED"
    mapping: str = "simple"
    inputSpec: str = ""
    priority: int = 0
    timeoutSeconds: float | None = None
    maxRetries: int = 0
    attempts: int = 0
    error: str | None = None
    result: str | None = None  # JSON outcome
    logLines: str = ""
    queueSeconds: float = 0.0
    runSeconds: float = 0.0
    submittedAt: str = ""
    startedAt: str | None = None
    finishedAt: str | None = None

    def outcome(self) -> dict:
        """Parsed execution outcome ({} when the job has not finished)."""
        return json.loads(self.result) if self.result else {}

    def to_public(self) -> dict:
        """Client-facing dict (the persisted-row view of a job)."""
        public = asdict(self)
        public["result"] = self.outcome()
        return public


@dataclass
class ResponseRecord:
    """One Response row."""
    responseId: int
    executionId: int
    output: str = ""
    logLines: str = ""
    createdAt: str = ""

    def to_public(self) -> dict:
        """Client-facing dict (embeddings and secrets omitted)."""
        return asdict(self)
