"""The serverless execution engine (paper §III, §IV-E/F).

* :mod:`repro.laminar.execution.streaming` — per-thread stdout routing
  into a concurrent queue, the mechanism behind true-streaming output.
* :mod:`repro.laminar.execution.autoimport` — dependency auto-import for
  registered workflow code.
* :mod:`repro.laminar.execution.resources` — content-addressed resource
  cache with the missing-resources handshake.
* :mod:`repro.laminar.execution.engine` — :class:`ExecutionEngine`, which
  materialises a registered workflow, enacts it under the requested
  mapping and streams its output line by line.
"""

from repro.laminar.execution.autoimport import auto_import
from repro.laminar.execution.engine import ExecutionEngine, ExecutionOutcome
from repro.laminar.execution.resources import ResourceCache, file_digest
from repro.laminar.execution.streaming import StdoutRouter

__all__ = [
    "ExecutionEngine",
    "ExecutionOutcome",
    "ResourceCache",
    "file_digest",
    "StdoutRouter",
    "auto_import",
]
