"""Resource management and caching (paper §IV-F).

Laminar 1.0 serialised a whole ``resources/`` directory into every run
request.  Laminar 2.0 instead lets clients declare the files a run needs;
the server answers with the subset it does not already hold, the client
uploads only those, and the engine materialises them into the run's
working directory.  The cache is content-addressed (sha256), so renamed
or re-requested files never transfer twice — the byte counters feed the
A2 ablation bench.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ResourceCache", "file_digest", "ResourceManifestEntry"]


def file_digest(data: bytes) -> str:
    """Content address of a resource (sha256 hex)."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class ResourceManifestEntry:
    """One declared resource: logical name + content digest."""

    name: str
    digest: str

    @classmethod
    def from_dict(cls, d: dict) -> "ResourceManifestEntry":
        """Build an entry from the wire form {'name':…, 'digest':…}."""
        return cls(name=str(d["name"]), digest=str(d["digest"]))


@dataclass
class CacheStats:
    """Transfer accounting for the caching ablation."""

    bytes_uploaded: int = 0
    bytes_served_from_cache: int = 0
    uploads: int = 0
    cache_hits: int = 0


class ResourceCache:
    """Content-addressed store of uploaded resources."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root else Path(tempfile.mkdtemp(prefix="laminar-cache-"))
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        if not digest or any(c not in "0123456789abcdef" for c in digest):
            raise ValueError(f"invalid digest {digest!r}")
        return self.root / digest

    def has(self, digest: str) -> bool:
        """True when content with this digest is cached."""
        return self._path(digest).exists()

    def put(self, data: bytes) -> str:
        """Store content; returns its digest (idempotent)."""
        digest = file_digest(data)
        path = self._path(digest)
        if not path.exists():
            path.write_bytes(data)
            self.stats.bytes_uploaded += len(data)
            self.stats.uploads += 1
        return digest

    def get(self, digest: str) -> bytes:
        """Read cached content by digest (KeyError when absent)."""
        path = self._path(digest)
        if not path.exists():
            raise KeyError(f"resource {digest} not cached")
        return path.read_bytes()

    def missing(self, manifest: list[ResourceManifestEntry]) -> list[str]:
        """Names of manifest entries the cache does not hold yet.

        This is the server's "resources message detailing the required
        files" — the client uploads exactly these.
        """
        return [entry.name for entry in manifest if not self.has(entry.digest)]

    def materialize(
        self, manifest: list[ResourceManifestEntry], dest: str | Path
    ) -> dict[str, str]:
        """Copy cached resources into a run directory under their names.

        Returns ``{name: absolute_path}``.  Raises ``KeyError`` when a
        manifest entry is absent (the handshake should have uploaded it).
        """
        dest_dir = Path(dest)
        dest_dir.mkdir(parents=True, exist_ok=True)
        placed: dict[str, str] = {}
        for entry in manifest:
            source = self._path(entry.digest)
            if not source.exists():
                raise KeyError(f"resource {entry.name} ({entry.digest}) not cached")
            target = dest_dir / Path(entry.name).name
            shutil.copyfile(source, target)
            self.stats.bytes_served_from_cache += source.stat().st_size
            self.stats.cache_hits += 1
            placed[entry.name] = str(target)
        return placed

    def clear(self) -> None:
        """Delete every cached object (the no-cache ablation's reset)."""
        for child in self.root.iterdir():
            child.unlink()
