"""Dependency auto-import for registered workflow code (paper §III).

Registered PEs frequently use standard-library helpers (``random``,
``math``, ``json``…) without carrying their import statements — the
client registers *class definitions*, not whole modules.  The execution
engine therefore scans the code for names that are used but never bound
and injects imports for the ones on a curated allowlist.  Unknown free
names are left alone (they may be provided by the engine namespace, e.g.
the PE base classes).
"""

from __future__ import annotations

import ast
import builtins

__all__ = ["auto_import", "missing_modules", "ALLOWED_MODULES"]

#: Standard-library modules the engine is willing to import on demand.
ALLOWED_MODULES = frozenset(
    {
        "random", "math", "json", "re", "collections", "itertools",
        "functools", "statistics", "string", "time", "datetime",
        "heapq", "bisect", "csv", "io", "os", "pathlib", "hashlib",
        "base64", "textwrap", "uuid", "urllib",
    }
)


class _NameScan(ast.NodeVisitor):
    def __init__(self) -> None:
        self.used: set[str] = set()
        self.bound: set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)
        else:
            self.bound.add(node.id)

    def visit_FunctionDef(self, node) -> None:
        self.bound.add(node.name)
        for arg in (
            list(node.args.args)
            + list(node.args.posonlyargs)
            + list(node.args.kwonlyargs)
        ):
            self.bound.add(arg.arg)
        if node.args.vararg:
            self.bound.add(node.args.vararg.arg)
        if node.args.kwarg:
            self.bound.add(node.args.kwarg.arg)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.add(node.name)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.bound.add((alias.asname or alias.name).split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.bound.add(alias.asname or alias.name)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.bound.add(node.name)
        self.generic_visit(node)

    def visit_comprehension(self, node) -> None:  # pragma: no cover - via walk
        self.generic_visit(node)


def missing_modules(source: str, provided: set[str] | None = None) -> list[str]:
    """Allowlisted modules used by ``source`` but neither bound nor provided."""
    from repro import pyast

    tree = pyast.parse(source)
    scan = _NameScan()
    scan.visit(tree)
    provided = provided or set()
    builtin_names = set(dir(builtins))
    free = scan.used - scan.bound - builtin_names - provided
    return sorted(free & ALLOWED_MODULES)


def auto_import(source: str, provided: set[str] | None = None) -> str:
    """Prepend import statements for detected missing allowlisted modules."""
    modules = missing_modules(source, provided)
    if not modules:
        return source
    header = "\n".join(f"import {m}" for m in modules)
    return f"{header}\n{source}"
