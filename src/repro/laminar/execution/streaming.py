"""True-streaming stdout capture (paper §IV-E).

Laminar 2.0 "transfers stdout to a concurrent queue, enabling real-time
workflow output reading and line-by-line streaming to the client".  This
module implements exactly that: :class:`StdoutRouter` installs a proxy
``sys.stdout`` that routes writes from *registered threads* to their own
queues, leaving every other thread's output untouched — so several
workflow executions can stream concurrently without interleaving.
"""

from __future__ import annotations

import queue
import sys
import threading
from typing import Iterator, TextIO

__all__ = ["StdoutRouter"]

#: Queue sentinel marking the end of a stream.
_EOF = object()


class _RoutingWriter:
    """A ``sys.stdout`` stand-in dispatching per registered thread."""

    def __init__(self, fallback: TextIO) -> None:
        self._fallback = fallback
        self._routes: dict[int, queue.Queue] = {}
        self._buffers: dict[int, str] = {}
        self._lock = threading.Lock()

    def register(self, thread_id: int, q: queue.Queue) -> None:
        """Route this thread's stdout into queue ``q``."""
        with self._lock:
            self._routes[thread_id] = q
            self._buffers[thread_id] = ""

    def unregister(self, thread_id: int) -> None:
        """Stop routing; flush the tail and close the stream."""
        with self._lock:
            q = self._routes.pop(thread_id, None)
            tail = self._buffers.pop(thread_id, "")
        if q is not None:
            if tail:
                q.put(tail)
            q.put(_EOF)

    def write(self, text: str) -> int:
        """Route text to the owning thread's queue (or fall through)."""
        tid = threading.get_ident()
        with self._lock:
            q = self._routes.get(tid)
        if q is None:
            return self._fallback.write(text)
        # Split into lines; keep the unterminated tail buffered.
        with self._lock:
            data = self._buffers.get(tid, "") + text
            *lines, tail = data.split("\n")
            self._buffers[tid] = tail
        for line in lines:
            q.put(line)
        return len(text)

    def flush(self) -> None:
        """Flush the fallback stream."""
        self._fallback.flush()

    # File-protocol odds and ends some libraries poke at.
    def isatty(self) -> bool:
        """Streamed stdout is never a TTY."""
        return False

    @property
    def encoding(self) -> str:  # pragma: no cover - passthrough
        """Mirror the fallback stream's encoding."""
        return getattr(self._fallback, "encoding", "utf-8")


class StdoutRouter:
    """Process-wide singleton managing streaming stdout capture.

    Usage::

        router = StdoutRouter.instance()
        for line in router.run_streaming(work):
            ...  # lines appear as `work` prints them
    """

    _instance: "StdoutRouter | None" = None
    _instance_lock = threading.Lock()

    def __init__(self) -> None:
        self._writer: _RoutingWriter | None = None
        self._install_lock = threading.Lock()
        self._active = 0

    @classmethod
    def instance(cls) -> "StdoutRouter":
        """The process-wide router singleton."""
        with cls._instance_lock:
            if cls._instance is None:
                cls._instance = cls()
            return cls._instance

    def _install(self) -> _RoutingWriter:
        with self._install_lock:
            if self._writer is None or sys.stdout is not self._writer:
                self._writer = _RoutingWriter(sys.stdout)
                sys.stdout = self._writer
            self._active += 1
            return self._writer

    def _release(self) -> None:
        with self._install_lock:
            self._active -= 1
            if self._active <= 0 and self._writer is not None:
                sys.stdout = self._writer._fallback
                self._writer = None
                self._active = 0

    def run_streaming(
        self, work, timeout: float = 300.0
    ) -> Iterator[str]:
        """Run ``work()`` in a thread, yielding its printed lines live.

        The worker's exception (if any) is re-raised after the stream
        drains, so callers see output up to the failure point first.
        """
        writer = self._install()
        q: queue.Queue = queue.Queue()
        error: list[BaseException] = []

        def target() -> None:
            tid = threading.get_ident()
            writer.register(tid, q)
            try:
                work()  # results travel via the caller's closure
            except BaseException as exc:  # propagated below
                error.append(exc)
            finally:
                writer.unregister(tid)

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        try:
            while True:
                try:
                    item = q.get(timeout=timeout)
                except queue.Empty as exc:
                    raise TimeoutError(
                        f"no output for {timeout}s; workflow presumed wedged"
                    ) from exc
                if item is _EOF:
                    break
                yield item
        finally:
            thread.join(timeout=5.0)
            self._release()
        if error:
            raise error[0]
