"""The execution engine: serverless enactment of registered workflows.

Given a workflow's registered source code, the engine

1. applies dependency auto-import (§III),
2. materialises any declared resources from the cache (§IV-F),
3. executes the code in a fresh namespace pre-populated with the
   dispel4py PE base classes and :class:`WorkflowGraph`,
4. locates the workflow graph (an explicit ``graph_name``, a
   ``create_workflow()`` factory, or the first ``WorkflowGraph`` bound at
   module scope), and
5. enacts it with the requested mapping, streaming every printed line to
   the caller as it is produced (§IV-E true streaming).

``execute_streaming`` returns ``(line_iterator, outcome)`` where
``outcome`` fills in once the iterator is exhausted — precisely the shape
the transport's :class:`~repro.laminar.transport.inprocess.ServerStream`
wants.
"""

from __future__ import annotations

import itertools
import tempfile
import traceback
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.d4py import (
    CompositePE,
    ConsumerPE,
    GenericPE,
    IterativePE,
    ProducerPE,
    WorkflowGraph,
)
from repro.d4py.mappings import run_graph
from repro.laminar.execution.autoimport import auto_import
from repro.laminar.execution.resources import (
    ResourceCache,
    ResourceManifestEntry,
)
from repro.laminar.execution.streaming import StdoutRouter

__all__ = ["ExecutionEngine", "ExecutionOutcome"]

_module_counter = itertools.count()

#: Names the engine injects into every workflow namespace.
_BASE_NAMESPACE = {
    "GenericPE": GenericPE,
    "IterativePE": IterativePE,
    "ProducerPE": ProducerPE,
    "ConsumerPE": ConsumerPE,
    "CompositePE": CompositePE,
    "WorkflowGraph": WorkflowGraph,
}


@dataclass
class ExecutionOutcome:
    """Filled in when a streamed execution finishes."""

    status: str = "pending"  # success | error
    error: str | None = None
    outputs: dict[str, list] = field(default_factory=dict)
    logs: list[str] = field(default_factory=list)
    iterations: dict[str, int] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    partition: dict[str, str] = field(default_factory=dict)
    #: Nested span trees of the run (see :meth:`repro.obs.Tracer.tree`)
    #: when the run was requested with ``trace=True``; ``None`` otherwise.
    trace: list | None = None

    def to_public(self) -> dict:
        """JSON-able form sent to clients in the END frame."""
        public = {
            "status": self.status,
            "error": self.error,
            "outputs": self.outputs,
            "logs": self.logs,
            "iterations": self.iterations,
            "timings": self.timings,
            "partition": self.partition,
        }
        if self.trace is not None:
            public["trace"] = self.trace
        return public


def _json_safe(value: Any):
    try:
        import json

        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


class ExecutionEngine:
    """Executes registered workflow source code serverlessly."""

    def __init__(
        self,
        resource_cache: ResourceCache | None = None,
        registry=None,
        tracer=None,
        broker=None,
    ) -> None:
        """``registry``/``tracer`` are the observability sinks every run
        records into — a server passes its own; standalone engines fall
        back to the process defaults (see :mod:`repro.obs.runtime`).
        ``broker`` is the default work-queue backend for dynamic-mapping
        runs — cluster shards pass their partition of the shared
        :class:`~repro.d4py.redisim.RedisSim` here."""
        self.cache = resource_cache or ResourceCache()
        self.registry = registry
        self.tracer = tracer
        self.broker = broker

    # -- graph discovery ------------------------------------------------------

    @staticmethod
    def _find_graph(namespace: dict, graph_name: str | None) -> WorkflowGraph:
        if graph_name:
            graph = namespace.get(graph_name)
            if not isinstance(graph, WorkflowGraph):
                raise ValueError(
                    f"{graph_name!r} is not a WorkflowGraph in the workflow module"
                )
            return graph
        factory = namespace.get("create_workflow") or namespace.get("create_graph")
        if callable(factory):
            graph = factory()
            if not isinstance(graph, WorkflowGraph):
                raise ValueError("create_workflow() did not return a WorkflowGraph")
            return graph
        for value in namespace.values():
            if isinstance(value, WorkflowGraph):
                return value
        raise ValueError(
            "workflow module defines no WorkflowGraph (bind one at module "
            "scope or provide create_workflow())"
        )

    # -- execution ----------------------------------------------------------------

    def execute_streaming(
        self,
        code: str,
        input: Any = 1,
        mapping: str = "simple",
        graph_name: str | None = None,
        resources: list[dict] | None = None,
        verbose: bool = False,
        sandbox: bool = False,
        inactivity_timeout: float = 300.0,
        **options: Any,
    ) -> tuple[Iterator[str], ExecutionOutcome]:
        """Run workflow ``code``; returns ``(line_iterator, outcome)``.

        Lines stream as the workflow prints them; ``outcome`` is complete
        once the iterator is exhausted.  Errors are reported through
        ``outcome`` (status ``error``) rather than raised, so partial
        output always reaches the client first.  With ``sandbox`` the
        module executes under restricted builtins (see
        :mod:`repro.laminar.execution.sandbox`).
        """
        outcome = ExecutionOutcome()

        def work() -> None:
            namespace: dict[str, Any] = dict(_BASE_NAMESPACE)
            namespace["__name__"] = f"laminar_workflow_{next(_module_counter)}"
            rundir: str | None = None
            if resources:
                manifest = [ResourceManifestEntry.from_dict(r) for r in resources]
                rundir = tempfile.mkdtemp(prefix="laminar-run-")
                namespace["RESOURCES"] = self.cache.materialize(manifest, rundir)
                namespace["RESOURCE_DIR"] = rundir
            if sandbox:
                from repro.laminar.execution.sandbox import make_sandbox_builtins

                namespace["__builtins__"] = make_sandbox_builtins(rundir)
            source = auto_import(code, provided=set(namespace))
            from repro.pyast import compile_source

            exec(compile_source(source, namespace["__name__"], "exec"), namespace)
            graph = self._find_graph(namespace, graph_name)
            options.setdefault("registry", self.registry)
            if self.broker is not None and mapping == "dynamic":
                options.setdefault("broker", self.broker)
            result = run_graph(
                graph, input=input, mapping=mapping, verbose=verbose, **options
            )
            outcome.outputs = {
                f"{pe}.{port}": [_json_safe(v) for v in values]
                for (pe, port), values in result.outputs.items()
            }
            outcome.logs = list(result.logs)
            outcome.iterations = dict(result.iterations)
            outcome.timings = {k: round(v, 6) for k, v in result.timings.items()}
            outcome.partition = {k: repr(v) for k, v in result.partition.items()}
            if result.trace is not None:
                outcome.trace = result.trace.tree()
                if self.tracer is not None and result.trace is not self.tracer:
                    # Fold the run's spans into the server's sink so
                    # ``get_trace`` serves them later.
                    self.tracer.adopt(result.trace)
            if verbose:
                for line in result.logs:
                    print(line)

        def lines() -> Iterator[str]:
            router = StdoutRouter.instance()
            try:
                yield from router.run_streaming(work, timeout=inactivity_timeout)
                outcome.status = "success"
            except Exception:
                outcome.status = "error"
                outcome.error = traceback.format_exc(limit=4)

        return lines(), outcome

    def inspect(self, code: str, graph_name: str | None = None) -> dict:
        """Build (but do not run) a workflow's graph; return renderings.

        Used by the client's ``show`` command: returns the text and DOT
        visualisations plus basic topology facts.
        """
        from repro.d4py.visualise import to_dot, to_text

        namespace: dict[str, Any] = dict(_BASE_NAMESPACE)
        namespace["__name__"] = f"laminar_inspect_{next(_module_counter)}"
        source = auto_import(code, provided=set(namespace))
        from repro.pyast import compile_source

        exec(compile_source(source, namespace["__name__"], "exec"), namespace)
        graph = self._find_graph(namespace, graph_name)
        return {
            "text": to_text(graph),
            "dot": to_dot(graph),
            "pes": [pe.name for pe in graph.pes],
            "roots": [pe.name for pe in graph.roots()],
            "edges": len(list(graph.edges())),
        }

    def execute(self, code: str, **kwargs: Any) -> ExecutionOutcome:
        """Blocking convenience: drain the stream, return the outcome.

        Printed lines are preserved in ``outcome.logs`` (prefixed entries
        from PE ``log`` calls are already there; printed stdout lines are
        appended after them).
        """
        stream, outcome = self.execute_streaming(code, **kwargs)
        printed = list(stream)
        # Keep printed output visible to non-streaming callers too.
        outcome.logs = outcome.logs + [l for l in printed if l not in outcome.logs]
        return outcome
