"""Sandboxed execution of registered workflow code.

A serverless engine runs code uploaded by arbitrary registry users, so
Laminar's execution engine offers a restricted mode: workflow modules
execute with a curated builtins table —

* no ``open`` (a guarded replacement only reaches the run's resource
  directory), no ``exec``/``eval``/``compile``/``input``;
* ``__import__`` limited to the same stdlib allowlist the auto-importer
  uses (:data:`repro.laminar.execution.autoimport.ALLOWED_MODULES`);
* everything computational (types, iteration, math builtins) available.

This is *defence in depth* for a simulated deployment, not a hostile-
tenant security boundary (CPython offers none in-process); it reproduces
the isolation posture of the paper's Dockerized engine at the module
level.
"""

from __future__ import annotations

import builtins
from pathlib import Path
from typing import Any

from repro.laminar.execution.autoimport import ALLOWED_MODULES

__all__ = ["SandboxViolation", "make_sandbox_builtins"]


class SandboxViolation(RuntimeError):
    """Raised when sandboxed code touches a forbidden capability."""


#: Builtins denied to sandboxed workflow code.
_DENIED = frozenset(
    {
        "open", "exec", "eval", "compile", "input", "breakpoint",
        "exit", "quit", "help", "memoryview", "globals", "locals", "vars",
    }
)


def _guarded_import(name: str, globals=None, locals=None, fromlist=(), level=0):
    root = name.split(".")[0]
    if root not in ALLOWED_MODULES:
        raise SandboxViolation(
            f"import of {name!r} is not permitted in sandboxed workflows "
            f"(allowed: {', '.join(sorted(ALLOWED_MODULES))})"
        )
    return builtins.__import__(name, globals, locals, fromlist, level)


def _make_guarded_open(resource_dir: str | None):
    resource_root = Path(resource_dir).resolve() if resource_dir else None

    def guarded_open(file, mode: str = "r", *args: Any, **kwargs: Any):
        if resource_root is None:
            raise SandboxViolation(
                "open() is not permitted in sandboxed workflows without "
                "declared resources"
            )
        if any(flag in mode for flag in ("w", "a", "+", "x")):
            raise SandboxViolation("sandboxed workflows may not write files")
        target = Path(file).resolve()
        if not target.is_relative_to(resource_root):
            raise SandboxViolation(
                f"sandboxed open() only reaches the run's resources "
                f"({resource_root}), not {target}"
            )
        return open(target, mode, *args, **kwargs)

    return guarded_open


def make_sandbox_builtins(resource_dir: str | None = None) -> dict:
    """A restricted ``__builtins__`` mapping for workflow namespaces."""
    table = {
        name: getattr(builtins, name)
        for name in dir(builtins)
        if not name.startswith("_") and name not in _DENIED
    }
    table["__import__"] = _guarded_import
    table["open"] = _make_guarded_open(resource_dir)
    # Exceptions and constants double-underscored names exec() expects.
    table["__build_class__"] = builtins.__build_class__
    table["__name__"] = "sandboxed"
    table["True"], table["False"], table["None"] = True, False, None
    return table
