"""A bounded, priority-ordered job queue with admission control.

The queue is the backpressure point of the jobs subsystem: submissions
beyond ``capacity`` raise :class:`QueueFull` immediately (the service
layer maps this to an HTTP-429-style error) instead of letting work pile
up unboundedly.  Ordering is highest ``priority`` first, FIFO within a
priority.  Cancelled jobs are dropped lazily at ``get`` time so
cancellation never has to scan the heap.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from repro.laminar.jobs.model import Job, JobError, JobState

__all__ = ["JobQueue", "QueueFull"]


class QueueFull(JobError):
    """Admission control rejected a submit: the queue is at capacity."""

    def __init__(self, capacity: int) -> None:
        super().__init__(
            f"job queue is full ({capacity} queued); retry after a job finishes"
        )
        self.capacity = capacity


class JobQueue:
    """Bounded max-priority queue of :class:`Job` records."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._heap: list[tuple[int, int, Job]] = []
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._cancelled: set[int] = set()
        # Accounting for the metrics snapshot.
        self.submitted = 0
        self.rejected = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap) - len(self._cancelled)

    @property
    def depth(self) -> int:
        """Jobs currently queued (excluding lazily-dropped cancellations)."""
        return len(self)

    def put(self, job: Job) -> None:
        """Enqueue one job; raises :class:`QueueFull` beyond capacity."""
        with self._cond:
            if len(self._heap) - len(self._cancelled) >= self.capacity:
                self.rejected += 1
                raise QueueFull(self.capacity)
            heapq.heappush(self._heap, (-job.spec.priority, next(self._seq), job))
            self.submitted += 1
            self.peak_depth = max(
                self.peak_depth, len(self._heap) - len(self._cancelled)
            )
            self._cond.notify()

    def get(self, timeout: float | None = None) -> Job | None:
        """Pop the highest-priority job, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout.  Jobs whose id was passed to
        :meth:`discard` are skipped and dropped here.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.job_id in self._cancelled:
                        self._cancelled.discard(job.job_id)
                        continue
                    return job
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)

    def discard(self, job_id: int) -> bool:
        """Lazily remove a queued job (cancellation); True if it was queued.

        The entry stays in the heap but will be skipped by ``get`` —
        O(queued cancellations) memory, O(1) time.  Only jobs still in
        ``QUEUED`` state are discardable: marking an entry whose job has
        already left the queue's jurisdiction (running or terminal)
        would double-count it in the ``depth``/capacity accounting.
        """
        with self._cond:
            for _, _, job in self._heap:
                if job.job_id == job_id and job.job_id not in self._cancelled:
                    if job.state is JobState.QUEUED:
                        self._cancelled.add(job_id)
                        return True
                    return False
            return False

    def stats(self) -> dict:
        """JSON-able queue accounting for the metrics snapshot."""
        with self._cond:
            return {
                "depth": len(self._heap) - len(self._cancelled),
                "capacity": self.capacity,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "peak_depth": self.peak_depth,
            }
