"""A bounded job queue with per-tenant lanes and weighted fair-share.

The queue is the backpressure point of the jobs subsystem: submissions
beyond ``capacity`` raise :class:`QueueFull` immediately (the service
layer maps this to an HTTP-429-style error) instead of letting work pile
up unboundedly.

Ordering is two-level.  Within a tenant, highest ``priority`` first,
FIFO within a priority — exactly the old single-heap contract.  *Across*
tenants, jobs are drained by deficit round-robin over the tenants'
fair-share weights: each tenant lane accumulates ``weight`` credits when
its turn comes and spends one credit per dequeued job, so a tenant with
weight 2 drains twice as fast as a weight-1 tenant under contention, and
a tenant that floods 500 jobs cannot starve another tenant's single
submission — the victim's job is at worst one round-robin cycle away
from the head regardless of the flood's depth.

Optional per-tenant *running* caps (from a
:class:`~repro.laminar.tenancy.QuotaConfig`) gate the dequeue: a lane
whose tenant already occupies its quota of workers is skipped until
:meth:`JobQueue.task_done` releases a slot.

Cancelled jobs are dropped lazily at ``get`` time so cancellation never
has to scan the heaps.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from repro.laminar.jobs.model import Job, JobError, JobState

__all__ = ["JobQueue", "QueueFull"]


class QueueFull(JobError):
    """Admission control rejected a submit: the queue is at capacity."""

    def __init__(self, capacity: int, tenant: str | None = None) -> None:
        if tenant is None:
            message = (
                f"job queue is full ({capacity} queued); "
                "retry after a job finishes"
            )
        else:
            message = (
                f"tenant {tenant!r} is at its queued-job quota ({capacity}); "
                "retry after a job finishes"
            )
        super().__init__(message)
        self.capacity = capacity
        self.tenant = tenant


class _TenantLane:
    """One tenant's priority-FIFO sub-queue plus its fair-share state."""

    __slots__ = ("heap", "cancelled", "credit", "running", "served")

    def __init__(self) -> None:
        self.heap: list[tuple[int, int, Job]] = []
        self.cancelled: set[int] = set()
        self.credit = 0.0
        self.running = 0
        self.served = 0

    @property
    def depth(self) -> int:
        return len(self.heap) - len(self.cancelled)


class JobQueue:
    """Bounded multi-tenant priority queue drained by weighted fair-share."""

    def __init__(self, capacity: int = 64, quotas=None) -> None:
        """``quotas`` is an optional :class:`~repro.laminar.tenancy.
        QuotaConfig` (duck-typed: ``for_tenant(name)`` returning an
        object with ``weight`` and ``max_running_jobs``)."""
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.quotas = quotas
        self._lanes: dict[str, _TenantLane] = {}
        #: Round-robin order over tenants with queued jobs; the head is
        #: the lane currently spending its credit.
        self._rr: list[str] = []
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._size = 0  # live queued jobs across all lanes
        # Accounting for the metrics snapshot.
        self.submitted = 0
        self.rejected = 0
        self.peak_depth = 0

    # -- tenant helpers ------------------------------------------------------

    def _weight(self, tenant: str) -> int:
        if self.quotas is None:
            return 1
        return max(1, int(self.quotas.for_tenant(tenant).weight))

    def _running_cap(self, tenant: str) -> int | None:
        if self.quotas is None:
            return None
        return self.quotas.for_tenant(tenant).max_running_jobs

    def _lane(self, tenant: str) -> _TenantLane:
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._lanes[tenant] = _TenantLane()
        return lane

    def __len__(self) -> int:
        with self._cond:
            return self._size

    @property
    def depth(self) -> int:
        """Jobs currently queued (excluding lazily-dropped cancellations)."""
        return len(self)

    def depth_of(self, tenant: str) -> int:
        """Queued jobs of one tenant (the queued-quota check)."""
        with self._cond:
            lane = self._lanes.get(tenant)
            return lane.depth if lane is not None else 0

    def running_of(self, tenant: str) -> int:
        """Jobs of one tenant handed to workers and not yet finished."""
        with self._cond:
            lane = self._lanes.get(tenant)
            return lane.running if lane is not None else 0

    # -- enqueue -------------------------------------------------------------

    def put(self, job: Job) -> None:
        """Enqueue one job; raises :class:`QueueFull` beyond capacity."""
        tenant = job.spec.tenant
        with self._cond:
            if self._size >= self.capacity:
                self.rejected += 1
                raise QueueFull(self.capacity)
            lane = self._lanes.get(tenant)
            if lane is None:
                lane = self._lanes[tenant] = _TenantLane()
            if not lane.heap and tenant not in self._rr:
                self._rr.append(tenant)
            heapq.heappush(lane.heap, (-job.spec.priority, next(self._seq), job))
            self._size += 1
            self.submitted += 1
            self.peak_depth = max(self.peak_depth, self._size)
            self._cond.notify()

    # -- dequeue (deficit round-robin) ---------------------------------------

    def _drop_cancelled(self, lane: _TenantLane) -> None:
        while lane.heap and lane.heap[0][2].job_id in lane.cancelled:
            _, _, job = heapq.heappop(lane.heap)
            lane.cancelled.discard(job.job_id)

    def _pop_next(self) -> Job | None:
        """One DRR scan: pop the next fair job, or ``None`` if everything
        is empty or blocked by a running cap."""
        # Single-lane fast path: with one unquota'd tenant queued there
        # is nothing to arbitrate, so skip the credit machinery — the
        # single-tenant dev server must not pay for fair-share.
        if self.quotas is None and len(self._rr) == 1:
            lane = self._lanes[self._rr[0]]
            if lane.cancelled:
                self._drop_cancelled(lane)
            if not lane.heap:
                self._rr.clear()
                lane.credit = 0.0
                return None
            _, _, job = heapq.heappop(lane.heap)
            lane.running += 1
            lane.served += 1
            self._size -= 1
            if not lane.heap and not lane.cancelled:
                self._rr.clear()
            return job
        visits = 0
        while self._rr and visits < len(self._rr):
            tenant = self._rr[0]
            lane = self._lanes[tenant]
            self._drop_cancelled(lane)
            if not lane.heap:
                # Lane drained: leave the rotation and forfeit credit so
                # an idle tenant cannot bank an unbounded burst.
                self._rr.pop(0)
                lane.credit = 0.0
                continue
            if lane.credit < 1.0:
                lane.credit += float(self._weight(tenant))
            cap = self._running_cap(tenant)
            if cap is not None and lane.running >= cap:
                # At the concurrent-running quota: skip without spending
                # credit; task_done() wakes waiters when a slot frees.
                lane.credit = min(lane.credit, float(self._weight(tenant)))
                self._rr.append(self._rr.pop(0))
                visits += 1
                continue
            _, _, job = heapq.heappop(lane.heap)
            lane.credit -= 1.0
            lane.running += 1
            lane.served += 1
            self._size -= 1
            if not lane.heap and not lane.cancelled:
                self._rr.pop(0)
                lane.credit = 0.0
            elif lane.credit < 1.0:
                # Credit spent: hand the head to the next tenant.
                self._rr.append(self._rr.pop(0))
            return job
        return None

    def get(self, timeout: float | None = None) -> Job | None:
        """Pop the next job under fair-share, waiting up to ``timeout``.

        Returns ``None`` on timeout.  Jobs whose id was passed to
        :meth:`discard` are skipped and dropped here.  Callers that
        enforce running caps must pair every ``get`` with a
        :meth:`task_done` once the job leaves its worker.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._pop_next()
                if job is not None:
                    return job
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)

    def task_done(self, job: Job) -> None:
        """Release the running slot a ``get`` acquired for this job."""
        tenant = job.spec.tenant
        with self._cond:
            lane = self._lanes.get(tenant)
            if lane is not None and lane.running > 0:
                lane.running -= 1
                # A freed slot may unblock a lane the caps were gating.
                self._cond.notify()

    def discard(self, job_id: int) -> bool:
        """Lazily remove a queued job (cancellation); True if it was queued.

        The entry stays in its lane's heap but will be skipped by
        ``get`` — O(queued cancellations) memory, O(1) time.  Only jobs
        still in ``QUEUED`` state are discardable: marking an entry whose
        job has already left the queue's jurisdiction (running or
        terminal) would double-count it in the ``depth``/capacity
        accounting.
        """
        with self._cond:
            for lane in self._lanes.values():
                for _, _, job in lane.heap:
                    if job.job_id == job_id and job.job_id not in lane.cancelled:
                        if job.state is JobState.QUEUED:
                            lane.cancelled.add(job_id)
                            self._size -= 1
                            return True
                        return False
            return False

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """JSON-able queue accounting for the metrics snapshot.

        The flat keys keep the pre-tenancy shape; ``tenants`` adds one
        row per lane (queued depth, running occupancy, jobs served,
        fair-share weight).
        """
        with self._cond:
            tenants = {}
            for tenant, lane in self._lanes.items():
                if not lane.heap and not lane.running and not lane.served:
                    continue
                tenants[tenant] = {
                    "depth": lane.depth,
                    "running": lane.running,
                    "served": lane.served,
                    "weight": self._weight(tenant),
                }
            return {
                "depth": self._size,
                "capacity": self.capacity,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "peak_depth": self.peak_depth,
                "tenants": tenants,
            }
