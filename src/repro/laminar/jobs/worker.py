"""The thread worker pool that enacts queued jobs.

Each worker pulls jobs off the shared :class:`~repro.laminar.jobs.queue.
JobQueue` and drives them through the execution engine's streaming API.
The stream is drained on a side thread so the worker itself can poll the
job's cancellation event and wall-clock deadline at a fixed cadence —
cancellation and timeout fire promptly even for workflows that never
print a line.

Failure handling per attempt:

* transient errors (see :data:`~repro.laminar.jobs.model.
  TRANSIENT_MARKERS`) are retried with exponential backoff while
  ``max_retries`` allows, requeueing through the ``RUNNING → QUEUED``
  edge of the state machine;
* a deadline overrun, an engine inactivity ``TimeoutError`` or a dynamic
  :class:`~repro.d4py.mappings.dynamic.DrainTimeout` lands the job in
  ``TIMED_OUT`` (never ``FAILED`` — a wedged run is not a wrong run);
* anything else is terminal ``FAILED`` with the engine's traceback.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.laminar.execution.engine import ExecutionEngine
from repro.laminar.jobs.model import (
    Job,
    JobState,
    is_transient_error,
)
from repro.laminar.jobs.queue import JobQueue
from repro.obs.events import format_event

__all__ = ["WorkerPool"]

#: Seconds between cancellation/deadline checks while a job streams.
_POLL_INTERVAL = 0.02
#: Engine inactivity timeout applied when the job declares none.
_DEFAULT_INACTIVITY = 300.0

#: Error-text markers classified as a timeout rather than a failure.
_TIMEOUT_MARKERS = ("DrainTimeout", "TimeoutError")


class WorkerPool:
    """An elastic-enough pool of job-worker threads."""

    def __init__(
        self,
        queue: JobQueue,
        store,
        engine: ExecutionEngine | None = None,
        size: int = 2,
        on_terminal: Callable[[Job], None] | None = None,
        registry=None,
        tracer=None,
    ) -> None:
        if size < 1:
            raise ValueError("worker pool size must be >= 1")
        self.queue = queue
        self.store = store
        self.engine = engine or ExecutionEngine()
        self.size = size
        self.on_terminal = on_terminal
        self.tracer = tracer
        self._retried = (
            registry.counter(
                "laminar_jobs_retried_total",
                "Transient-failure retries performed by job workers.",
            )
            if registry is not None
            else None
        )
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._busy = 0
        self._busy_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return self
        for i in range(self.size):
            thread = threading.Thread(
                target=self._loop, name=f"laminar-job-worker-{i}", daemon=True
            )
            self._threads.append(thread)
            thread.start()
        return self

    def shutdown(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop pulling new jobs; optionally join the workers."""
        self._stop.set()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
        self._threads.clear()

    @property
    def busy(self) -> int:
        """Workers currently enacting a job."""
        with self._busy_lock:
            return self._busy

    # -- the worker loop -----------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.get(timeout=0.05)
            if job is None:
                continue
            with self._busy_lock:
                self._busy += 1
            try:
                self._run_job(job)
            finally:
                # Release the tenant's running slot acquired at get() —
                # the fair-share queue gates dequeues on this count.
                self.queue.task_done(job)
                with self._busy_lock:
                    self._busy -= 1

    def _finish(
        self,
        job: Job,
        state: JobState,
        error: str | None = None,
        attempt_spans: tuple = (),
    ) -> None:
        if not job.try_transition(state):
            return  # lost a race (e.g. concurrent cancel already landed)
        if error is not None:
            job.error = error
        self.store.save(job)
        if self.tracer is not None:
            self._record_job_trace(job, attempt_spans)
        if self.on_terminal is not None:
            self.on_terminal(job)

    def _record_job_trace(self, job: Job, attempt_spans: tuple) -> None:
        """Emit the job's lifecycle span tree: queued → attempts → done.

        Recorded retroactively at the terminal transition, from the
        wall-clock intervals the job record already tracks — no span
        bookkeeping on the hot path while the job runs.
        """
        finished = job.finished_at or time.time()
        root = self.tracer.record(
            f"job:{job.job_id}",
            job.submitted_at,
            max(0.0, finished - job.submitted_at),
            status="ok" if job.state is JobState.SUCCEEDED else "error",
            job_id=job.job_id,
            state=job.state.value,
            workflow=job.spec.workflow_name,
            mapping=job.spec.mapping,
            attempts=job.attempts,
        )
        self.tracer.record(
            "queued",
            job.submitted_at,
            job.queue_seconds,
            parent=root,
            job_id=job.job_id,
        )
        if job.started_at is not None:
            self.tracer.record(
                "running",
                job.started_at,
                job.run_seconds,
                parent=root,
                job_id=job.job_id,
            )
        for attempt, started, duration, verdict in attempt_spans:
            self.tracer.record(
                f"attempt:{attempt}",
                started,
                duration,
                parent=root,
                status="ok" if verdict == "success" else verdict,
                job_id=job.job_id,
                attempt=attempt,
            )

    def _run_job(self, job: Job) -> None:
        """Drive one job to a terminal state, retrying transient failures."""
        if job.cancel_event.is_set():
            self._finish(job, JobState.CANCELLED, "cancelled while queued")
            return
        if not job.try_transition(JobState.RUNNING):
            return  # cancelled in the instant between get() and here
        self.store.save(job)
        deadline = (
            None
            if job.spec.timeout is None
            else time.monotonic() + job.spec.timeout
        )

        attempt_spans: list[tuple] = []
        while True:
            if self._stop.is_set():
                self._finish(
                    job,
                    JobState.CANCELLED,
                    "worker pool shut down",
                    attempt_spans=tuple(attempt_spans),
                )
                return
            job.attempts += 1
            attempt_started = time.time()
            attempt_perf = time.perf_counter()
            verdict, error = self._execute_once(job, deadline)
            attempt_spans.append(
                (
                    job.attempts,
                    attempt_started,
                    time.perf_counter() - attempt_perf,
                    verdict,
                )
            )
            spans = tuple(attempt_spans)
            if verdict == "success":
                self._finish(job, JobState.SUCCEEDED, attempt_spans=spans)
                return
            if verdict == "cancelled":
                self._finish(
                    job,
                    JobState.CANCELLED,
                    error or "cancelled mid-run",
                    attempt_spans=spans,
                )
                return
            if verdict == "timeout":
                self._finish(
                    job,
                    JobState.TIMED_OUT,
                    error or f"job exceeded its {job.spec.timeout}s timeout",
                    attempt_spans=spans,
                )
                return
            # verdict == "error": retry transient failures while allowed.
            if (
                is_transient_error(error)
                and job.attempts <= job.spec.max_retries
                and not job.cancel_event.is_set()
            ):
                backoff = job.spec.retry_backoff * (2 ** (job.attempts - 1))
                if deadline is not None and time.monotonic() + backoff > deadline:
                    self._finish(job, JobState.TIMED_OUT, error, attempt_spans=spans)
                    return
                # Structured so every retry record carries the job id and
                # attempt number (log aggregation can group on them).
                job.append_log(
                    format_event(
                        "retry",
                        job_id=job.job_id,
                        attempt=job.attempts,
                        max_retries=job.spec.max_retries,
                        backoff=round(backoff, 6),
                        error=error.strip().splitlines()[-1] if error else "",
                    )
                )
                if self._retried is not None:
                    self._retried.inc()
                # Requeue edge keeps the wait/run accounting honest, but the
                # retry stays on this worker: backoff then run again.
                job.transition(JobState.QUEUED)
                self.store.save(job)
                if job.cancel_event.wait(backoff):
                    self._finish(
                        job,
                        JobState.CANCELLED,
                        "cancelled during backoff",
                        attempt_spans=spans,
                    )
                    return
                if not job.try_transition(JobState.RUNNING):
                    return
                self.store.save(job)
                continue
            self._finish(
                job,
                JobState.FAILED,
                error or "workflow failed",
                attempt_spans=spans,
            )
            return

    # -- one attempt ---------------------------------------------------------

    def _execute_once(
        self, job: Job, deadline: float | None
    ) -> tuple[str, str | None]:
        """Run one attempt; returns ``(verdict, error)``.

        Verdicts: ``success`` | ``error`` | ``timeout`` | ``cancelled``.
        """
        spec = job.spec
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            return "timeout", None
        inactivity = min(
            _DEFAULT_INACTIVITY, remaining if remaining is not None else float("inf")
        )
        options = dict(spec.options)
        if spec.mapping == "dynamic" and remaining is not None:
            # Let a wedged dynamic run surface DrainTimeout inside the job
            # window instead of the engine's much larger default.
            options.setdefault("drain_timeout", max(remaining, 0.05))
        stream, outcome = self.engine.execute_streaming(
            spec.workflow_code,
            input=spec.input,
            mapping=spec.mapping,
            graph_name=spec.entry_point or None,
            inactivity_timeout=inactivity,
            **options,
        )

        drained = threading.Event()
        abandon = threading.Event()

        def drain() -> None:
            try:
                for line in stream:
                    if abandon.is_set():
                        break
                    job.append_log(line)
            finally:
                if abandon.is_set():
                    stream.close()
                drained.set()

        drainer = threading.Thread(
            target=drain, name=f"laminar-job-{job.job_id}-drain", daemon=True
        )
        drainer.start()

        while not drained.wait(_POLL_INTERVAL):
            if job.cancel_event.is_set():
                abandon.set()
                return "cancelled", None
            if self._stop.is_set():
                # Pool shutdown: abandon the enactment so workers join
                # promptly instead of riding out arbitrarily long runs.
                abandon.set()
                return "cancelled", "worker pool shut down"
            if deadline is not None and time.monotonic() > deadline:
                abandon.set()
                return "timeout", None

        if outcome.status == "success":
            job.result = outcome.to_public()
            return "success", None
        error = outcome.error or "workflow failed without a traceback"
        if any(marker in error for marker in _TIMEOUT_MARKERS):
            return "timeout", error
        return "error", error
