"""Job stores: where submitted jobs live and are looked up.

The runtime source of truth is always the in-memory map — live jobs hold
non-serialisable state (the cancellation event, locks) and workers mutate
them in place.  :class:`DatabaseJobStore` additionally mirrors every job
into the registry database's ``Job`` table (via the server's
``JobRepository``), so submissions survive in the relational registry
alongside ``Execution`` rows for audit and history queries.
"""

from __future__ import annotations

import threading

from repro.laminar.jobs.model import Job, JobSpec, JobState, UnknownJob

__all__ = ["InMemoryJobStore", "DatabaseJobStore"]


class InMemoryJobStore:
    """Dictionary-backed job store (tests and embedded managers)."""

    def __init__(self) -> None:
        self._jobs: dict[int, Job] = {}
        self._lock = threading.Lock()
        self._next_id = 1

    def create(self, spec: JobSpec) -> Job:
        """Allocate an id and record a new QUEUED job."""
        with self._lock:
            job = Job(job_id=self._next_id, spec=spec)
            self._next_id += 1
            self._jobs[job.job_id] = job
        return job

    def get(self, job_id: int) -> Job:
        """Fetch a job by id; raises :class:`UnknownJob` when absent."""
        with self._lock:
            job = self._jobs.get(int(job_id))
        if job is None:
            raise UnknownJob(f"no job {job_id}")
        return job

    def discard(self, job: Job) -> None:
        """Forget a job whose admission was rejected (never ran)."""
        with self._lock:
            self._jobs.pop(job.job_id, None)

    def save(self, job: Job) -> None:
        """Persist a lifecycle change (no-op: jobs mutate in place)."""

    def list(
        self,
        state: JobState | str | None = None,
        limit: int | None = None,
        user_id: int | None = None,
    ) -> list[Job]:
        """Jobs newest-first, optionally filtered by state and owner."""
        wanted = JobState(state) if state is not None else None
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: -j.job_id)
        if wanted is not None:
            jobs = [job for job in jobs if job.state is wanted]
        if user_id is not None:
            jobs = [job for job in jobs if job.spec.user_id == user_id]
        return jobs[:limit] if limit else jobs

    def counts(self) -> dict[str, int]:
        """Job counts per state (for the metrics snapshot)."""
        with self._lock:
            jobs = list(self._jobs.values())
        out: dict[str, int] = {}
        for job in jobs:
            out[job.state.value] = out.get(job.state.value, 0) + 1
        return out


class DatabaseJobStore(InMemoryJobStore):
    """In-memory store mirrored into the registry's ``Job`` table.

    ``repository`` is a ``JobRepository``
    (:mod:`repro.laminar.server.dataaccess`); it owns the SQL.  Ids are
    allocated by the database so job ids line up with the ``Job`` rows.
    """

    def __init__(self, repository) -> None:
        super().__init__()
        self.repository = repository

    def create(self, spec: JobSpec) -> Job:
        record = self.repository.create(spec)
        job = Job(job_id=record.jobId, spec=spec)
        with self._lock:
            self._jobs[job.job_id] = job
        return job

    def discard(self, job: Job) -> None:
        super().discard(job)
        self.repository.delete(job.job_id)

    def save(self, job: Job) -> None:
        self.repository.update(job)
