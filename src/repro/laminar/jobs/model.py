"""Job records and the job state machine.

A *job* is one asynchronous workflow run: the submit parameters frozen
into a :class:`JobSpec`, plus the mutable lifecycle a :class:`Job` tracks
through the state machine::

    QUEUED ──► RUNNING ──► SUCCEEDED
       │          │  ▲ ──► FAILED
       │          │  │ ──► TIMED_OUT
       ▼          ▼  │(retry)
    CANCELLED ◄───┴──┘

``RUNNING → QUEUED`` is the retry edge: a transient failure requeues the
attempt (with backoff) until ``max_retries`` is exhausted.  All state
mutation goes through :meth:`Job.transition` / :meth:`Job.try_transition`
under the job's lock, so workers, the manager and cancellation requests
can race safely.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = [
    "JobState",
    "JobSpec",
    "Job",
    "JobError",
    "InvalidTransition",
    "UnknownJob",
    "TERMINAL_STATES",
    "is_transient_error",
]


class JobError(Exception):
    """Base class for job-subsystem failures."""


class InvalidTransition(JobError):
    """A state change the state machine forbids (e.g. cancel a finished job)."""


class UnknownJob(JobError):
    """A job id that does not exist in the store."""


class JobState(str, Enum):
    """Lifecycle states of an asynchronous workflow run."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMED_OUT = "TIMED_OUT"


#: States from which no further transition is possible.
TERMINAL_STATES = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT}
)

#: Legal state-machine edges (RUNNING → QUEUED is the retry requeue).
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {
            JobState.SUCCEEDED,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMED_OUT,
            JobState.QUEUED,
        }
    ),
    JobState.SUCCEEDED: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.TIMED_OUT: frozenset(),
}

#: Exception names whose presence in an error marks the failure transient
#: (worth retrying).  Deliberately narrow: logic errors must not retry.
TRANSIENT_MARKERS: tuple[str, ...] = (
    "ConnectionError",
    "ConnectionResetError",
    "BrokenPipeError",
    "TransientError",
    "TemporaryFailure",
)


def is_transient_error(error: str | None) -> bool:
    """Whether an error text names a retryable (transient) failure."""
    if not error:
        return False
    return any(marker in error for marker in TRANSIENT_MARKERS)


@dataclass(frozen=True)
class JobSpec:
    """The immutable submit-time parameters of a job."""

    workflow_code: str
    workflow_name: str = "workflow"
    workflow_id: int | None = None
    entry_point: str | None = None
    user_id: int | None = None
    user_name: str | None = None
    input: Any = 1
    mapping: str = "simple"
    options: dict = field(default_factory=dict)
    priority: int = 0
    timeout: float | None = None
    max_retries: int = 0
    retry_backoff: float = 0.05

    def to_public(self) -> dict:
        """JSON-able submit parameters (code omitted — it can be large)."""
        return {
            "workflowId": self.workflowId,
            "workflowName": self.workflow_name,
            "input": self.input,
            "mapping": self.mapping,
            "priority": self.priority,
            "timeout": self.timeout,
            "maxRetries": self.max_retries,
        }

    @property
    def workflowId(self) -> int | None:
        """Registry id of the workflow this job runs (camelCase alias)."""
        return self.workflow_id

    @property
    def tenant(self) -> str:
        """Fair-share lane key: the owner's user name, or a stable
        fallback so unattributed jobs still share one lane."""
        if self.user_name:
            return self.user_name
        if self.user_id is not None:
            return f"user{self.user_id}"
        return "default"


@dataclass
class Job:
    """One asynchronous workflow run and its mutable lifecycle."""

    job_id: int
    spec: JobSpec
    state: JobState = JobState.QUEUED
    attempts: int = 0
    error: str | None = None
    result: dict | None = None
    logs: list[str] = field(default_factory=list)
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    queue_seconds: float = 0.0
    run_seconds: float = 0.0
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _enqueued_mono: float = field(default_factory=time.monotonic, repr=False)
    _started_mono: float | None = field(default=None, repr=False)

    # -- state machine -------------------------------------------------------

    def try_transition(self, new_state: JobState) -> bool:
        """Attempt one state-machine edge; False when the edge is illegal.

        Atomic under the job lock — the winner of a cancel-vs-start race
        is whichever transition commits first.
        """
        with self._lock:
            if new_state not in _TRANSITIONS[self.state]:
                return False
            now = time.monotonic()
            if new_state is JobState.RUNNING:
                self.started_at = time.time()
                self._started_mono = now
                self.queue_seconds += now - self._enqueued_mono
            elif new_state is JobState.QUEUED:  # retry requeue
                if self._started_mono is not None:
                    self.run_seconds += now - self._started_mono
                self._enqueued_mono = now
            elif new_state in TERMINAL_STATES:
                self.finished_at = time.time()
                if self._started_mono is not None:
                    self.run_seconds += now - self._started_mono
                    self._started_mono = None
            self.state = new_state
            return True

    def transition(self, new_state: JobState) -> None:
        """One state-machine edge; raises :class:`InvalidTransition`."""
        if not self.try_transition(new_state):
            raise InvalidTransition(
                f"job {self.job_id}: illegal transition {self.state.value} "
                f"→ {new_state.value}"
            )

    @property
    def terminal(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self.state in TERMINAL_STATES

    @property
    def retries(self) -> int:
        """Retry count: attempts beyond the first."""
        return max(0, self.attempts - 1)

    def append_log(self, line: str) -> None:
        """Record one output line (thread-safe)."""
        with self._lock:
            self.logs.append(line)

    def log_snapshot(self) -> list[str]:
        """Copy of the log lines captured so far."""
        with self._lock:
            return list(self.logs)

    # -- presentation --------------------------------------------------------

    def to_public(self, include_result: bool = False) -> dict:
        """Client-facing dict (the ``job_status`` body)."""
        with self._lock:
            public = {
                "jobId": self.job_id,
                "state": self.state.value,
                "workflowId": self.spec.workflow_id,
                "workflowName": self.spec.workflow_name,
                "tenant": self.spec.tenant,
                "mapping": self.spec.mapping,
                "priority": self.spec.priority,
                "timeout": self.spec.timeout,
                "maxRetries": self.spec.max_retries,
                "attempts": self.attempts,
                "retries": max(0, self.attempts - 1),
                "error": self.error,
                "submittedAt": self.submitted_at,
                "startedAt": self.started_at,
                "finishedAt": self.finished_at,
                "queueSeconds": round(self.queue_seconds, 6),
                "runSeconds": round(self.run_seconds, 6),
            }
            if include_result:
                public["result"] = self.result
            return public
