"""The :class:`JobManager` façade: submit → poll → result.

Ties the queue, store and worker pool together behind the small API the
server's ``JobService`` (and the client verbs) use:

* :meth:`~JobManager.submit` — admission-controlled enqueue;
* :meth:`~JobManager.status` / :meth:`~JobManager.result` /
  :meth:`~JobManager.logs` — polling;
* :meth:`~JobManager.cancel` — cooperative cancellation of queued *or*
  running jobs;
* :meth:`~JobManager.list_jobs` / :meth:`~JobManager.stats` —
  observability;
* :meth:`~JobManager.join` / :meth:`~JobManager.shutdown` — lifecycle.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable

from repro.laminar.execution.engine import ExecutionEngine
from repro.laminar.jobs.model import (
    InvalidTransition,
    Job,
    JobSpec,
    JobState,
)
from repro.laminar.jobs.queue import JobQueue, QueueFull
from repro.laminar.jobs.store import InMemoryJobStore
from repro.laminar.jobs.worker import WorkerPool

__all__ = ["JobManager"]


class JobManager:
    """Queued, supervised workflow execution over a worker pool."""

    def __init__(
        self,
        engine: ExecutionEngine | None = None,
        store=None,
        workers: int = 2,
        queue_capacity: int = 64,
        default_timeout: float | None = None,
        on_terminal: Callable[[Job], None] | None = None,
        start: bool = True,
        registry=None,
        tracer=None,
        quotas=None,
    ) -> None:
        """``registry``/``tracer`` are optional observability sinks: live
        queue/worker gauges, per-state duration histograms and a retry
        counter land in ``registry``; job lifecycle span trees
        (queued → attempts → terminal) land in ``tracer``.  ``quotas`` is
        an optional :class:`~repro.laminar.tenancy.QuotaConfig` enforced
        at admission (queued cap) and dequeue (running cap, weights)."""
        self.store = store if store is not None else InMemoryJobStore()
        self.quotas = quotas
        self.queue = JobQueue(capacity=queue_capacity, quotas=quotas)
        self.default_timeout = default_timeout
        self._user_on_terminal = on_terminal
        self.registry = registry
        self.pool = WorkerPool(
            self.queue,
            self.store,
            engine=engine,
            size=workers,
            on_terminal=self._terminal_hook,
            registry=registry,
            tracer=tracer,
        )
        # Terminal-state accounting lives here so stats() survive store swaps.
        self._terminal_counts: dict[str, int] = {}
        self._wait_seconds = 0.0
        self._run_seconds = 0.0
        self._retries = 0
        # Per-tenant terminal accounting: {tenant: [finished, wait_s, run_s]}.
        self._tenant_totals: dict[str, list[float]] = {}
        self._state_seconds = None
        if registry is not None:
            registry.gauge(
                "laminar_jobs_queue_depth",
                "Jobs currently waiting in the job queue.",
            ).set_function(lambda: self.queue.depth)
            registry.gauge(
                "laminar_jobs_workers_busy",
                "Job workers currently enacting a job.",
            ).set_function(lambda: self.pool.busy)
            registry.gauge(
                "laminar_jobs_queue_rejected",
                "Submissions rejected by queue admission control so far.",
            ).set_function(lambda: self.queue.rejected)
            self._state_seconds = registry.histogram(
                "laminar_job_state_seconds",
                "Seconds finished jobs spent per lifecycle state.",
                ("state",),
            )
        if start:
            self.pool.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "JobManager":
        """Start the worker pool (when constructed with ``start=False``)."""
        self.pool.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; queued jobs stay QUEUED in the store."""
        self.pool.shutdown(wait=wait)

    def _terminal_hook(self, job: Job) -> None:
        state = job.state.value
        self._terminal_counts[state] = self._terminal_counts.get(state, 0) + 1
        self._wait_seconds += job.queue_seconds
        self._run_seconds += job.run_seconds
        self._retries += job.retries
        totals = self._tenant_totals.setdefault(job.spec.tenant, [0, 0.0, 0.0])
        totals[0] += 1
        totals[1] += job.queue_seconds
        totals[2] += job.run_seconds
        if self._state_seconds is not None:
            self._state_seconds.labels("queued").observe(job.queue_seconds)
            self._state_seconds.labels("running").observe(job.run_seconds)
        if self._user_on_terminal is not None:
            self._user_on_terminal(job)

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job; raises :class:`QueueFull` past the queue bound
        or past the submitting tenant's queued-job quota."""
        if spec.timeout is None and self.default_timeout is not None:
            spec = dataclasses.replace(spec, timeout=self.default_timeout)
        if self.queue.depth >= self.queue.capacity:
            self.queue.rejected += 1
            raise QueueFull(self.queue.capacity)
        if self.quotas is not None:
            tenant = spec.tenant
            cap = self.quotas.for_tenant(tenant).max_queued_jobs
            if cap is not None and self.queue.depth_of(tenant) >= cap:
                self.queue.rejected += 1
                raise QueueFull(cap, tenant=tenant)
        job = self.store.create(spec)
        try:
            self.queue.put(job)
        except QueueFull:
            # Lost an admission race: roll the record back and reject.
            self.store.discard(job)
            raise
        self.store.save(job)
        return job

    # -- polling -------------------------------------------------------------

    def get(self, job_id: int) -> Job:
        """The live job record; raises :class:`UnknownJob` when absent."""
        return self.store.get(job_id)

    def status(self, job_id: int) -> dict:
        """Client-facing status dict for one job."""
        return self.get(job_id).to_public()

    def result(self, job_id: int) -> dict:
        """Status plus the execution outcome (``result`` key).

        Callers decide how to treat non-terminal jobs; the service layer
        turns them into a 409 so clients poll ``status`` first.
        """
        return self.get(job_id).to_public(include_result=True)

    def logs(self, job_id: int) -> list[str]:
        """Output lines captured so far (streams fill this live)."""
        return self.get(job_id).log_snapshot()

    def wait(self, job_id: int, timeout: float = 60.0, interval: float = 0.02) -> Job:
        """Block until the job is terminal; raises ``TimeoutError`` if not."""
        deadline = time.monotonic() + timeout
        job = self.get(job_id)
        while not job.terminal:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.state.value} after {timeout}s"
                )
            time.sleep(interval)
        return job

    # -- cancellation --------------------------------------------------------

    def cancel(self, job_id: int) -> Job:
        """Request cancellation; raises :class:`InvalidTransition` if final.

        The terminal transition lands immediately (QUEUED and RUNNING
        both permit CANCELLED); the cancellation event additionally makes
        the worker abandon a running enactment at its next poll tick.
        """
        job = self.get(job_id)
        if job.terminal:
            raise InvalidTransition(
                f"job {job_id} already finished ({job.state.value})"
            )
        job.cancel_event.set()
        # Discard from the queue while the job is still QUEUED — discard
        # rejects jobs in any other state, so the terminal transition
        # must land after the lazy heap drop, not before.
        self.queue.discard(job.job_id)  # no-op when it was running
        if job.try_transition(JobState.CANCELLED):
            job.error = "cancelled by request"
            self.store.save(job)
            self._terminal_hook(job)
        return job

    # -- observability -------------------------------------------------------

    def list_jobs(
        self,
        state: JobState | str | None = None,
        limit: int | None = 50,
        user_id: int | None = None,
    ) -> list[dict]:
        """Newest-first job summaries, optionally filtered by state and
        owner (``user_id`` scopes the listing to one tenant's jobs)."""
        return [
            job.to_public()
            for job in self.store.list(state=state, limit=limit, user_id=user_id)
        ]

    def stats(self) -> dict:
        """Queue/worker/terminal accounting for the ``stats`` action."""
        terminal_total = sum(self._terminal_counts.values())
        tenants = {
            tenant: {
                "finished": int(finished),
                "mean_wait_ms": round(1e3 * wait / finished, 3) if finished else 0.0,
                "mean_run_ms": round(1e3 * run / finished, 3) if finished else 0.0,
            }
            for tenant, (finished, wait, run) in sorted(self._tenant_totals.items())
        }
        return {
            "tenants": tenants,
            "queue": self.queue.stats(),
            "workers": {"size": self.pool.size, "busy": self.pool.busy},
            "states": self.store.counts(),
            "completed": dict(sorted(self._terminal_counts.items())),
            "retries": self._retries,
            "mean_wait_ms": round(
                1e3 * self._wait_seconds / terminal_total, 3
            )
            if terminal_total
            else 0.0,
            "mean_run_ms": round(1e3 * self._run_seconds / terminal_total, 3)
            if terminal_total
            else 0.0,
        }
