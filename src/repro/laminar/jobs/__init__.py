"""Asynchronous job execution: queued workflow runs with lifecycle control.

The synchronous ``run`` action occupies a connection for the whole
enactment; this package decouples submission from enactment the way
serverless DAG engines (Wukong; PaPy's worker pools) do:

* :mod:`~repro.laminar.jobs.model` — the job record and its state machine
  (``QUEUED → RUNNING → SUCCEEDED | FAILED | CANCELLED | TIMED_OUT``);
* :mod:`~repro.laminar.jobs.queue` — a bounded priority queue with
  admission control (submits beyond the bound are rejected — backpressure);
* :mod:`~repro.laminar.jobs.store` — job persistence (in-memory, or
  mirrored into the registry database's ``Job`` table);
* :mod:`~repro.laminar.jobs.worker` — the thread worker pool driving the
  execution engine, with per-job timeouts, bounded retries with
  exponential backoff, and cooperative cancellation;
* :mod:`~repro.laminar.jobs.manager` — :class:`JobManager`, the façade
  the server's ``JobService`` (and tests) talk to.
"""

from repro.laminar.jobs.manager import JobManager
from repro.laminar.jobs.model import (
    TERMINAL_STATES,
    InvalidTransition,
    Job,
    JobError,
    JobSpec,
    JobState,
    UnknownJob,
)
from repro.laminar.jobs.queue import JobQueue, QueueFull
from repro.laminar.jobs.store import DatabaseJobStore, InMemoryJobStore
from repro.laminar.jobs.worker import WorkerPool

__all__ = [
    "DatabaseJobStore",
    "InMemoryJobStore",
    "InvalidTransition",
    "Job",
    "JobError",
    "JobManager",
    "JobQueue",
    "JobSpec",
    "JobState",
    "QueueFull",
    "TERMINAL_STATES",
    "UnknownJob",
    "WorkerPool",
]
