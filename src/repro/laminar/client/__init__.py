"""Laminar client: the Table I API (:mod:`client`), execution-mode enum
(:mod:`process`) and the Fig 5 command-line interface (:mod:`cli`)."""

from repro.laminar.client.client import LaminarClient, RunSummary
from repro.laminar.client.process import Process

__all__ = ["LaminarClient", "Process", "RunSummary"]
