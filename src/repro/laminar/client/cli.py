"""The Laminar CLI (paper Fig 5): an interactive shell over the client.

Implements every documented command of the paper's ``help`` screen::

    code_recommendation   quit                 run
    describe              register_pe          semantic_search
    help                  register_workflow    update_pe_description
    list                  remove_all           update_workflow_description
    literal_search        remove_pe
                          remove_workflow

Run options mirror Fig 5b: ``run <identifier> [-i input] [--multi]
[--dynamic] [-n procs] [-v] [--rawinput]``.

Beyond the paper's screen, the shell grows asynchronous job commands —
``submit`` (queue a run and return immediately), ``status``, ``result``,
``cancel`` and ``jobs`` — plus observability: ``stats`` (summary or
``--prom`` Prometheus exposition) and ``trace`` (span trees or a
``--chrome`` trace file), and ``run --trace`` to capture one run's tree.
"""

from __future__ import annotations

import argparse
import ast
import cmd
import shlex
import sys

from repro.laminar.client.client import ClientError, LaminarClient
from repro.laminar.client.process import Process

__all__ = ["LaminarCLI", "main"]


def _fmt_table(rows: list[dict], columns: list[str]) -> str:
    """Minimal fixed-width table rendering for search results."""
    if not rows:
        return "(no results)"
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))[:48]) for r in rows)) for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, ""))[:48].ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


class LaminarCLI(cmd.Cmd):
    """Interactive shell; each ``do_*`` mirrors a paper command."""

    intro = "Welcome to the Laminar CLI"
    prompt = "(laminar) "

    def __init__(self, client: LaminarClient | None = None, stdout=None) -> None:
        super().__init__(stdout=stdout)
        self.client = client or LaminarClient()

    # -- plumbing ------------------------------------------------------------

    def _p(self, text: str = "") -> None:
        print(text, file=self.stdout or sys.stdout)

    def onecmd(self, line: str) -> bool:
        """Dispatch one command, printing client errors instead of raising."""
        try:
            return super().onecmd(line)
        except ClientError as exc:
            self._p(f"error: {exc}")
            return False
        except (FileNotFoundError, ValueError) as exc:
            self._p(f"error: {exc}")
            return False

    # -- registration -----------------------------------------------------------

    def do_register_pe(self, arg: str) -> None:
        """register_pe <file.py> — register the PE class(es) in a file."""
        path = arg.strip()
        if not path:
            self._p("usage: register_pe <file.py>")
            return
        code = open(path).read()
        body = self.client.register_PE(code)
        self._p(f"• {body['peName']} - type (ID {body['peId']})")

    def do_register_workflow(self, arg: str) -> None:
        """register_workflow <file.py> — register a workflow and its PEs."""
        path = arg.strip()
        if not path:
            self._p("usage: register_workflow <file.py>")
            return
        body = self.client.register_Workflow(path)
        self._p("Found PEs...")
        for pe in body["pes"]:
            self._p(f"• {pe['peName']} - type (ID {pe['peId']})")
        wf = body["workflow"]
        self._p("Found workflows...")
        self._p(f"• {wf['workflowName']} - Workflow (ID {wf['workflowId']})")

    # -- listing / describing ------------------------------------------------------

    def do_list(self, arg: str) -> None:
        """list — show every PE and workflow in the registry."""
        body = self.client.get_Registry()
        self._p("Processing elements:")
        for pe in body["pes"]:
            self._p(f"• {pe['peName']} (ID {pe['peId']})")
        self._p("Workflows:")
        for wf in body["workflows"]:
            self._p(f"• {wf['workflowName']} (ID {wf['workflowId']})")

    def do_describe(self, arg: str) -> None:
        """describe [pe|workflow] <id-or-name> — description and source."""
        parts = shlex.split(arg)
        if len(parts) == 1:
            kind, ident = "pe", parts[0]
        elif len(parts) == 2:
            kind, ident = parts
        else:
            self._p("usage: describe [pe|workflow] <id>")
            return
        body = self.client.describe(ident, kind=kind)
        name = body.get("peName") or body.get("workflowName")
        self._p(f"{name}: {body.get('description', '')}")
        code = body.get("peCode") or body.get("workflowCode") or ""
        self._p(code)

    # -- searches --------------------------------------------------------------------

    def do_literal_search(self, arg: str) -> None:
        """literal_search [workflow|pe|all] <term> — match names/descriptions."""
        parts = shlex.split(arg)
        if not parts:
            self._p("usage: literal_search [workflow|pe|all] <term>")
            return
        kind = "all"
        if parts[0] in ("workflow", "pe", "all"):
            kind, parts = parts[0], parts[1:]
        term = " ".join(parts)
        body = self.client.search_Registry_Literal(term, kind=kind)
        for pe in body.get("pes", []):
            self._p(f"PE  {pe['peId']:>4}  {pe['peName']}  {pe['description'][:60]}")
        for wf in body.get("workflows", []):
            self._p(
                f"WF  {wf['workflowId']:>4}  {wf['workflowName']}  "
                f"{wf['description'][:60]}"
            )

    def do_semantic_search(self, arg: str) -> None:
        """semantic_search [workflow|pe] <search_term> — embedding search."""
        parts = shlex.split(arg)
        if not parts:
            self._p("usage: semantic_search [workflow|pe] <search_term>")
            return
        kind = "pe"
        if parts[0] in ("workflow", "pe"):
            kind, parts = parts[0], parts[1:]
        query = " ".join(parts)
        self._p(f"Performing semantic search on {kind}, with query type: text")
        results = self.client.search_Registry_Semantic(query, kind=kind)
        id_col = "peId" if kind == "pe" else "workflowId"
        name_col = "peName" if kind == "pe" else "workflowName"
        self._p(
            _fmt_table(results, [id_col, name_col, "description", "cosine_similarity"])
        )

    def do_code_recommendation(self, arg: str) -> None:
        """code_recommendation [workflow|pe] <snippet> [--embedding_type spt|llm]"""
        parts = shlex.split(arg)
        embedding_type = "spt"
        if "--embedding_type" in parts:
            i = parts.index("--embedding_type")
            embedding_type = parts[i + 1] if i + 1 < len(parts) else "spt"
            parts = parts[:i] + parts[i + 2 :]
        if not parts:
            self._p("usage: code_recommendation [workflow|pe] <snippet>")
            return
        kind = "pe"
        if parts[0] in ("workflow", "pe"):
            kind, parts = parts[0], parts[1:]
        snippet = " ".join(parts)
        results = self.client.code_Recommendation(
            snippet, kind=kind, embedding_type=embedding_type
        )
        if kind == "pe":
            self._p(_fmt_table(results, ["peId", "peName", "description", "score"]))
        else:
            self._p(
                _fmt_table(
                    results,
                    ["workflowId", "workflowName", "description", "occurrences"],
                )
            )

    def do_show(self, arg: str) -> None:
        """show <workflow-id-or-name> — render the workflow graph."""
        ident = arg.strip()
        if not ident:
            self._p("usage: show <workflow>")
            return
        body = self.client.visualize_Workflow(ident)
        self._p(body["text"])
        self._p(f"({len(body['pes'])} PEs, {body['edges']} edges)")

    def do_code_completion(self, arg: str) -> None:
        """code_completion <snippet> [--embedding_type spt|llm] — complete
        a partial snippet from the closest registered PEs."""
        parts = shlex.split(arg)
        embedding_type = "spt"
        if "--embedding_type" in parts:
            i = parts.index("--embedding_type")
            embedding_type = parts[i + 1] if i + 1 < len(parts) else "spt"
            parts = parts[:i] + parts[i + 2 :]
        if not parts:
            self._p("usage: code_completion <snippet>")
            return
        snippet = " ".join(parts)
        results = self.client.code_Completion(snippet, embedding_type=embedding_type)
        if not results:
            self._p("(no completions)")
            return
        for hit in results:
            self._p(f"— from {hit['peName']} (score {hit['score']}):")
            for line in hit["completion"].splitlines():
                self._p(f"    {line}")

    # -- updates ------------------------------------------------------------------------

    def do_update_pe_description(self, arg: str) -> None:
        """update_pe_description <id> <new description...>"""
        parts = shlex.split(arg)
        if len(parts) < 2:
            self._p("usage: update_pe_description <id> <description>")
            return
        body = self.client.update_PE_Description(parts[0], " ".join(parts[1:]))
        self._p(f"updated {body['peName']}: {body['description']}")

    def do_update_workflow_description(self, arg: str) -> None:
        """update_workflow_description <id> <new description...>"""
        parts = shlex.split(arg)
        if len(parts) < 2:
            self._p("usage: update_workflow_description <id> <description>")
            return
        body = self.client.update_Workflow_Description(parts[0], " ".join(parts[1:]))
        self._p(f"updated {body['workflowName']}: {body['description']}")

    # -- removal --------------------------------------------------------------------------

    def do_remove_pe(self, arg: str) -> None:
        """remove_pe <id-or-name>"""
        body = self.client.remove_PE(arg.strip())
        self._p(f"removed PE {body['removed']} (ID {body['peId']})")

    def do_remove_workflow(self, arg: str) -> None:
        """remove_workflow <id-or-name>"""
        body = self.client.remove_Workflow(arg.strip())
        self._p(f"removed workflow {body['removed']} (ID {body['workflowId']})")

    def do_remove_all(self, arg: str) -> None:
        """remove_all — delete every registered PE and workflow."""
        body = self.client.remove_All()
        self._p(
            f"removed {body['pes_removed']} PEs and "
            f"{body['workflows_removed']} workflows"
        )

    # -- run ------------------------------------------------------------------------------------

    def do_run(self, arg: str) -> None:
        """run <identifier> [options] — run a registered workflow.

        Options (Fig 5b):
          -i/--input <data>     input for the workflow
          --rawinput            treat input as a raw string
          --multi               parallel run with multiprocessing
          --dynamic             parallel run with the dynamic mapping
          -n <procs>            process count for --multi
          -v/--verbose          verbose output
          --trace               capture and print the run's span tree
        """
        parser = argparse.ArgumentParser(prog="run", add_help=False)
        parser.add_argument("identifier")
        parser.add_argument("-i", "--input", default="1")
        parser.add_argument("--rawinput", action="store_true")
        parser.add_argument("--multi", action="store_true")
        parser.add_argument("--dynamic", action="store_true")
        parser.add_argument("-n", type=int, default=4)
        parser.add_argument("-v", "--verbose", action="store_true")
        parser.add_argument("--trace", action="store_true")
        try:
            ns = parser.parse_args(shlex.split(arg))
        except SystemExit:
            self._p("usage: run <identifier> [-i input] [--multi|--dynamic] [-n N] [-v] [--trace]")
            return

        if ns.rawinput:
            input_value = ns.input
        else:
            try:
                input_value = ast.literal_eval(ns.input)
            except (ValueError, SyntaxError):
                input_value = ns.input

        process = Process.SIMPLE
        options: dict = {}
        if ns.multi:
            process = Process.MULTI
            options["num_processes"] = ns.n
        elif ns.dynamic:
            process = Process.DYNAMIC
        if ns.trace:
            options["trace"] = True

        summary = self.client.run(
            ns.identifier,
            input=input_value,
            process=process,
            verbose=ns.verbose,
            on_line=lambda line: self._p(line),
            **options,
        )
        if not summary.ok:
            self._p(f"run failed: {summary.error}")
            return
        if ns.verbose:
            for log in summary.logs:
                self._p(log)
        if ns.trace and summary.trace:
            for root in summary.trace:
                self._print_span(root)

    # -- asynchronous jobs ----------------------------------------------------------------------

    def do_submit(self, arg: str) -> None:
        """submit <identifier> [options] — queue a workflow run asynchronously.

        Options:
          -i/--input <data>     input for the workflow
          --rawinput            treat input as a raw string
          --multi               parallel run with multiprocessing
          --dynamic             parallel run with the dynamic mapping
          -n <procs>            process count for --multi
          --timeout <seconds>   per-job wall-clock limit
          --retries <count>     retry budget for transient failures
          --priority <int>      higher runs first
          --wait                block until the job finishes
        """
        parser = argparse.ArgumentParser(prog="submit", add_help=False)
        parser.add_argument("identifier")
        parser.add_argument("-i", "--input", default="1")
        parser.add_argument("--rawinput", action="store_true")
        parser.add_argument("--multi", action="store_true")
        parser.add_argument("--dynamic", action="store_true")
        parser.add_argument("-n", type=int, default=4)
        parser.add_argument("--timeout", type=float, default=None)
        parser.add_argument("--retries", type=int, default=0)
        parser.add_argument("--priority", type=int, default=0)
        parser.add_argument("--wait", action="store_true")
        try:
            ns = parser.parse_args(shlex.split(arg))
        except SystemExit:
            self._p(
                "usage: submit <identifier> [-i input] [--multi|--dynamic] "
                "[--timeout S] [--retries N] [--priority P] [--wait]"
            )
            return

        if ns.rawinput:
            input_value = ns.input
        else:
            try:
                input_value = ast.literal_eval(ns.input)
            except (ValueError, SyntaxError):
                input_value = ns.input

        process = Process.SIMPLE
        options: dict = {}
        if ns.multi:
            process = Process.MULTI
            options["num_processes"] = ns.n
        elif ns.dynamic:
            process = Process.DYNAMIC

        body = self.client.submit_Job(
            ns.identifier,
            input=input_value,
            process=process,
            timeout=ns.timeout,
            max_retries=ns.retries,
            priority=ns.priority,
            **options,
        )
        self._p(f"job {body['jobId']} {body['state']} ({body['workflowName']})")
        if ns.wait:
            result = self.client.wait_For_Job(body["jobId"])
            self._print_job_result(result)

    def do_status(self, arg: str) -> None:
        """status <job-id> — current state of a submitted job."""
        ident = arg.strip()
        if not ident:
            self._p("usage: status <job-id>")
            return
        body = self.client.job_Status(int(ident))
        line = f"job {body['jobId']} {body['state']} ({body['workflowName']})"
        if body["attempts"]:
            line += f" attempts={body['attempts']}"
        if body.get("error"):
            line += f" error={body['error'].splitlines()[-1]}"
        self._p(line)

    def do_result(self, arg: str) -> None:
        """result <job-id> — outcome of a finished job (error if still live)."""
        ident = arg.strip()
        if not ident:
            self._p("usage: result <job-id>")
            return
        self._print_job_result(self.client.job_Result(int(ident)))

    def do_cancel(self, arg: str) -> None:
        """cancel <job-id> — cancel a queued or running job."""
        ident = arg.strip()
        if not ident:
            self._p("usage: cancel <job-id>")
            return
        body = self.client.cancel_Job(int(ident))
        self._p(f"job {body['jobId']} {body['state']}")

    def do_jobs(self, arg: str) -> None:
        """jobs [state] — list submitted jobs, optionally by state."""
        state = arg.strip() or None
        rows = self.client.list_Jobs(state=state)
        if not rows:
            self._p("(no jobs)")
            return
        for job in rows:
            self._p(
                f"{job['jobId']:>4}  {job['state']:<9}  {job['workflowName']:<20}  "
                f"attempts={job['attempts']}  wait={job['queueSeconds']:.3f}s  "
                f"run={job['runSeconds']:.3f}s"
            )

    def _print_job_result(self, body: dict) -> None:
        self._p(f"job {body['jobId']} {body['state']} after {body['attempts']} attempt(s)")
        if body.get("error"):
            self._p(f"error: {body['error'].splitlines()[-1]}")
        outcome = body.get("result") or {}
        for port, values in (outcome.get("outputs") or {}).items():
            self._p(f"{port}: {values}")

    # -- operations -----------------------------------------------------------------------------

    def _print_span(self, node: dict, depth: int = 0) -> None:
        duration = node.get("duration") or 0.0
        self._p(
            f"{'  ' * depth}{node['name']}  {1e3 * duration:.2f} ms  "
            f"[{node.get('status', 'ok')}]"
        )
        for child in node.get("children", []):
            self._print_span(child, depth + 1)

    def do_trace(self, arg: str) -> None:
        """trace [--chrome <file.json>] [--clear] — server-side span trees.

        With no options, prints the nested span trees the server has
        collected (traced runs and finished jobs).  ``--chrome`` writes
        the Chrome trace-format document instead (open it in
        ``about:tracing`` or Perfetto); ``--clear`` drops the server's
        spans after reading.
        """
        parts = shlex.split(arg)
        clear = "--clear" in parts
        if clear:
            parts.remove("--clear")
        if parts and parts[0] == "--chrome":
            out = parts[1] if len(parts) > 1 else "trace.json"
            body = self.client.get_Trace(format="chrome", clear=clear)
            import json as _json

            with open(out, "w") as fh:
                _json.dump(body["trace"], fh)
            self._p(
                f"wrote {len(body['trace']['traceEvents'])} events to {out}"
            )
            return
        body = self.client.get_Trace(clear=clear)
        trees = body.get("trace") or []
        if not trees:
            self._p("(no spans recorded — run or submit with trace)")
            return
        for root in trees:
            self._print_span(root)

    def do_stats(self, arg: str) -> None:
        """stats [--prom] — server metrics.

        Default: the per-action summary.  ``--prom`` prints the raw
        Prometheus text exposition of the server's whole registry.
        """
        if arg.strip() == "--prom":
            self._p(self.client.get_Metrics()["text"].rstrip())
            return
        if not hasattr(self.client, "_call"):  # sharded client: per-shard rows
            merged = self.client.stats()
            for shard_id, body in sorted(merged["shards"].items()):
                jobs = body.get("jobs") or {}
                self._p(
                    f"shard {shard_id}: uptime {body['uptime_seconds']}s, "
                    f"requests {body['total_requests']}, "
                    f"jobs finished {jobs.get('finished') or '{}'}"
                )
            for shard_id in merged.get("degraded", ()):
                self._p(f"shard {shard_id}: unreachable")
            return
        body = self.client._call("stats")
        self._p(f"uptime: {body['uptime_seconds']}s, "
                f"requests: {body['total_requests']}")
        for action, stats in body["by_action"].items():
            self._p(
                f"  {action:<28} {stats['requests']:>5} req  "
                f"{stats['errors']:>3} err  {stats['mean_ms']:>8.2f} ms"
            )
        jobs = body.get("jobs")
        if jobs:
            queue = jobs.get("queue", {})
            workers = jobs.get("workers", {})
            self._p(
                f"jobs: {jobs['finished'] or '{}'} finished, "
                f"{jobs['retries']} retries, "
                f"mean wait {jobs['mean_wait_ms']:.1f} ms, "
                f"mean run {jobs['mean_run_ms']:.1f} ms"
            )
            self._p(
                f"      queue {queue.get('depth', 0)}/{queue.get('capacity', 0)} "
                f"(peak {queue.get('peak_depth', 0)}, "
                f"rejected {queue.get('rejected', 0)}), "
                f"workers {workers.get('busy', 0)}/{workers.get('size', 0)} busy"
            )
        tenants = body.get("tenants")
        if tenants:
            self._p("tenants:")
            for name, row in sorted(tenants.items()):
                self._p(
                    f"  {name:<16} {row['requests']:>5} req  "
                    f"{row['errors']:>3} err  "
                    f"{row['jobs_finished']:>3} jobs  "
                    f"wait {row['mean_wait_ms']:.1f} ms  "
                    f"run {row['mean_run_ms']:.1f} ms"
                )

    def do_index(self, arg: str) -> None:
        """index stats|save [path] — inspect or persist the search indexes.

        ``index stats`` shows per-kind occupancy (items, capacity,
        tombstones, rebuilds) and recent index lifecycle events;
        ``index save [path]`` persists the semantic indexes for a warm
        restart (path defaults to the server's configured index_dir).
        """
        parts = arg.split()
        sub = parts[0] if parts else "stats"
        if sub == "stats":
            body = self.client.index_Stats()
            # a sharded client returns one body per shard
            for prefix, shard_body in sorted(body["shards"].items()) if (
                "shards" in body
            ) else [("", body)]:
                label = f"shard {prefix}: " if prefix else ""
                self._p(
                    f"{label}revision: {shard_body['revision']}, "
                    f"index_dir: {shard_body['index_dir'] or '(not configured)'}"
                )
                for kind, stats in shard_body["kinds"].items():
                    self._p(
                        f"  {kind:<9} {stats['items']:>6} items  "
                        f"cap {stats['capacity']:>6}  "
                        f"tombstones {stats['tombstones']:>4}  "
                        f"rebuilds {stats['rebuilds']:>3}  "
                        f"{'synced' if stats['synced'] else 'stale'}"
                    )
                for event in shard_body.get("events", []):
                    self._p(f"  {event}")
            return
        if sub == "save":
            body = self.client.index_Save(parts[1] if len(parts) > 1 else None)
            for prefix, shard_body in sorted(body["shards"].items()) if (
                "shards" in body
            ) else [("", body)]:
                for kind, info in shard_body["saved"].items():
                    self._p(
                        f"{f'shard {prefix}: ' if prefix else ''}saved {kind}: "
                        f"{info['count']} items -> {info['path']}"
                    )
            return
        self._p("usage: index stats | index save [path]")

    def do_export(self, arg: str) -> None:
        """export <file.json> — dump the registry (PEs, workflows, embeddings)."""
        path = arg.strip()
        if not path:
            self._p("usage: export <file.json>")
            return
        import json as _json

        dump = self.client.export_Registry()
        with open(path, "w") as fh:
            _json.dump(dump, fh)
        self._p(
            f"exported {len(dump['pes'])} PEs and "
            f"{len(dump['workflows'])} workflows to {path}"
        )

    def do_import(self, arg: str) -> None:
        """import <file.json> — load a registry dump."""
        path = arg.strip()
        if not path:
            self._p("usage: import <file.json>")
            return
        counts = self.client.import_Registry(open(path).read())
        self._p(f"imported {counts['pes']} PEs and {counts['workflows']} workflows")

    def do_cluster(self, arg: str) -> None:
        """cluster status — shard health, addresses and ring parameters.

        Against a sharded client this probes every shard; against a
        plain client it reports the single server's cluster identity.
        """
        sub = arg.strip() or "status"
        if sub != "status":
            self._p("usage: cluster status")
            return
        if hasattr(self.client, "cluster_Status"):
            body = self.client.cluster_Status()
            self._p(
                f"{body['healthy']}/{body['total']} shards healthy  "
                f"(vnodes {body['vnodes']}, replication {body['replication']})"
            )
            for shard in body["shards"]:
                mark = "up" if shard["healthy"] else "DOWN"
                line = (
                    f"  {shard['shardId']:<6} "
                    f"{shard['host']}:{shard['port']}  {mark}"
                )
                if shard.get("error"):
                    line += f"  ({shard['error']})"
                self._p(line)
            return
        body = self.client.cluster_Info()
        if body.get("shardId") is None:
            self._p("standalone server (no cluster configured)")
            return
        self._p(f"shard {body['shardId']}")
        cluster = body.get("cluster") or {}
        for shard in cluster.get("shards", []):
            self._p(f"  {shard['shardId']:<6} {shard['host']}:{shard['port']}")

    # -- accounts -------------------------------------------------------------------------------

    def do_register(self, arg: str) -> None:
        """register <user> <password> — create an account."""
        parts = shlex.split(arg)
        if len(parts) != 2:
            self._p("usage: register <user> <password>")
            return
        body = self.client.register(parts[0], parts[1])
        self._p(f"registered {body['userName']} (ID {body['userId']})")

    def do_login(self, arg: str) -> None:
        """login <user> <password> — authenticate; later commands carry
        the session token."""
        parts = shlex.split(arg)
        if len(parts) != 2:
            self._p("usage: login <user> <password>")
            return
        body = self.client.login(parts[0], parts[1])
        self._p(f"logged in as {parts[0]}")
        if body.get("expiresIn"):
            self._p(f"session expires in {body['expiresIn']:.0f}s")

    def do_logout(self, arg: str) -> None:
        """logout — revoke the current session token."""
        body = self.client.logout()
        self._p("logged out" if body.get("loggedOut") else "no active session")

    def do_whoami(self, arg: str) -> None:
        """whoami — which account the server sees this session as."""
        body = self.client.whoami()
        self._p(f"{body['userName']} (ID {body['userId']})")

    def do_apikey(self, arg: str) -> None:
        """apikey create [name] | apikey revoke <id> — long-lived credentials.

        ``create`` prints the key once — it is stored hashed server-side
        and cannot be recovered.  Pass it back with ``laminar --api-key``.
        """
        parts = shlex.split(arg)
        sub = parts[0] if parts else ""
        if sub == "create":
            body = self.client.create_Api_Key(" ".join(parts[1:]))
            self._p(f"key {body['keyId']}: {body['apiKey']}")
            self._p("(shown once — store it now)")
            return
        if sub == "revoke" and len(parts) == 2:
            body = self.client.revoke_Api_Key(int(parts[1]))
            self._p(f"revoked key {body['revoked']}")
            return
        self._p("usage: apikey create [name] | apikey revoke <id>")

    # -- session --------------------------------------------------------------------------------

    def do_quit(self, arg: str) -> bool:
        """quit — exit the Laminar CLI."""
        return True

    do_EOF = do_quit

    def emptyline(self) -> bool:
        """A blank line is a no-op (never repeats the last command)."""
        return False


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``laminar`` console script."""
    parser = argparse.ArgumentParser(description="Laminar 2.0 CLI")
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="connect to a running server instead of embedding one",
    )
    parser.add_argument(
        "--cluster",
        metavar="CONFIG|HOST:PORT,...",
        help="talk to a sharded cluster: a cluster-config JSON path, or a "
        "comma-separated seed list of shard addresses (the authoritative "
        "shard map is fetched from the first shard that answers)",
    )
    parser.add_argument(
        "--token",
        help="session token from a previous login (required-auth servers)",
    )
    parser.add_argument(
        "--api-key",
        help="long-lived API key minted with 'apikey create'",
    )
    ns = parser.parse_args(argv)
    if ns.cluster:
        client = _cluster_client(ns.cluster)
    elif ns.connect:
        host, _, port = ns.connect.partition(":")
        client = LaminarClient.connect(host, int(port))
    else:
        client = LaminarClient()
    credential = ns.api_key or ns.token
    if credential:
        client.use_api_key(credential)
    LaminarCLI(client).cmdloop()
    return 0


def _cluster_client(spec: str):
    """Build a :class:`ShardedClient` from ``--cluster``'s argument.

    ``host:port,host:port`` seed lists ask each listed shard for the
    authoritative cluster config (so shard ids and the ring agree with
    the servers); anything else is read as a config JSON path.
    """
    from repro.laminar.cluster import ClusterConfig, ShardedClient, ShardInfo

    if ":" not in spec:
        return ShardedClient(ClusterConfig.load(spec))
    endpoints = []
    for part in spec.split(","):
        host, _, port = part.strip().partition(":")
        endpoints.append((host, int(port)))
    config = None
    for host, port in endpoints:
        try:
            probe = LaminarClient.connect(host, port, timeout=5.0)
            info = probe.cluster_Info()
            probe.close()
        except (OSError, ClientError):
            continue
        if info.get("cluster"):
            config = ClusterConfig.from_dict(info["cluster"])
            break
    if config is None:
        # Standalone servers with no shared config: synthesise ids in
        # list order (routing still works as long as every client uses
        # the same list order).
        config = ClusterConfig(
            shards=[
                ShardInfo(shard_id=f"s{i}", host=host, port=port)
                for i, (host, port) in enumerate(endpoints)
            ]
        )
    return ShardedClient(config)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
