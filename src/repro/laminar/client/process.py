"""Execution-mode enum used by the client's run functions.

Mirrors the paper's Listing 2/3 evolution: Laminar 1.0 required a
``Process.DYNAMIC`` constant plus a dict of Redis parameters; Laminar 2.0
hides all of it behind ``run_dynamic``.  The enum remains for the generic
``run(..., process=...)`` spelling and backward compatibility.
"""

from __future__ import annotations

import enum

__all__ = ["Process"]


class Process(enum.Enum):
    """How a workflow run is enacted."""

    SIMPLE = "simple"
    MULTI = "multi"
    DYNAMIC = "dynamic"

    @property
    def mapping(self) -> str:
        """The d4py mapping name this mode enacts with."""
        return self.value
