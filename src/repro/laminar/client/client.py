"""The Laminar client API — every function of the paper's Table I.

========================  =======================================
Function                  Paper status
========================  =======================================
``register``              registers a new user
``login``                 logs in an existing user
``register_PE``           *new* — registers a new PE
``register_Workflow``     **improved** — registers a new workflow
``get_PE``                retrieves a PE by name or ID
``get_Workflow``          retrieves a workflow by name or ID
``get_PEs_By_Workflow``   all PEs associated with a workflow
``get_Registry``          all items in the registry
``describe``              description (and code) of a PE/workflow
``update_PE_Description`` *new*
``update_Workflow_Description`` *new*
``remove_PE``             removes an existing PE
``remove_Workflow``       removes an existing workflow
``remove_All``            *new* — removes all PEs and workflows
``search_Registry_Literal``   **improved**
``search_Registry_Semantic``  **improved**
``code_Recommendation``   *new*
``run``                   **improved** — sequential execution
``run_multiprocess``      *new* — static parallel execution
``run_dynamic``           *new* — dynamic (work-queue) execution
========================  =======================================

Beyond Table I, this client also exposes ``code_Completion`` (the §I
code-completion capability), ``visualize_Workflow`` (graph renderings),
``export_Registry`` / ``import_Registry`` (portable dumps), and the
asynchronous job verbs ``submit_Job`` / ``job_Status`` / ``job_Result``
/ ``job_Logs`` / ``cancel_Job`` / ``list_Jobs`` / ``wait_For_Job`` for
queued execution with retries, timeouts and cancellation.

The client talks to a server over any transport; by default it embeds a
server in-process (serverless dev mode), or connects over TCP with
:meth:`LaminarClient.connect`.  ``run*`` accept either a registered
workflow's name/ID (remote, streamed execution) or a live
:class:`~repro.d4py.workflow.WorkflowGraph` (local enactment — the
notebook workflow of the paper's client examples).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.d4py.mappings import run_graph
from repro.d4py.workflow import WorkflowGraph
from repro.laminar.client.process import Process
from repro.laminar.execution.resources import file_digest
from repro.laminar.transport.frames import FrameType
from repro.laminar.transport.inprocess import InProcessTransport
from repro.laminar.transport.tcp import TcpClientTransport

__all__ = ["LaminarClient", "RunSummary", "ClientError"]

#: Read-only server actions safe to resend after a connection failure —
#: the TCP transport only reconnect-retries exchanges from this set.
_IDEMPOTENT_ACTIONS = frozenset(
    {
        "ping",
        "whoami",
        "stats",
        "get_pe",
        "get_workflow",
        "get_pes_by_workflow",
        "get_registry",
        "describe",
        "visualize",
        "export_registry",
        "search_literal",
        "search_semantic",
        "code_recommendation",
        "code_completion",
        "job_status",
        "job_result",
        "job_logs",
        "list_jobs",
        "get_metrics",
        "get_trace",
        "check_resources",
        "index_stats",
        "cluster_info",
    }
)


class ClientError(RuntimeError):
    """A server-reported failure, with the response status attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status


@dataclass
class RunSummary:
    """Result of a workflow run."""

    status: str
    lines: list[str] = field(default_factory=list)
    outputs: dict[str, list] = field(default_factory=dict)
    logs: list[str] = field(default_factory=list)
    iterations: dict[str, int] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    execution_id: int | None = None
    error: str | None = None
    #: Nested span trees when the run was requested with ``trace=True``.
    trace: list | None = None

    @property
    def ok(self) -> bool:
        """True when the run finished with status 'success'."""
        return self.status == "success"


class LaminarClient:
    """Client façade over a Laminar server."""

    def __init__(self, server=None, transport=None, api_key: str | None = None) -> None:
        if transport is not None:
            self._transport = transport
        else:
            if server is None:
                from repro.laminar.server.app import LaminarServer

                server = LaminarServer()
            self._transport = InProcessTransport(server)
        # API keys and session tokens travel in the same payload field;
        # the server routes by the key's prefix.
        self._token: str | None = api_key

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float = 60.0,
        idle_deadline: float | None = None,
        retry_policy=None,
        api_key: str | None = None,
    ) -> "LaminarClient":
        """Connect to a remote Laminar server over TCP.

        ``idle_deadline`` bounds mid-exchange silence (server heartbeats
        reset it), so a dead server surfaces as a prompt
        :class:`~repro.laminar.transport.tcp.HeartbeatTimeout` instead of
        an indefinite hang; ``retry_policy`` shapes the bounded
        reconnect-with-backoff applied to idempotent verbs.  An
        ``api_key`` authenticates every call without a login round-trip.
        """
        return cls(
            transport=TcpClientTransport(
                host,
                port,
                timeout=timeout,
                idle_deadline=idle_deadline,
                retry_policy=retry_policy,
            ),
            api_key=api_key,
        )

    def close(self) -> None:
        """Release the underlying transport."""
        self._transport.close()

    # -- plumbing -----------------------------------------------------------

    def _call(self, action: str, **params: Any) -> Any:
        payload = {"action": action, "token": self._token, **params}
        if isinstance(self._transport, TcpClientTransport):
            response = self._transport.request(
                payload, idempotent=action in _IDEMPOTENT_ACTIONS
            )
        else:
            response = self._transport.request(payload)
        status = response.get("status", 500)
        body = response.get("body")
        if status >= 400:
            message = (
                body.get("error", str(body)) if isinstance(body, dict) else str(body)
            )
            raise ClientError(status, message)
        return body

    # -- accounts -------------------------------------------------------------

    def register(self, user_name: str, password: str) -> dict:
        """Register a new user account."""
        return self._call("register_user", userName=user_name, password=password)

    def login(self, user_name: str, password: str) -> dict:
        """Log in; subsequent calls carry the session token."""
        body = self._call("login", userName=user_name, password=password)
        self._token = body["token"]
        return body

    def logout(self) -> dict:
        """Revoke the current session token (idempotent)."""
        body = self._call("logout")
        self._token = None
        return body

    def whoami(self) -> dict:
        """The account the server resolves this client's credential to."""
        return self._call("whoami")

    def use_api_key(self, api_key: str | None) -> None:
        """Authenticate subsequent calls with a long-lived API key
        (``None`` clears the credential)."""
        self._token = api_key

    def create_Api_Key(self, name: str = "") -> dict:
        """Mint an API key for the logged-in user.

        The plaintext key is returned exactly once; the server stores
        only its digest.
        """
        return self._call("create_api_key", name=name)

    def revoke_Api_Key(self, key_id: int) -> dict:
        """Revoke one of the logged-in user's API keys by id."""
        return self._call("revoke_api_key", keyId=key_id)

    # -- registration ------------------------------------------------------------

    def register_PE(
        self, code: str, name: str | None = None, description: str | None = None
    ) -> dict:
        """Register one PE from its class source code."""
        return self._call("register_pe", code=code, name=name, description=description)

    def register_Workflow(
        self,
        source: str | Path,
        name: str | None = None,
        description: str | None = None,
        entry_point: str | None = None,
    ) -> dict:
        """Register a workflow from a ``.py`` file path or source string.

        Every PE class found in the file is registered alongside the
        workflow, as the paper's Fig 5a shows.
        """
        code, default_name = self._load_source(source)
        return self._call(
            "register_workflow",
            code=code,
            name=name or default_name,
            description=description,
            entryPoint=entry_point,
        )

    @staticmethod
    def _load_source(source: str | Path) -> tuple[str, str]:
        if isinstance(source, Path) or (
            isinstance(source, str)
            and source.endswith(".py")
            and "\n" not in source
        ):
            path = Path(source)
            if not path.exists():
                raise FileNotFoundError(path)
            return path.read_text(), path.stem
        return str(source), "workflow"

    # -- retrieval -----------------------------------------------------------------

    def get_PE(self, ident: int | str) -> dict:
        """Retrieve a PE by name or ID."""
        return self._call("get_pe", id=ident)

    def get_Workflow(self, ident: int | str) -> dict:
        """Retrieve a workflow by name or ID."""
        return self._call("get_workflow", id=ident)

    def get_PEs_By_Workflow(self, ident: int | str) -> list[dict]:
        """All PEs associated with a workflow."""
        return self._call("get_pes_by_workflow", id=ident)

    def get_Registry(self) -> dict:
        """Every PE and workflow in the registry."""
        return self._call("get_registry")

    def describe(self, ident: int | str, kind: str = "pe") -> dict:
        """Description plus source code of a PE or workflow."""
        return self._call("describe", id=ident, kind=kind)

    def visualize_Workflow(self, ident: int | str) -> dict:
        """Text and DOT renderings of a registered workflow's graph."""
        return self._call("visualize", id=ident)

    def export_Registry(self) -> dict:
        """Portable JSON dump of every PE and workflow (with embeddings)."""
        return self._call("export_registry")

    def import_Registry(self, dump: dict | str) -> dict:
        """Load a dump produced by :meth:`export_Registry`; returns counts."""
        return self._call("import_registry", dump=dump)

    # -- updates ----------------------------------------------------------------------

    def update_PE_Description(self, ident: int | str, description: str) -> dict:
        """Update a PE's description (re-embedding it for search)."""
        return self._call("update_pe_description", id=ident, description=description)

    def update_Workflow_Description(self, ident: int | str, description: str) -> dict:
        """Update a workflow's description (re-embedding it for search)."""
        return self._call(
            "update_workflow_description", id=ident, description=description
        )

    # -- removal ------------------------------------------------------------------------

    def remove_PE(self, ident: int | str) -> dict:
        """Remove an existing PE by name or ID."""
        return self._call("remove_pe", id=ident)

    def remove_Workflow(self, ident: int | str) -> dict:
        """Remove an existing workflow by name or ID."""
        return self._call("remove_workflow", id=ident)

    def remove_All(self) -> dict:
        """Remove every registered PE and workflow."""
        return self._call("remove_all")

    # -- search ---------------------------------------------------------------------------

    def search_Registry_Literal(self, term: str, kind: str = "all") -> dict:
        """Literal substring search over names and descriptions (Fig 7)."""
        return self._call("search_literal", term=term, kind=kind)

    def search_Registry_Semantic(
        self, query: str, kind: str = "pe", top_k: int = 5
    ) -> list[dict]:
        """Semantic text-to-code search (Fig 8)."""
        return self._call("search_semantic", query=query, kind=kind, topK=top_k)

    def code_Recommendation(
        self,
        snippet: str,
        kind: str = "pe",
        embedding_type: str = "spt",
        top_k: int = 5,
        threshold: float | None = None,
    ) -> list[dict]:
        """Structural (default) or LLM code recommendation (Fig 9)."""
        return self._call(
            "code_recommendation",
            snippet=snippet,
            kind=kind,
            embeddingType=embedding_type,
            topK=top_k,
            threshold=threshold,
        )

    def code_Completion(
        self, snippet: str, embedding_type: str = "spt", top_k: int = 3
    ) -> list[dict]:
        """Complete a partial snippet from the closest registered PEs."""
        return self._call(
            "code_completion",
            snippet=snippet,
            embeddingType=embedding_type,
            topK=top_k,
        )

    # -- search index management -----------------------------------------------

    def index_Stats(self) -> dict:
        """Occupancy/persistence stats of the server's semantic indexes."""
        return self._call("index_stats")

    def index_Save(self, path: str | None = None) -> dict:
        """Persist the semantic indexes for warm restarts.

        ``path`` overrides the server's configured ``index_dir``; with
        neither set the server answers 400.
        """
        return self._call("index_save", path=path)

    def cluster_Info(self) -> dict:
        """The server's cluster identity: its shard id and, when it was
        started with a cluster config, the full shard map."""
        return self._call("cluster_info")

    # -- execution -----------------------------------------------------------------------------

    def run(
        self,
        workflow: int | str | WorkflowGraph,
        input: Any = 1,
        process: Process = Process.SIMPLE,
        verbose: bool = False,
        resources: list[str | Path] | None = None,
        on_line: Callable[[str], None] | None = None,
        **options: Any,
    ) -> RunSummary:
        """Execute a workflow sequentially (or per ``process``).

        Registered workflows (name/ID) run serverlessly with true output
        streaming — ``on_line`` fires per line as it is produced.  A live
        :class:`WorkflowGraph` is enacted locally.
        """
        if isinstance(workflow, WorkflowGraph):
            return self._run_local(workflow, input, process, verbose, **options)
        return self._run_remote(
            workflow, input, process, verbose, resources, on_line, **options
        )

    def run_multiprocess(
        self,
        workflow: int | str | WorkflowGraph,
        input: Any = 1,
        num_processes: int = 4,
        verbose: bool = False,
        **kwargs: Any,
    ) -> RunSummary:
        """Execute a workflow in parallel with static multiprocessing."""
        return self.run(
            workflow,
            input=input,
            process=Process.MULTI,
            verbose=verbose,
            num_processes=num_processes,
            **kwargs,
        )

    def run_dynamic(
        self, workflow: int | str | WorkflowGraph, input: Any = 1, **kwargs: Any
    ) -> RunSummary:
        """Execute a workflow with dynamic workload allocation (Listing 3).

        All broker parameters are managed automatically — this is the
        one-argument spelling the paper contrasts with Laminar 1.0's
        Listing 2.
        """
        return self.run(workflow, input=input, process=Process.DYNAMIC, **kwargs)

    # -- asynchronous jobs -----------------------------------------------------

    def submit_Job(
        self,
        workflow: int | str,
        input: Any = 1,
        process: Process = Process.SIMPLE,
        timeout: float | None = None,
        max_retries: int = 0,
        priority: int = 0,
        **options: Any,
    ) -> dict:
        """Submit a workflow for asynchronous execution; returns the job dict.

        Unlike :meth:`run`, this returns immediately with a ``jobId`` —
        poll with :meth:`job_Status` or block with :meth:`wait_For_Job`.
        A full queue is reported as a :class:`ClientError` with status 429.
        """
        return self._call(
            "submit_job",
            id=workflow,
            input=input,
            mapping=process.mapping,
            timeout=timeout,
            maxRetries=max_retries,
            priority=priority,
            options=options or None,
        )

    def job_Status(self, job_id: int) -> dict:
        """Current state of a submitted job (no result payload)."""
        return self._call("job_status", jobId=job_id)

    def job_Result(self, job_id: int) -> dict:
        """Finished job with its execution outcome; 409 while still running."""
        return self._call("job_result", jobId=job_id)

    def job_Logs(self, job_id: int) -> dict:
        """Output lines captured so far for a job (works mid-run)."""
        return self._call("job_logs", jobId=job_id)

    def cancel_Job(self, job_id: int) -> dict:
        """Cancel a queued or running job; 409 once it is already terminal."""
        return self._call("cancel_job", jobId=job_id)

    def list_Jobs(self, state: str | None = None, limit: int = 50) -> list[dict]:
        """Jobs newest-first, optionally filtered by state name."""
        return self._call("list_jobs", state=state, limit=limit)

    # -- observability ---------------------------------------------------------

    def get_Metrics(self, format: str = "text") -> dict:
        """The server's metrics registry.

        ``format="text"`` (default) returns ``{content_type, text}`` with
        the Prometheus exposition; ``format="json"`` returns
        ``{metrics: <registry snapshot>}``.
        """
        return self._call("get_metrics", format=format)

    def get_Trace(
        self,
        format: str = "tree",
        trace_id: str | None = None,
        clear: bool = False,
    ) -> dict:
        """Span data from the server's tracer sink.

        ``format``: ``tree`` (nested span trees), ``spans`` (flat list)
        or ``chrome`` (Chrome ``about:tracing`` document).  ``clear``
        drops the server's collected spans after this read.
        """
        return self._call(
            "get_trace", format=format, trace_id=trace_id, clear=clear
        )

    def wait_For_Job(
        self, job_id: int, timeout: float = 60.0, interval: float = 0.05
    ) -> dict:
        """Poll a job until it reaches a terminal state; returns the result.

        Raises :class:`TimeoutError` if the job is still live after
        ``timeout`` seconds of polling.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.job_Status(job_id)
            if status["state"] in ("SUCCEEDED", "FAILED", "CANCELLED", "TIMED_OUT"):
                return self.job_Result(job_id)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout:.1f}s"
                )
            time.sleep(interval)

    # -- execution internals ---------------------------------------------------

    def _run_local(
        self,
        graph: WorkflowGraph,
        input: Any,
        process: Process,
        verbose: bool,
        **options: Any,
    ) -> RunSummary:
        result = run_graph(
            graph, input=input, mapping=process.mapping, verbose=verbose, **options
        )
        outputs = {
            f"{pe}.{port}": values for (pe, port), values in result.outputs.items()
        }
        return RunSummary(
            status="success",
            outputs=outputs,
            logs=list(result.logs),
            iterations=dict(result.iterations),
            timings=dict(result.timings),
            trace=result.trace.tree() if result.trace is not None else None,
        )

    def _prepare_resources(
        self, resources: list[str | Path] | None
    ) -> tuple[list[dict] | None, dict[str, bytes]]:
        if not resources:
            return None, {}
        manifest = []
        contents: dict[str, bytes] = {}
        for res in resources:
            path = Path(res)
            data = path.read_bytes()
            manifest.append({"name": path.name, "digest": file_digest(data)})
            contents[path.name] = data
        return manifest, contents

    def _run_remote(
        self,
        ident: int | str,
        input: Any,
        process: Process,
        verbose: bool,
        resources: list[str | Path] | None,
        on_line: Callable[[str], None] | None,
        **options: Any,
    ) -> RunSummary:
        manifest, contents = self._prepare_resources(resources)
        if manifest:
            missing = self._call("check_resources", manifest=manifest)["missing"]
            for name in missing:
                self._call("upload_resource", data=contents[name].hex())

        payload = {
            "action": "run",
            "token": self._token,
            "id": ident,
            "input": input,
            "mapping": process.mapping,
            "verbose": verbose,
            "resources": manifest,
            "options": options,
        }
        lines: list[str] = []
        summary_payload: dict = {}
        status_code = 200
        for frame in self._transport.stream(payload):
            if frame.type is FrameType.HEADERS:
                status_code = (frame.payload or {}).get("status", 200)
            elif frame.type is FrameType.DATA:
                lines.append(str(frame.payload))
                if on_line:
                    on_line(str(frame.payload))
            elif frame.type is FrameType.ERROR:
                err = frame.payload if isinstance(frame.payload, dict) else {}
                raise ClientError(
                    int(err.get("status", 500)),
                    err.get("error", "run request failed on the server"),
                )
            elif frame.type is FrameType.END:
                summary_payload = frame.payload if isinstance(frame.payload, dict) else {}
        if status_code >= 400:
            raise ClientError(
                status_code, summary_payload.get("error", "run request failed")
            )
        return RunSummary(
            status=summary_payload.get("status", "error"),
            lines=lines,
            outputs=summary_payload.get("outputs", {}),
            logs=summary_payload.get("logs", []),
            iterations=summary_payload.get("iterations", {}),
            timings=summary_payload.get("timings", {}),
            execution_id=summary_payload.get("executionId"),
            error=summary_payload.get("error"),
            trace=summary_payload.get("trace"),
        )
