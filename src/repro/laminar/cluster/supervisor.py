"""Boot, health-check and recover a cluster of Laminar server shards.

The supervisor owns N :class:`~repro.laminar.server.app.LaminarServer`
instances, each served over its own TCP transport, with

* its own registry database (``shard-<id>.db`` under ``db_dir``, or
  in-memory),
* its own semantic-index directory (under ``index_dir``), and
* its own partition of one shared :class:`~repro.d4py.redisim.RedisSim`
  broker (``shard:<id>:`` namespace — see
  :meth:`~repro.d4py.redisim.RedisSim.namespaced`),

and publishes the resulting :class:`ClusterConfig` for shard-aware
clients.  A background loop health-checks every shard and keeps the
``laminar_cluster_*`` gauges current; :meth:`kill` / :meth:`restart`
exist so tests (and the CI smoke job) can exercise failover for real.

This is the orchestrator-fans-out-to-workers shape (PaPy's router in
front of a worker pool; Wukong's decentralised scheduling): the
supervisor only *places and watches* — requests never pass through it,
clients talk straight to the owning shard.
"""

from __future__ import annotations

import threading
import time

from repro.d4py.redisim import RedisSim
from repro.laminar.cluster.config import ClusterConfig, ShardInfo
from repro.laminar.cluster.router import ShardRouter
from repro.obs import MetricsRegistry

__all__ = ["ClusterSupervisor", "ShardHandle"]


class ShardHandle:
    """One managed shard: its server, transport and liveness state."""

    def __init__(self, info: ShardInfo) -> None:
        self.info = info
        self.server = None
        self.transport = None
        self.healthy = False
        self.last_check = 0.0
        self.restarts = 0

    @property
    def running(self) -> bool:
        return self.server is not None

    def to_public(self) -> dict:
        return {
            "shardId": self.info.shard_id,
            "host": self.info.host,
            "port": self.info.port,
            "running": self.running,
            "healthy": self.healthy,
            "restarts": self.restarts,
            "lastCheck": self.last_check,
        }


class ClusterSupervisor:
    """Launches and babysits N server shards in this process.

    Parameters
    ----------
    shards:
        How many shards to run (ids ``s0`` ... ``s{n-1}``).
    db_dir:
        Directory for per-shard sqlite registries; ``None`` = in-memory.
    index_dir:
        Directory for per-shard semantic-index persistence; optional.
    replication:
        Key replication factor recorded in the published config (the
        *client* enacts replica writes; shards are unaware of it).
    health_interval:
        Seconds between health sweeps; 0 disables the background loop
        (``check_health()`` can still be called manually).
    server_options:
        Extra keyword arguments for every :class:`LaminarServer`
        (``job_workers``, ``job_queue_capacity``, ...).
    """

    def __init__(
        self,
        shards: int = 3,
        host: str = "127.0.0.1",
        db_dir: str | None = None,
        index_dir: str | None = None,
        vnodes: int = 64,
        replication: int = 2,
        health_interval: float = 0.5,
        heartbeat_interval: float = 0.2,
        registry: MetricsRegistry | None = None,
        **server_options,
    ) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        self._host = host
        self._db_dir = db_dir
        self._index_dir = index_dir
        self._health_interval = float(health_interval)
        self._heartbeat_interval = float(heartbeat_interval)
        self._server_options = dict(server_options)
        self.broker = RedisSim()  # one shared store, partitioned per shard
        self.handles: dict[str, ShardHandle] = {
            f"s{i}": ShardHandle(ShardInfo(shard_id=f"s{i}", host=host))
            for i in range(shards)
        }
        self.config = ClusterConfig(
            shards=[h.info for h in self.handles.values()],
            vnodes=vnodes,
            replication=replication,
        )
        self.router = ShardRouter(self.config)
        self._stop = threading.Event()
        self._health_thread: threading.Thread | None = None
        self._lock = threading.RLock()
        self.obs_registry = registry if registry is not None else MetricsRegistry()
        self._g_shards = self.obs_registry.gauge(
            "laminar_cluster_shards", "Shards configured in this cluster."
        )
        self._g_healthy = self.obs_registry.gauge(
            "laminar_cluster_shards_healthy", "Shards passing health checks."
        )
        self._g_up = self.obs_registry.gauge(
            "laminar_cluster_shard_up",
            "Per-shard liveness as seen by the supervisor.",
            ("shard",),
        )
        self._c_checks = self.obs_registry.counter(
            "laminar_cluster_health_checks_total",
            "Health probes performed, by outcome.",
            ("outcome",),
        )
        self._c_restarts = self.obs_registry.counter(
            "laminar_cluster_shard_restarts_total", "Shard restarts performed."
        )
        self._g_shards.set(float(shards))

    # -- lifecycle -----------------------------------------------------------

    def _boot_shard(self, handle: ShardHandle, port: int = 0) -> None:
        """Construct and serve one shard (caller holds the lock)."""
        from repro.laminar.server.app import LaminarServer
        from repro.laminar.transport.tcp import TcpServerTransport

        shard_id = handle.info.shard_id
        db_path = ":memory:"
        if self._db_dir is not None:
            db_path = f"{self._db_dir}/shard-{shard_id}.db"
        index_dir = None
        if self._index_dir is not None:
            index_dir = f"{self._index_dir}/shard-{shard_id}"
        server = LaminarServer(
            db_path,
            index_dir=index_dir,
            shard_id=shard_id,
            cluster_config=self.config,
            broker=self.broker.namespaced(f"shard:{shard_id}:"),
            **self._server_options,
        )
        try:
            transport = TcpServerTransport(
                server,
                host=handle.info.host,
                port=port,
                heartbeat_interval=self._heartbeat_interval,
            ).start()
        except OSError:
            if port == 0:
                server.close()
                raise
            # The old port is still in TIME_WAIT/taken — rebind anywhere
            # and publish the new address through the config.
            transport = TcpServerTransport(
                server,
                host=handle.info.host,
                port=0,
                heartbeat_interval=self._heartbeat_interval,
            ).start()
        host, bound_port = transport.address
        handle.info = ShardInfo(shard_id=shard_id, host=host, port=bound_port)
        self.config.replace(handle.info)
        handle.server = server
        handle.transport = transport
        handle.healthy = True
        self._g_up.labels(shard_id).set(1.0)

    def start(self) -> ClusterConfig:
        """Boot every shard; returns the published cluster config."""
        with self._lock:
            for handle in self.handles.values():
                if not handle.running:
                    self._boot_shard(handle)
        self._g_healthy.set(float(sum(h.healthy for h in self.handles.values())))
        if self._health_interval > 0 and self._health_thread is None:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="laminar-cluster-health", daemon=True
            )
            self._health_thread.start()
        return self.config

    def stop(self) -> None:
        """Stop the health loop and shut every shard down."""
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
            self._health_thread = None
        with self._lock:
            for handle in self.handles.values():
                self._teardown(handle)

    def _teardown(self, handle: ShardHandle) -> None:
        if handle.transport is not None:
            handle.transport.stop()
            handle.transport = None
        if handle.server is not None:
            handle.server.close()
            handle.server = None
        handle.healthy = False
        self._g_up.labels(handle.info.shard_id).set(0.0)

    # -- fault injection / recovery ------------------------------------------

    def kill(self, shard_id: str) -> None:
        """Take one shard down (connections die, registry is dropped) —
        the failure mode the failover tests exercise."""
        with self._lock:
            self._teardown(self.handles[shard_id])
        self._g_healthy.set(float(sum(h.healthy for h in self.handles.values())))

    def restart(self, shard_id: str) -> ShardInfo:
        """Boot a killed shard again, preferring its previous port.

        With an on-disk ``db_dir`` the shard comes back with its
        registry partition intact; in-memory shards return empty (their
        keys are served by replicas until re-registered).
        """
        with self._lock:
            handle = self.handles[shard_id]
            if handle.running:
                return handle.info
            self._boot_shard(handle, port=handle.info.port)
            handle.restarts += 1
        self._c_restarts.inc()
        self._g_healthy.set(float(sum(h.healthy for h in self.handles.values())))
        return handle.info

    # -- health ---------------------------------------------------------------

    def check_health(self) -> dict[str, bool]:
        """Probe every shard once; returns ``{shard_id: healthy}``."""
        results: dict[str, bool] = {}
        with self._lock:
            for shard_id, handle in self.handles.items():
                healthy = False
                if handle.server is not None:
                    try:
                        response = handle.server.handle({"action": "ping"})
                        healthy = response.get("status") == 200
                    except Exception:  # noqa: BLE001 - a sick shard is unhealthy
                        healthy = False
                handle.healthy = healthy
                handle.last_check = time.time()
                self._c_checks.labels("ok" if healthy else "down").inc()
                self._g_up.labels(shard_id).set(1.0 if healthy else 0.0)
                results[shard_id] = healthy
        self._g_healthy.set(float(sum(results.values())))
        return results

    def _health_loop(self) -> None:
        while not self._stop.wait(self._health_interval):
            self.check_health()

    def status(self) -> dict:
        """JSON-able cluster view (shards, health, ring parameters)."""
        return {
            "shards": [h.to_public() for h in self.handles.values()],
            "healthy": sum(h.healthy for h in self.handles.values()),
            "total": len(self.handles),
            "vnodes": self.config.vnodes,
            "replication": self.config.replication,
            "broker": self.broker.stats(),
        }

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
