"""Shard-aware Laminar client: route, scatter-gather, fail over.

:class:`ShardedClient` presents the familiar :class:`LaminarClient` verb
surface over a whole cluster.  Three request shapes cover everything:

* **Keyed writes** (``register_PE``, ``register_Workflow``, removals,
  description updates) go to every owner of the key — the primary plus
  its ring replicas — so a later failover has somewhere to read from.
  The primary's answer is the caller's answer; replica failures degrade
  durability but not the call.
* **Keyed reads** (``get_Workflow``/``get_PE`` by *name*, ``describe``,
  ``visualize_Workflow``, ``run``, ``submit_Job``) walk the owner list in
  ring order and fail over to the next owner on connection loss,
  heartbeat timeout or a 404 from a freshly-restarted (empty) shard.
  Numeric ids are per-shard autoincrements and therefore unroutable;
  those fall back to scatter-first-success.
* **Scatter-gather** (``get_Registry``, searches, recommendations,
  ``list_Jobs``, ``get_Metrics``, ``index_Stats``) fan out to every
  live shard and merge; dead shards are skipped and reported in the
  merged body's ``"degraded"`` list instead of failing the call.

Job ids are qualified as ``"<shard>:<id>"`` on the way out of
``submit_Job`` so every later job verb goes straight back to the shard
that minted the id — plain ints from a single-server workflow still work
via scatter.  Failover rides on the transport work from the hardening
PR: each per-shard connection is a reconnecting
:class:`~repro.laminar.transport.tcp.TcpClientTransport`, and this layer
only ever *re-routes* verbs the single-server client already treats as
idempotent.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from repro.laminar.client.client import ClientError, LaminarClient, RunSummary
from repro.laminar.client.process import Process
from repro.laminar.cluster.config import ClusterConfig
from repro.laminar.cluster.router import ShardRouter, routing_key

__all__ = ["ShardedClient", "qualify_job_id", "split_job_id"]

_TERMINAL_STATES = ("SUCCEEDED", "FAILED", "CANCELLED", "TIMED_OUT")


def qualify_job_id(shard_id: str, job_id: Any) -> str:
    """Stamp a per-shard job id with the shard that minted it."""
    return f"{shard_id}:{job_id}"


def split_job_id(job_id: Any) -> tuple[str | None, int]:
    """Split ``"s1:42"`` → ``("s1", 42)``; plain ints have no shard."""
    text = str(job_id)
    if ":" in text:
        shard, _, local = text.rpartition(":")
        return shard, int(local)
    return None, int(text)


class ShardedClient:
    """One client for N shards, routed by the shared consistent-hash ring."""

    def __init__(
        self,
        config: ClusterConfig,
        timeout: float = 60.0,
        idle_deadline: float | None = None,
        retry_policy=None,
        client_factory: Callable[[str, int], LaminarClient] | None = None,
        api_key: str | None = None,
    ) -> None:
        self.config = config
        self.router = ShardRouter(config)
        self._timeout = timeout
        self._idle_deadline = idle_deadline
        self._retry_policy = retry_policy
        self._factory = client_factory
        # Credentials are per-shard state (each shard keeps its own User
        # and session tables), so they are replayed onto every per-shard
        # connection — including ones opened after a shard restart.
        self._api_key = api_key
        self._credentials: tuple[str, str] | None = None
        # shard id → (port connected to, client); the port is remembered
        # so a shard restarted on a new port gets a fresh connection.
        self._clients: dict[str, tuple[int, LaminarClient]] = {}

    # -- connection management ------------------------------------------------

    def _connect(self, host: str, port: int) -> LaminarClient:
        if self._factory is not None:
            return self._factory(host, port)
        return LaminarClient.connect(
            host,
            port,
            timeout=self._timeout,
            idle_deadline=self._idle_deadline,
            retry_policy=self._retry_policy,
        )

    def _client(self, shard_id: str) -> LaminarClient:
        info = self.config.shard(shard_id)
        cached = self._clients.get(shard_id)
        if cached is not None:
            port, client = cached
            if port == info.port:
                return client
            # The supervisor republished this shard on a new port.
            self._drop(shard_id)
        client = self._connect(info.host, info.port)
        if self._api_key is not None:
            client.use_api_key(self._api_key)
        elif self._credentials is not None:
            try:
                client.login(*self._credentials)
            except (OSError, ClientError):
                pass  # the verb's own failover reports unreachable shards
        self._clients[shard_id] = (info.port, client)
        return client

    def _drop(self, shard_id: str) -> None:
        cached = self._clients.pop(shard_id, None)
        if cached is not None:
            try:
                cached[1].close()
            except Exception:  # noqa: BLE001 - already broken
                pass

    def refresh(self, config: ClusterConfig | None = None) -> None:
        """Re-read the cluster config (e.g. after membership changes)."""
        if config is not None:
            self.config = config
        self.router = ShardRouter(self.config)
        for shard_id in list(self._clients):
            if shard_id not in self.config.shard_ids:
                self._drop(shard_id)

    def close(self) -> None:
        """Close every per-shard connection."""
        for shard_id in list(self._clients):
            self._drop(shard_id)

    def __enter__(self) -> "ShardedClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request shapes --------------------------------------------------------

    def _owners_for(self, action: str, params: dict) -> list[str] | None:
        key = routing_key(action, params)
        if key is None:
            return None
        return self.router.owners(key)

    def _call_on(self, shard_id: str, action: str, **params: Any) -> Any:
        return self._client(shard_id)._call(action, **params)

    def _keyed_read(self, action: str, **params: Any) -> Any:
        """Route by key; fail over across owners; scatter when unroutable."""
        owners = self._owners_for(action, params)
        if owners is None:
            return self._first_success(action, **params)
        last: Exception | None = None
        for shard_id in owners:
            try:
                return self._call_on(shard_id, action, **params)
            except OSError as exc:  # connection refused/reset, heartbeat
                self._drop(shard_id)
                last = exc
            except ClientError as exc:
                if exc.status == 404:
                    # A restarted shard may be empty; a replica has it.
                    last = exc
                    continue
                raise
        assert last is not None
        raise last

    def _keyed_write(self, action: str, **params: Any) -> Any:
        """Write to every owner of the key; the primary's answer wins.

        A down replica degrades durability, not the call; a down
        *primary* falls back to the first replica that accepted.
        All owners failing is the caller's error.
        """
        owners = self._owners_for(action, params)
        if owners is None:
            return self._first_success(action, **params)
        result: Any = None
        accepted: list[str] = []
        last: Exception | None = None
        for shard_id in owners:
            try:
                body = self._call_on(shard_id, action, **params)
            except OSError as exc:
                self._drop(shard_id)
                last = exc
                continue
            except ClientError as exc:
                last = exc
                continue
            accepted.append(shard_id)
            if result is None:
                result = body
        if not accepted:
            assert last is not None
            raise last
        if isinstance(result, dict):
            result = dict(result)
            result["shards"] = accepted
        return result

    def _first_success(self, action: str, **params: Any) -> Any:
        """Scatter an unroutable request; first non-404 answer wins."""
        last: Exception | None = None
        for shard_id in self.config.shard_ids:
            try:
                return self._call_on(shard_id, action, **params)
            except OSError as exc:
                self._drop(shard_id)
                last = exc
            except ClientError as exc:
                if exc.status in (404, 409):
                    last = exc
                    continue
                raise
        if last is None:
            raise ClientError(404, f"no shard answered {action!r}")
        raise last

    def _scatter(self, action: str, **params: Any) -> tuple[dict[str, Any], list[str]]:
        """Fan out to every shard: ``({shard: body}, [dead shards])``."""
        bodies: dict[str, Any] = {}
        degraded: list[str] = []
        for shard_id in self.config.shard_ids:
            try:
                bodies[shard_id] = self._call_on(shard_id, action, **params)
            except OSError:
                self._drop(shard_id)
                degraded.append(shard_id)
            except ClientError:
                degraded.append(shard_id)
        return bodies, degraded

    # -- accounts --------------------------------------------------------------

    def register(self, user_name: str, password: str) -> dict:
        """Create an account on every shard (accounts are per-shard rows).

        A shard already holding the name answers 409 and is reported as
        existing rather than failing the call.
        """
        shards: dict[str, Any] = {}
        degraded: list[str] = []
        for shard_id in self.config.shard_ids:
            try:
                shards[shard_id] = self._call_on(
                    shard_id, "register_user",
                    userName=user_name, password=password,
                )
            except ClientError as exc:
                if exc.status == 409:
                    shards[shard_id] = {"existed": True}
                else:
                    raise
            except OSError:
                self._drop(shard_id)
                degraded.append(shard_id)
        merged: dict = {"userName": user_name, "shards": shards}
        if degraded:
            merged["degraded"] = degraded
        return merged

    def login(self, user_name: str, password: str) -> dict:
        """Log in on every shard; each per-shard connection keeps its own
        session token (tokens are per-shard state).

        The credentials are retained so connections opened later — e.g.
        after a shard restart — re-authenticate transparently.
        """
        self._credentials = (user_name, password)
        self._api_key = None
        shards: dict[str, Any] = {}
        degraded: list[str] = []
        for shard_id in self.config.shard_ids:
            try:
                body = self._client(shard_id).login(user_name, password)
                shards[shard_id] = {"expiresIn": body.get("expiresIn")}
            except OSError:
                self._drop(shard_id)
                degraded.append(shard_id)
        if not shards:
            raise ClientError(503, "no shard accepted the login")
        merged: dict = {"userName": user_name, "shards": shards}
        if degraded:
            merged["degraded"] = degraded
        return merged

    def logout(self) -> dict:
        """Revoke the session on every connected shard."""
        self._credentials = None
        revoked = 0
        for shard_id in list(self._clients):
            try:
                body = self._clients[shard_id][1].logout()
                revoked += bool(body.get("loggedOut"))
            except (OSError, ClientError):
                self._drop(shard_id)
        return {"loggedOut": revoked > 0, "shards": revoked}

    def use_api_key(self, api_key: str | None) -> None:
        """Authenticate every per-shard connection with ``api_key``.

        The key must resolve on every shard — mint it on each shard, or
        import the account set; per-shard keys differ otherwise.
        """
        self._api_key = api_key
        self._credentials = None
        for _, client in self._clients.values():
            client.use_api_key(api_key)

    def whoami(self) -> dict:
        """The account the first answering shard resolves us to."""
        return self._first_success("whoami")

    # -- registration ----------------------------------------------------------

    def register_PE(
        self, code: str, name: str | None = None, description: str | None = None
    ) -> dict:
        """Register one PE on the shard(s) owning its name."""
        if name is None:
            # Routing needs the name before the server assigns one: use
            # the same extraction the registry applies on arrival.
            from repro.laminar.server.services import RegistryService

            classes = RegistryService.extract_pe_classes(code)
            if classes:
                name = classes[0][0]
        return self._keyed_write(
            "register_pe", code=code, name=name, description=description
        )

    def register_Workflow(
        self,
        source: str,
        name: str | None = None,
        description: str | None = None,
        entry_point: str | None = None,
    ) -> dict:
        """Register a workflow (file path or source) on its owner shards."""
        code, default_name = LaminarClient._load_source(source)
        return self._keyed_write(
            "register_workflow",
            code=code,
            name=name or default_name,
            description=description,
            entryPoint=entry_point,
        )

    # -- retrieval -------------------------------------------------------------

    def get_PE(self, ident: int | str) -> dict:
        """Retrieve a PE — routed by name, scattered for numeric ids."""
        return self._keyed_read("get_pe", id=ident)

    def get_Workflow(self, ident: int | str) -> dict:
        """Retrieve a workflow — routed by name, scattered for ids."""
        return self._keyed_read("get_workflow", id=ident)

    def get_PEs_By_Workflow(self, ident: int | str) -> list[dict]:
        """All PEs of a workflow, from the shard owning it."""
        return self._keyed_read("get_pes_by_workflow", id=ident)

    def describe(self, ident: int | str, kind: str = "pe") -> dict:
        """Description plus code of a PE or workflow, from its owner."""
        return self._keyed_read("describe", id=ident, kind=kind)

    def visualize_Workflow(self, ident: int | str) -> dict:
        """Graph renderings of a workflow, from the shard owning it."""
        return self._keyed_read("visualize", id=ident)

    @staticmethod
    def _dedupe(entries: list[dict]) -> list[dict]:
        """Drop replica copies from a merged listing.

        Replicated writes put the same named entity on ``replication``
        shards; a scatter-gather sees each copy once per shard.  The
        name is the replication identity (per-shard local ids differ),
        so the first — for ranked lists, highest-scored — copy wins.
        """
        seen: set = set()
        out: list[dict] = []
        for entry in entries:
            name = entry.get("peName") or entry.get("workflowName")
            if name is None:
                key = (entry.get("shard"), entry.get("peId"), entry.get("workflowId"))
            else:
                key = ("pe" if entry.get("peName") else "wf", name)
            if key in seen:
                continue
            seen.add(key)
            out.append(entry)
        return out

    def get_Registry(self) -> dict:
        """Union of every shard's registry listing (replicas deduped)."""
        bodies, degraded = self._scatter("get_registry")
        merged: dict = {"pes": [], "workflows": [], "shards": {}}
        for shard_id, body in bodies.items():
            for entry in body.get("pes", ()):
                entry["shard"] = shard_id
                merged["pes"].append(entry)
            for entry in body.get("workflows", ()):
                entry["shard"] = shard_id
                merged["workflows"].append(entry)
            merged["shards"][shard_id] = {
                "pes": len(body.get("pes", ())),
                "workflows": len(body.get("workflows", ())),
            }
        merged["pes"] = self._dedupe(merged["pes"])
        merged["workflows"] = self._dedupe(merged["workflows"])
        if degraded:
            merged["degraded"] = degraded
        return merged

    # -- updates / removal -----------------------------------------------------

    def update_PE_Description(self, ident: int | str, description: str) -> dict:
        """Update a PE's description on every owner of its name."""
        return self._keyed_write(
            "update_pe_description", id=ident, description=description
        )

    def update_Workflow_Description(self, ident: int | str, description: str) -> dict:
        """Update a workflow's description on every owner of its name."""
        return self._keyed_write(
            "update_workflow_description", id=ident, description=description
        )

    def remove_PE(self, ident: int | str) -> dict:
        """Remove a PE from every shard holding a copy."""
        return self._keyed_write("remove_pe", id=ident)

    def remove_Workflow(self, ident: int | str) -> dict:
        """Remove a workflow from every shard holding a copy."""
        return self._keyed_write("remove_workflow", id=ident)

    def remove_All(self) -> dict:
        """Remove everything, everywhere.

        The totals count removed *copies* (a replicated entity counts
        once per shard holding it); ``shards`` has the per-shard split.
        """
        bodies, degraded = self._scatter("remove_all")
        merged: dict = {
            "pes_removed": sum(b.get("pes_removed", 0) for b in bodies.values()),
            "workflows_removed": sum(
                b.get("workflows_removed", 0) for b in bodies.values()
            ),
            "shards": bodies,
        }
        if degraded:
            merged["degraded"] = degraded
        return merged

    # -- search ----------------------------------------------------------------

    def search_Registry_Literal(self, term: str, kind: str = "all") -> dict:
        """Literal search across every shard, merged (replicas deduped)."""
        bodies, degraded = self._scatter("search_literal", term=term, kind=kind)
        merged: dict = {}
        for shard_id, body in bodies.items():
            for bucket, entries in body.items():
                for entry in entries:
                    entry["shard"] = shard_id
                merged.setdefault(bucket, []).extend(entries)
        merged = {bucket: self._dedupe(entries) for bucket, entries in merged.items()}
        if degraded:
            merged["degraded"] = degraded
        return merged

    @staticmethod
    def _merge_ranked(
        bodies: dict[str, list[dict]], top_k: int
    ) -> list[dict]:
        merged: list[dict] = []
        for shard_id, entries in bodies.items():
            for entry in entries:
                entry["shard"] = shard_id
                merged.append(entry)
        merged.sort(
            key=lambda e: float(
                e.get("score", e.get("cosine_similarity", 0.0)) or 0.0
            ),
            reverse=True,
        )
        return ShardedClient._dedupe(merged)[:top_k]

    def search_Registry_Semantic(
        self, query: str, kind: str = "pe", top_k: int = 5
    ) -> list[dict]:
        """Semantic search on every shard, re-ranked to a global top-k."""
        bodies, _ = self._scatter(
            "search_semantic", query=query, kind=kind, topK=top_k
        )
        return self._merge_ranked(bodies, top_k)

    def code_Recommendation(
        self,
        snippet: str,
        kind: str = "pe",
        embedding_type: str = "spt",
        top_k: int = 5,
        threshold: float | None = None,
    ) -> list[dict]:
        """Code recommendation across every shard, globally re-ranked."""
        bodies, _ = self._scatter(
            "code_recommendation",
            snippet=snippet,
            kind=kind,
            embeddingType=embedding_type,
            topK=top_k,
            threshold=threshold,
        )
        return self._merge_ranked(bodies, top_k)

    def code_Completion(
        self, snippet: str, embedding_type: str = "spt", top_k: int = 3
    ) -> list[dict]:
        """Code completion candidates across every shard, re-ranked."""
        bodies, _ = self._scatter(
            "code_completion",
            snippet=snippet,
            embeddingType=embedding_type,
            topK=top_k,
        )
        return self._merge_ranked(bodies, top_k)

    # -- index management ------------------------------------------------------

    def stats(self) -> dict:
        """Per-shard server statistics (uptime, requests, jobs)."""
        bodies, degraded = self._scatter("stats")
        merged: dict = {"shards": bodies}
        if degraded:
            merged["degraded"] = degraded
        return merged

    def get_Trace(
        self,
        format: str = "tree",
        trace_id: str | None = None,
        clear: bool = False,
    ) -> dict:
        """Span data from every shard's tracer sink, concatenated."""
        bodies, degraded = self._scatter(
            "get_trace", format=format, trace_id=trace_id, clear=clear
        )
        merged: dict
        if format == "chrome":
            events: list = []
            for body in bodies.values():
                events.extend((body.get("trace") or {}).get("traceEvents", ()))
            merged = {"trace": {"traceEvents": events}}
        else:
            trace: list = []
            for body in bodies.values():
                trace.extend(body.get("trace") or ())
            merged = {"trace": trace}
        if degraded:
            merged["degraded"] = degraded
        return merged

    # -- portability -----------------------------------------------------------

    def export_Registry(self) -> dict:
        """One coherent dump of the whole cluster.

        Per-shard dumps use per-shard autoincrement ids, so the merge
        reassigns global ids and rewrites workflow→PE links through each
        shard's local id map; replicas are deduped by name (the first
        shard's copy wins, links intact because a workflow's PEs are
        registered on the workflow's own shards).
        """
        bodies, degraded = self._scatter("export_registry")
        version = None
        pes: list[dict] = []
        workflows: list[dict] = []
        pe_id_of: dict[str, int] = {}
        wf_seen: set[str] = set()
        for body in bodies.values():
            version = body.get("version", version)
            local: dict[int, int] = {}
            for pe in body.get("pes", ()):
                name = pe["peName"]
                if name in pe_id_of:
                    local[pe["peId"]] = pe_id_of[name]
                    continue
                entry = dict(pe)
                entry["peId"] = pe_id_of[name] = len(pe_id_of) + 1
                local[pe["peId"]] = entry["peId"]
                pes.append(entry)
            for wf in body.get("workflows", ()):
                if wf["workflowName"] in wf_seen:
                    continue
                wf_seen.add(wf["workflowName"])
                entry = dict(wf)
                entry["workflowId"] = len(wf_seen)
                entry["peIds"] = [
                    local[i] for i in wf.get("peIds", ()) if i in local
                ]
                workflows.append(entry)
        merged: dict = {"version": version, "pes": pes, "workflows": workflows}
        if degraded:
            merged["degraded"] = degraded
        return merged

    def import_Registry(self, dump: dict | str) -> dict:
        """Load a dump, routing each entity to the shards owning its name.

        Each owner shard receives a sub-dump of its PEs and workflows;
        a workflow's linked PEs ride along with it (whatever shard owns
        their names) so the dump-local ``peIds`` links stay resolvable.
        Returns global unique counts plus the per-shard import counts.
        """
        if isinstance(dump, str):
            dump = json.loads(dump)
        pes = list(dump.get("pes", ()))
        workflows = list(dump.get("workflows", ()))
        pe_by_id = {pe["peId"]: pe for pe in pes}
        per_shard: dict[str, dict] = {}

        def bucket(shard_id: str) -> dict:
            return per_shard.setdefault(
                shard_id,
                {"version": dump.get("version"), "pes": [], "workflows": []},
            )

        def add_pe(shard_id: str, pe: dict) -> None:
            sub = bucket(shard_id)
            if all(p["peId"] != pe["peId"] for p in sub["pes"]):
                sub["pes"].append(pe)

        for pe in pes:
            for shard_id in self.router.owners(f"pe:{pe['peName']}"):
                add_pe(shard_id, pe)
        for wf in workflows:
            for shard_id in self.router.owners(f"workflow:{wf['workflowName']}"):
                bucket(shard_id)["workflows"].append(wf)
                for pe_id in wf.get("peIds", ()):
                    if pe_id in pe_by_id:
                        add_pe(shard_id, pe_by_id[pe_id])
        shards: dict[str, dict] = {}
        for shard_id, sub in per_shard.items():
            shards[shard_id] = self._call_on(
                shard_id, "import_registry", dump=sub
            )
        return {"pes": len(pes), "workflows": len(workflows), "shards": shards}

    def index_Stats(self) -> dict:
        """Per-shard semantic-index statistics."""
        bodies, degraded = self._scatter("index_stats")
        merged: dict = {"shards": bodies}
        if degraded:
            merged["degraded"] = degraded
        return merged

    def index_Save(self, path: str | None = None) -> dict:
        """Persist every shard's semantic indexes (needs per-shard
        ``index_dir``; an explicit ``path`` would collide across shards)."""
        if path is not None:
            raise ValueError(
                "sharded index_Save writes to each shard's own index_dir; "
                "an explicit path cannot be shared"
            )
        bodies, degraded = self._scatter("index_save", path=None)
        merged: dict = {"shards": bodies}
        if degraded:
            merged["degraded"] = degraded
        return merged

    # -- execution -------------------------------------------------------------

    def run(
        self,
        workflow: int | str,
        input: Any = 1,
        process: Process = Process.SIMPLE,
        verbose: bool = False,
        **options: Any,
    ) -> RunSummary:
        """Run a registered workflow on the shard owning it, streamed.

        Connection failures *before any output arrives* fail over to the
        next owner; a stream that already produced lines is not silently
        re-run.
        """
        owners = self._owners_for("run", {"id": workflow})
        if owners is None:
            # Numeric id: find the shard that has it, then run there.
            body = self._first_success("get_workflow", id=workflow)
            owners = [body["shard"]] if "shard" in body else list(self.config.shard_ids)
        last: Exception | None = None
        for shard_id in owners:
            try:
                return self._client(shard_id).run(
                    workflow, input=input, process=process, verbose=verbose, **options
                )
            except OSError as exc:
                self._drop(shard_id)
                last = exc
            except ClientError as exc:
                if exc.status == 404:
                    last = exc
                    continue
                raise
        assert last is not None
        raise last

    def submit_Job(
        self,
        workflow: int | str,
        input: Any = 1,
        process: Process = Process.SIMPLE,
        timeout: float | None = None,
        max_retries: int = 0,
        priority: int = 0,
        **options: Any,
    ) -> dict:
        """Submit to the shard owning the workflow; job ids come back
        qualified as ``"<shard>:<id>"`` so later verbs route directly."""
        owners = self._owners_for("submit_job", {"id": workflow})
        candidates = owners if owners is not None else list(self.config.shard_ids)
        last: Exception | None = None
        for shard_id in candidates:
            try:
                body = self._call_on(
                    shard_id,
                    "submit_job",
                    id=workflow,
                    input=input,
                    mapping=process.mapping,
                    timeout=timeout,
                    maxRetries=max_retries,
                    priority=priority,
                    options=options or None,
                )
            except OSError as exc:
                self._drop(shard_id)
                last = exc
                continue
            except ClientError as exc:
                if exc.status == 404:
                    last = exc
                    continue
                raise
            body = dict(body)
            body["jobId"] = qualify_job_id(shard_id, body["jobId"])
            body["shard"] = shard_id
            return body
        assert last is not None
        raise last

    def _job_call(self, action: str, job_id: Any) -> dict:
        shard_id, local_id = split_job_id(job_id)
        if shard_id is None:
            body = self._first_success(action, jobId=local_id)
            return body
        body = self._call_on(shard_id, action, jobId=local_id)
        body = dict(body)
        body["jobId"] = qualify_job_id(shard_id, local_id)
        return body

    def job_Status(self, job_id: Any) -> dict:
        """State of a job, from the shard that minted its id."""
        return self._job_call("job_status", job_id)

    def job_Result(self, job_id: Any) -> dict:
        """Result of a finished job; 409 while still running."""
        return self._job_call("job_result", job_id)

    def job_Logs(self, job_id: Any) -> dict:
        """Captured output lines of a job (works mid-run)."""
        return self._job_call("job_logs", job_id)

    def cancel_Job(self, job_id: Any) -> dict:
        """Cancel a queued or running job on its shard."""
        return self._job_call("cancel_job", job_id)

    def list_Jobs(self, state: str | None = None, limit: int = 50) -> list[dict]:
        """Jobs across every shard, newest-first, ids qualified."""
        bodies, _ = self._scatter("list_jobs", state=state, limit=limit)
        merged: list[dict] = []
        for shard_id, jobs in bodies.items():
            for job in jobs:
                job = dict(job)
                job["jobId"] = qualify_job_id(shard_id, job["jobId"])
                job["shard"] = shard_id
                merged.append(job)
        merged.sort(key=lambda j: j.get("submittedAt") or 0.0, reverse=True)
        return merged[:limit]

    def wait_For_Job(
        self, job_id: Any, timeout: float = 60.0, interval: float = 0.05
    ) -> dict:
        """Poll a job to a terminal state; returns its result."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job_Status(job_id)
            if status["state"] in _TERMINAL_STATES:
                return self.job_Result(job_id)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout:.1f}s"
                )
            time.sleep(interval)

    # -- observability ---------------------------------------------------------

    def get_Metrics(self, format: str = "text") -> dict:
        """Every shard's metrics: concatenated text or per-shard JSON."""
        bodies, degraded = self._scatter("get_metrics", format=format)
        if format == "json":
            merged: dict = {
                "shards": {s: b.get("metrics") for s, b in bodies.items()}
            }
            if degraded:
                merged["degraded"] = degraded
            return merged
        sections = []
        for shard_id, body in bodies.items():
            sections.append(f"# shard {shard_id}\n{body.get('text', '')}")
        merged = {
            "content_type": "text/plain; version=0.0.4",
            "text": "\n".join(sections),
        }
        if degraded:
            merged["degraded"] = degraded
        return merged

    def cluster_Status(self) -> dict:
        """Live shard map: who answers, who owns what fraction of keys."""
        shards = []
        healthy = 0
        for info in self.config.shards:
            entry: dict[str, Any] = {
                "shardId": info.shard_id,
                "host": info.host,
                "port": info.port,
            }
            try:
                body = self._call_on(info.shard_id, "cluster_info")
                entry["healthy"] = True
                entry["reportedShardId"] = body.get("shardId")
                healthy += 1
            except (OSError, ClientError) as exc:
                self._drop(info.shard_id)
                entry["healthy"] = False
                entry["error"] = str(exc)
            shards.append(entry)
        return {
            "shards": shards,
            "healthy": healthy,
            "total": len(self.config.shards),
            "vnodes": self.config.vnodes,
            "replication": self.router.replication,
        }
