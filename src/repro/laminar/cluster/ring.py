"""Consistent-hash ring with virtual nodes.

The placement substrate of cluster mode: workflow/PE/job keys map to
server shards through a ring of hashed virtual-node points, so

* keys spread evenly across shards (each shard contributes ``vnodes``
  points, smoothing the distribution — see the balance test), and
* membership changes move only the keys that fall between the joining
  (or leaving) shard's points and their predecessors — about ``1/n`` of
  the keyspace, not a full reshuffle like modulo hashing.

This is the decentralised-placement idea Wukong applies to serverless
DAG scheduling (PAPERS.md): no central table, any party holding the
shard list computes the same owner for the same key.

Hashing is ``sha1`` over UTF-8 strings (stable across processes and
Python versions — ``hash()`` is salted per process and useless here).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

__all__ = ["HashRing"]

#: Virtual nodes per shard; 64 keeps per-shard load within a few percent
#: of even for small clusters while the ring stays tiny (n*64 points).
DEFAULT_VNODES = 64


def _hash64(text: str) -> int:
    """First 8 bytes of sha1 as an unsigned int (the ring coordinate)."""
    return int.from_bytes(hashlib.sha1(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic consistent hashing over named nodes.

    Parameters
    ----------
    nodes:
        Initial node names (order-insensitive: the ring depends only on
        the *set* of nodes and ``vnodes``).
    vnodes:
        Virtual points per node; more points = smoother balance.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = int(vnodes)
        self._points: list[int] = []  # sorted ring coordinates
        self._owner_at: dict[int, str] = {}  # coordinate -> node
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list[str]:
        """Member node names, sorted."""
        return sorted(self._nodes)

    def _node_points(self, node: str) -> list[int]:
        return [_hash64(f"{node}#{i}") for i in range(self.vnodes)]

    def add(self, node: str) -> None:
        """Join one node (idempotent)."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return
        self._nodes.add(node)
        for point in self._node_points(node):
            # sha1 collisions between distinct vnode labels are not a
            # practical concern, but deterministic tie-breaking keeps the
            # ring identical however members joined: lowest name wins.
            holder = self._owner_at.get(point)
            if holder is not None:
                if node < holder:
                    self._owner_at[point] = node
                continue
            bisect.insort(self._points, point)
            self._owner_at[point] = node

    def remove(self, node: str) -> None:
        """Leave one node (idempotent); its keys fall to ring successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        for point in self._node_points(node):
            if self._owner_at.get(point) == node:
                del self._owner_at[point]
                idx = bisect.bisect_left(self._points, point)
                if idx < len(self._points) and self._points[idx] == point:
                    self._points.pop(idx)

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise of its hash)."""
        owners = self.owners(key, 1)
        if not owners:
            raise LookupError("hash ring has no nodes")
        return owners[0]

    def owners(self, key: str, count: int = 1) -> list[str]:
        """Up to ``count`` *distinct* nodes in ring order from ``key``.

        The first entry is the primary owner; the rest are the natural
        replica/failover targets (each key's successor nodes), so every
        caller sharing the ring agrees on the failover order too.
        """
        if not self._points or count <= 0:
            return []
        start = bisect.bisect_right(self._points, _hash64(str(key)))
        found: list[str] = []
        for i in range(len(self._points)):
            point = self._points[(start + i) % len(self._points)]
            node = self._owner_at[point]
            if node not in found:
                found.append(node)
                if len(found) >= min(count, len(self._nodes)):
                    break
        return found

    def distribution(self, keys: Iterable[str]) -> dict[str, int]:
        """Count of ``keys`` owned per node (balance diagnostics/tests)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
