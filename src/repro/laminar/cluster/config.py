"""Cluster topology description: shards, their addresses, ring knobs.

A :class:`ClusterConfig` is the one artifact every party shares — the
supervisor writes it after booting shards, servers load it to know
their own identity and check key ownership, clients load it to route.
It is a plain JSON document so it can live next to a registry db:

.. code-block:: json

    {
      "vnodes": 64,
      "replication": 2,
      "shards": [
        {"shard_id": "s0", "host": "127.0.0.1", "port": 8421},
        {"shard_id": "s1", "host": "127.0.0.1", "port": 8422}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.laminar.cluster.ring import DEFAULT_VNODES

__all__ = ["ShardInfo", "ClusterConfig"]


@dataclass(frozen=True)
class ShardInfo:
    """One server shard's identity and address."""

    shard_id: str
    host: str = "127.0.0.1"
    port: int = 0

    def to_dict(self) -> dict:
        return {"shard_id": self.shard_id, "host": self.host, "port": self.port}

    @classmethod
    def from_dict(cls, data: dict) -> "ShardInfo":
        return cls(
            shard_id=str(data["shard_id"]),
            host=str(data.get("host", "127.0.0.1")),
            port=int(data.get("port", 0)),
        )


@dataclass
class ClusterConfig:
    """The shard list plus the ring parameters every party must share."""

    shards: list[ShardInfo] = field(default_factory=list)
    vnodes: int = DEFAULT_VNODES
    #: How many distinct shards hold each key (primary + failover
    #: replicas); clamped to the shard count when the cluster is smaller.
    replication: int = 2

    def __post_init__(self) -> None:
        seen = set()
        for shard in self.shards:
            if shard.shard_id in seen:
                raise ValueError(f"duplicate shard_id {shard.shard_id!r}")
            seen.add(shard.shard_id)

    @property
    def shard_ids(self) -> list[str]:
        return [s.shard_id for s in self.shards]

    def shard(self, shard_id: str) -> ShardInfo:
        """Look one shard up by id (KeyError when absent)."""
        for shard in self.shards:
            if shard.shard_id == shard_id:
                return shard
        raise KeyError(f"no shard {shard_id!r} in cluster config")

    def replace(self, info: ShardInfo) -> None:
        """Swap the entry with ``info``'s shard_id (e.g. after a restart
        rebinds the port)."""
        for i, shard in enumerate(self.shards):
            if shard.shard_id == info.shard_id:
                self.shards[i] = info
                return
        raise KeyError(f"no shard {info.shard_id!r} in cluster config")

    def to_dict(self) -> dict:
        return {
            "vnodes": self.vnodes,
            "replication": self.replication,
            "shards": [s.to_dict() for s in self.shards],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterConfig":
        return cls(
            shards=[ShardInfo.from_dict(s) for s in data.get("shards", [])],
            vnodes=int(data.get("vnodes", DEFAULT_VNODES)),
            replication=int(data.get("replication", 2)),
        )

    def save(self, path: str | Path) -> Path:
        """Write the config as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ClusterConfig":
        """Read a config written by :meth:`save` (or by hand)."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read cluster config {path}: {exc}") from exc
        return cls.from_dict(data)
