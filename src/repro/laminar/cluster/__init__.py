"""Cluster mode: consistent-hash sharding of the Laminar registry.

The pieces, bottom-up:

* :class:`~repro.laminar.cluster.ring.HashRing` — consistent hashing
  with virtual nodes; balanced placement, minimal movement on
  membership change.
* :class:`~repro.laminar.cluster.config.ClusterConfig` — the shared
  shard map (ids, addresses, vnodes, replication) every party loads.
* :class:`~repro.laminar.cluster.router.ShardRouter` — action payload →
  placement key → owner shards; used by clients to route and by servers
  to reject misdirected keyed requests with 421.
* :class:`~repro.laminar.cluster.supervisor.ClusterSupervisor` — boots
  N servers (own registry db, own partition of one shared broker),
  health-checks them, and supports kill/restart for failover drills.
* :class:`~repro.laminar.cluster.client.ShardedClient` — the
  :class:`~repro.laminar.client.client.LaminarClient` verb surface over
  the whole cluster: keyed routing, replica failover, scatter-gather
  merges.
"""

from repro.laminar.cluster.config import ClusterConfig, ShardInfo
from repro.laminar.cluster.ring import HashRing
from repro.laminar.cluster.router import KEYED_ACTIONS, ShardRouter, routing_key
from repro.laminar.cluster.supervisor import ClusterSupervisor, ShardHandle
from repro.laminar.cluster.client import ShardedClient, qualify_job_id, split_job_id

__all__ = [
    "ClusterConfig",
    "ShardInfo",
    "HashRing",
    "KEYED_ACTIONS",
    "ShardRouter",
    "routing_key",
    "ClusterSupervisor",
    "ShardHandle",
    "ShardedClient",
    "qualify_job_id",
    "split_job_id",
]
