"""Shard routing: map server actions and their keys to owning shards.

Two pieces:

* :func:`routing_key` — the *shared convention* turning an action
  payload into a placement key (``pe:<name>`` / ``workflow:<name>``).
  Client and server compute it identically, so a server can verify that
  a keyed request actually belongs to it (and answer 421 when not) with
  no coordination beyond the shared :class:`ClusterConfig`.
* :class:`ShardRouter` — a :class:`HashRing` over the configured shard
  ids plus the replication policy: ``owners(key)`` returns the primary
  and its failover replicas in the order every party agrees on.

Jobs deliberately have no routing key of their own: a job lives on the
shard that owns its workflow, and the sharded client qualifies job ids
as ``"<shard>:<id>"`` so later job verbs go straight back to the shard
that minted the id.
"""

from __future__ import annotations

from repro.laminar.cluster.config import ClusterConfig
from repro.laminar.cluster.ring import HashRing

__all__ = ["ShardRouter", "routing_key", "KEYED_ACTIONS"]

#: Keyed actions → (key kind, payload parameter holding the name/id).
#: Only these actions are ownership-checked; everything else (searches,
#: listings, stats) is either scatter-gather or shard-local by nature.
KEYED_ACTIONS: dict[str, tuple[str, str]] = {
    "register_workflow": ("workflow", "name"),
    "get_workflow": ("workflow", "id"),
    "get_pes_by_workflow": ("workflow", "id"),
    "update_workflow_description": ("workflow", "id"),
    "remove_workflow": ("workflow", "id"),
    "visualize": ("workflow", "id"),
    "run": ("workflow", "id"),
    "submit_job": ("workflow", "id"),
    "register_pe": ("pe", "name"),
    "get_pe": ("pe", "id"),
    "update_pe_description": ("pe", "id"),
    "remove_pe": ("pe", "id"),
    "describe": ("pe", "id"),
}


def routing_key(action: str, params: dict) -> str | None:
    """The placement key of one request, or ``None`` when unkeyed.

    Numeric identifiers return ``None`` too: registry ids are per-shard
    autoincrements, so only *names* are globally routable.  (The sharded
    client resolves numeric lookups by scatter-gather instead.)
    """
    keyed = KEYED_ACTIONS.get(action)
    if keyed is None:
        return None
    kind, param = keyed
    ident = params.get(param)
    if ident is None:
        return None
    ident = str(ident)
    if not ident or ident.isdigit():
        return None
    if action == "describe":  # describe carries its kind in the payload
        kind = str(params.get("kind") or kind)
    return f"{kind}:{ident}"


class ShardRouter:
    """Consistent-hash placement of keys onto the configured shards."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.ring = HashRing(config.shard_ids, vnodes=config.vnodes)
        self.replication = max(1, min(config.replication, len(config.shards) or 1))

    def owner(self, key: str) -> str:
        """Primary shard id for ``key``."""
        return self.ring.owner(key)

    def owners(self, key: str) -> list[str]:
        """Primary plus replica shard ids, in agreed failover order."""
        return self.ring.owners(key, self.replication)

    def owns(self, shard_id: str, key: str) -> bool:
        """Whether ``shard_id`` is the primary or a replica for ``key``."""
        return shard_id in self.owners(key)

    def misdirected(self, shard_id: str, action: str, params: dict) -> dict | None:
        """Ownership check for one request arriving at ``shard_id``.

        Returns ``None`` when the request may be served here (unkeyed
        action, numeric id, or this shard is an owner); otherwise a
        structured hint naming the true owners, which the server turns
        into a 421 response.
        """
        key = routing_key(action, params)
        if key is None:
            return None
        owners = self.owners(key)
        if shard_id in owners:
            return None
        return {"key": key, "owner": owners[0], "owners": owners}
