"""Registry export/import: portable JSON dumps of PEs and workflows.

The paper's registry is a long-lived MySQL instance; our in-memory
SQLite substitute needs an explicit persistence story, and a portable
dump format is useful regardless (seeding demo registries, moving
content between server replicas of :mod:`repro.laminar.deploy`).  The
dump carries the user-meaningful content — names, code, descriptions,
embeddings and workflow↔PE links — but not accounts or execution
history, which belong to a deployment rather than a content set.
"""

from __future__ import annotations

import json
from typing import Any

from repro.laminar.server.dataaccess import PERepository, WorkflowRepository
from repro.laminar.server.models import UserRecord

__all__ = ["export_registry", "import_registry", "DUMP_VERSION"]

DUMP_VERSION = 1


def export_registry(
    pes: PERepository,
    workflows: WorkflowRepository,
    user: UserRecord | None = None,
) -> dict[str, Any]:
    """Serialise the registry's content into a JSON-able dict.

    A ``user`` scopes the dump to that tenant's rows; ``None`` exports
    everything (the unscoped internal/backup path).
    """
    user_id = None if user is None else user.userId
    wf_records = workflows.all(user_id=user_id)
    links = {
        wf.workflowId: [pe.peId for pe in workflows.pes_of(wf.workflowId)]
        for wf in wf_records
    }
    return {
        "version": DUMP_VERSION,
        "pes": [
            {
                "peId": pe.peId,
                "peName": pe.peName,
                "peCode": pe.peCode,
                "description": pe.description,
                "descEmbedding": pe.descEmbedding,
                "sptEmbedding": pe.sptEmbedding,
            }
            for pe in pes.all(user_id=user_id)
        ],
        "workflows": [
            {
                "workflowId": wf.workflowId,
                "workflowName": wf.workflowName,
                "workflowCode": wf.workflowCode,
                "entryPoint": wf.entryPoint,
                "description": wf.description,
                "descEmbedding": wf.descEmbedding,
                "sptEmbedding": wf.sptEmbedding,
                "peIds": links[wf.workflowId],
            }
            for wf in wf_records
        ],
    }


def import_registry(
    dump: dict[str, Any] | str,
    pes: PERepository,
    workflows: WorkflowRepository,
    owner: UserRecord,
) -> dict[str, int]:
    """Load a dump into a registry, assigning content to ``owner``.

    Ids are reassigned on import (the dump's ids only define the
    workflow↔PE links); returns counts of imported records.  Raises
    ``ValueError`` on an unknown dump version or malformed payload.
    """
    if isinstance(dump, str):
        dump = json.loads(dump)
    if not isinstance(dump, dict) or dump.get("version") != DUMP_VERSION:
        raise ValueError(
            f"unsupported registry dump (expected version {DUMP_VERSION})"
        )

    id_map: dict[int, int] = {}
    for entry in dump.get("pes", []):
        record = pes.create(
            user_id=owner.userId,
            name=entry["peName"],
            code=entry["peCode"],
            description=entry.get("description", ""),
            desc_embedding=entry.get("descEmbedding", ""),
            spt_embedding=entry.get("sptEmbedding", ""),
        )
        id_map[int(entry["peId"])] = record.peId

    n_workflows = 0
    for entry in dump.get("workflows", []):
        record = workflows.create(
            user_id=owner.userId,
            name=entry["workflowName"],
            code=entry["workflowCode"],
            entry_point=entry.get("entryPoint", ""),
            description=entry.get("description", ""),
            desc_embedding=entry.get("descEmbedding", ""),
            spt_embedding=entry.get("sptEmbedding", ""),
        )
        n_workflows += 1
        for old_pe_id in entry.get("peIds", []):
            new_id = id_map.get(int(old_pe_id))
            if new_id is not None:
                workflows.link_pe(record.workflowId, new_id)

    return {"pes": len(id_map), "workflows": n_workflows}
