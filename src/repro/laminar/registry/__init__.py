"""The Laminar registry: relational storage for users, PEs and workflows.

The paper's registry is MySQL (§IV-D); offline we use stdlib ``sqlite3``
with the *same normalised schema* (DESIGN.md substitution S4): the five
Table II entities plus the workflow↔PE association table, code and
embeddings stored as character large objects, and secondary indexes on
the searched columns (Fig 6).
"""

from repro.laminar.registry.database import RegistryDatabase
from repro.laminar.registry.schema import SCHEMA_STATEMENTS, TABLES, schema_summary

__all__ = ["RegistryDatabase", "SCHEMA_STATEMENTS", "TABLES", "schema_summary"]
