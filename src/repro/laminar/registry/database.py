"""SQLite connection wrapper for the registry.

A thin, thread-safe layer over ``sqlite3``: the server's handler threads
(TCP transport) share one connection guarded by a lock, with foreign
keys enforced and rows returned as dicts.  In-memory by default (the
serverless deployment unit owns its registry); pass a path to persist.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

from repro.laminar.registry.schema import SCHEMA_STATEMENTS

__all__ = ["RegistryDatabase"]


class RegistryDatabase:
    """Owns the sqlite connection and applies the Fig 6 schema."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        with self._lock:
            self._conn.execute("PRAGMA foreign_keys = ON")
            for statement in SCHEMA_STATEMENTS:
                self._conn.execute(statement)
            self._conn.commit()

    # -- primitives --------------------------------------------------------

    def execute(self, sql: str, params: Iterable[Any] = ()) -> int:
        """Run one write statement; returns ``lastrowid``."""
        with self._lock:
            cursor = self._conn.execute(sql, tuple(params))
            self._conn.commit()
            return cursor.lastrowid

    def executemany(self, sql: str, rows: Iterable[Iterable[Any]]) -> None:
        """Run one write statement for many parameter rows."""
        with self._lock:
            self._conn.executemany(sql, [tuple(r) for r in rows])
            self._conn.commit()

    def query(self, sql: str, params: Iterable[Any] = ()) -> list[dict]:
        """Run one read statement; returns rows as plain dicts."""
        with self._lock:
            cursor = self._conn.execute(sql, tuple(params))
            return [dict(row) for row in cursor.fetchall()]

    def query_one(self, sql: str, params: Iterable[Any] = ()) -> dict | None:
        """First row of a query, or ``None``."""
        rows = self.query(sql, params)
        return rows[0] if rows else None

    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """Group several statements into one atomic commit.

        Yields the raw connection under the database lock; statements run
        through it are committed together on exit (rolled back on
        exception).  Used by writers that must not interleave with other
        threads — e.g. the job store's insert-then-read-back.
        """
        with self._lock:
            try:
                yield self._conn
                self._conn.commit()
            except Exception:
                self._conn.rollback()
                raise

    # -- introspection -------------------------------------------------------

    def table_names(self) -> set[str]:
        """User tables currently in the database."""
        rows = self.query(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name NOT LIKE 'sqlite_%'"
        )
        return {row["name"] for row in rows}

    def index_names(self) -> set[str]:
        """User indexes currently in the database."""
        rows = self.query(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name NOT LIKE 'sqlite_%'"
        )
        return {row["name"] for row in rows}

    def columns(self, table: str) -> list[str]:
        """Column names of ``table`` in declaration order."""
        return [row["name"] for row in self.query(f"PRAGMA table_info({table})")]

    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            self._conn.close()
