"""The registry's relational schema (paper Fig 6 / Table II).

Entities:

* ``User`` — account records; one user owns many workflows (one-to-many).
* ``Workflow`` — registered workflows: source code (CLOB), generated
  description, description embedding and SPT embedding (CLOBs holding
  JSON), ownership and timestamps.
* ``ProcessingElement`` — reusable PEs with the same code/embedding
  columns; associated with many workflows through ``WorkflowPE``
  (many-to-many — "PEs are reusable components that can be associated
  with multiple workflows").
* ``Execution`` — one row per workflow run: mapping, input spec, status,
  timing; linked to a workflow and a user.
* ``Response`` — captured output of an execution (one-to-one-or-many).
* ``Job`` — one row per *asynchronous* workflow run: the submit
  parameters, the lifecycle state machine (QUEUED → RUNNING → SUCCEEDED
  | FAILED | CANCELLED | TIMED_OUT), retry/timing accounting and the
  captured result; linked to a workflow and a user.

SQLite types: ``TEXT`` is a character large object (unbounded), exactly
the CLOB move the paper made away from bounded ``String`` columns.
"""

from __future__ import annotations

__all__ = ["SCHEMA_STATEMENTS", "TABLES", "INDEXES", "schema_summary"]

TABLES: dict[str, str] = {
    "User": (
        "CREATE TABLE IF NOT EXISTS User (\n"
        "    userId INTEGER PRIMARY KEY AUTOINCREMENT,\n"
        "    userName TEXT NOT NULL UNIQUE,\n"
        "    passwordHash TEXT NOT NULL,\n"
        "    createdAt TEXT NOT NULL DEFAULT (datetime('now'))\n"
        ")"
    ),
    "ApiKey": (
        "CREATE TABLE IF NOT EXISTS ApiKey (\n"
        "    keyId INTEGER PRIMARY KEY AUTOINCREMENT,\n"
        "    userId INTEGER NOT NULL REFERENCES User(userId)\n"
        "        ON DELETE CASCADE,\n"
        "    keyDigest TEXT NOT NULL UNIQUE,\n"        # SHA-256, never the key
        "    name TEXT NOT NULL DEFAULT '',\n"
        "    createdAt TEXT NOT NULL DEFAULT (datetime('now'))\n"
        ")"
    ),
    "Workflow": (
        "CREATE TABLE IF NOT EXISTS Workflow (\n"
        "    workflowId INTEGER PRIMARY KEY AUTOINCREMENT,\n"
        "    userId INTEGER NOT NULL REFERENCES User(userId),\n"
        "    workflowName TEXT NOT NULL,\n"
        "    entryPoint TEXT,\n"
        "    description TEXT,\n"
        "    workflowCode TEXT NOT NULL,\n"          # CLOB
        "    descEmbedding TEXT,\n"                   # CLOB (JSON vector)
        "    sptEmbedding TEXT,\n"                    # CLOB (JSON features)
        "    createdAt TEXT NOT NULL DEFAULT (datetime('now'))\n"
        ")"
    ),
    "ProcessingElement": (
        "CREATE TABLE IF NOT EXISTS ProcessingElement (\n"
        "    peId INTEGER PRIMARY KEY AUTOINCREMENT,\n"
        "    userId INTEGER NOT NULL REFERENCES User(userId),\n"
        "    peName TEXT NOT NULL,\n"
        "    description TEXT,\n"
        "    peCode TEXT NOT NULL,\n"                 # CLOB
        "    descEmbedding TEXT,\n"                   # CLOB (JSON vector)
        "    sptEmbedding TEXT,\n"                    # CLOB (JSON features)
        "    createdAt TEXT NOT NULL DEFAULT (datetime('now'))\n"
        ")"
    ),
    "WorkflowPE": (
        "CREATE TABLE IF NOT EXISTS WorkflowPE (\n"
        "    workflowId INTEGER NOT NULL REFERENCES Workflow(workflowId)\n"
        "        ON DELETE CASCADE,\n"
        "    peId INTEGER NOT NULL REFERENCES ProcessingElement(peId)\n"
        "        ON DELETE CASCADE,\n"
        "    PRIMARY KEY (workflowId, peId)\n"
        ")"
    ),
    "Execution": (
        "CREATE TABLE IF NOT EXISTS Execution (\n"
        "    executionId INTEGER PRIMARY KEY AUTOINCREMENT,\n"
        "    workflowId INTEGER NOT NULL REFERENCES Workflow(workflowId)\n"
        "        ON DELETE CASCADE,\n"
        "    userId INTEGER NOT NULL REFERENCES User(userId),\n"
        "    mapping TEXT NOT NULL,\n"
        "    inputSpec TEXT,\n"
        "    status TEXT NOT NULL DEFAULT 'pending',\n"
        "    startedAt TEXT,\n"
        "    finishedAt TEXT\n"
        ")"
    ),
    "Response": (
        "CREATE TABLE IF NOT EXISTS Response (\n"
        "    responseId INTEGER PRIMARY KEY AUTOINCREMENT,\n"
        "    executionId INTEGER NOT NULL REFERENCES Execution(executionId)\n"
        "        ON DELETE CASCADE,\n"
        "    output TEXT,\n"                          # CLOB
        "    logLines TEXT,\n"                        # CLOB
        "    createdAt TEXT NOT NULL DEFAULT (datetime('now'))\n"
        ")"
    ),
    "Job": (
        "CREATE TABLE IF NOT EXISTS Job (\n"
        "    jobId INTEGER PRIMARY KEY AUTOINCREMENT,\n"
        "    workflowId INTEGER REFERENCES Workflow(workflowId)\n"
        "        ON DELETE SET NULL,\n"
        "    userId INTEGER REFERENCES User(userId),\n"
        "    workflowName TEXT NOT NULL DEFAULT 'workflow',\n"
        "    state TEXT NOT NULL DEFAULT 'QUEUED',\n"
        "    mapping TEXT NOT NULL DEFAULT 'simple',\n"
        "    inputSpec TEXT,\n"                       # CLOB (JSON)
        "    priority INTEGER NOT NULL DEFAULT 0,\n"
        "    timeoutSeconds REAL,\n"
        "    maxRetries INTEGER NOT NULL DEFAULT 0,\n"
        "    attempts INTEGER NOT NULL DEFAULT 0,\n"
        "    error TEXT,\n"
        "    result TEXT,\n"                          # CLOB (JSON outcome)
        "    logLines TEXT,\n"                        # CLOB
        "    queueSeconds REAL NOT NULL DEFAULT 0,\n"
        "    runSeconds REAL NOT NULL DEFAULT 0,\n"
        "    submittedAt TEXT NOT NULL DEFAULT (datetime('now')),\n"
        "    startedAt TEXT,\n"
        "    finishedAt TEXT\n"
        ")"
    ),
}

INDEXES: tuple[str, ...] = (
    "CREATE INDEX IF NOT EXISTS idx_pe_name ON ProcessingElement(peName)",
    "CREATE INDEX IF NOT EXISTS idx_pe_user ON ProcessingElement(userId)",
    "CREATE INDEX IF NOT EXISTS idx_wf_name ON Workflow(workflowName)",
    "CREATE INDEX IF NOT EXISTS idx_wf_user ON Workflow(userId)",
    "CREATE INDEX IF NOT EXISTS idx_exec_wf ON Execution(workflowId)",
    "CREATE INDEX IF NOT EXISTS idx_exec_user ON Execution(userId)",
    "CREATE INDEX IF NOT EXISTS idx_resp_exec ON Response(executionId)",
    "CREATE INDEX IF NOT EXISTS idx_wfpe_pe ON WorkflowPE(peId)",
    "CREATE INDEX IF NOT EXISTS idx_job_state ON Job(state)",
    "CREATE INDEX IF NOT EXISTS idx_job_wf ON Job(workflowId)",
    "CREATE INDEX IF NOT EXISTS idx_job_user ON Job(userId)",
    "CREATE INDEX IF NOT EXISTS idx_apikey_user ON ApiKey(userId)",
)

SCHEMA_STATEMENTS: tuple[str, ...] = tuple(TABLES.values()) + INDEXES


def schema_summary() -> list[dict]:
    """Table II as data: name, description and key relationships."""
    return [
        {
            "table": "User",
            "description": "Stores user information; one user to many workflows.",
        },
        {
            "table": "ApiKey",
            "description": (
                "Long-lived API credentials stored as SHA-256 digests; "
                "linked to a user, revocable individually."
            ),
        },
        {
            "table": "Workflow",
            "description": (
                "Details about each workflow; many PEs per workflow, "
                "executed multiple times by different users."
            ),
        },
        {
            "table": "ProcessingElement",
            "description": (
                "Reusable processing elements, associable with multiple "
                "workflows (via WorkflowPE)."
            ),
        },
        {
            "table": "Execution",
            "description": (
                "Tracks workflow executions with execution-specific "
                "details; linked to a workflow and user."
            ),
        },
        {
            "table": "Response",
            "description": (
                "Captures results of workflow executions; linked to a "
                "specific execution."
            ),
        },
        {
            "table": "Job",
            "description": (
                "Asynchronous workflow runs: queued submissions with "
                "lifecycle state, retry and timing accounting; linked to "
                "a workflow and user."
            ),
        },
    ]
