"""Convert plain Python functions into Laminar's PE class format.

The paper converted every CodeSearchNet function into a Processing
Element "using ANTLR, ensuring compatibility with Laminar's proprietary
PE format".  We perform the equivalent source-to-source transform: the
original function definition is nested, verbatim, inside the PE's
``_process`` method, which forwards the streamed data item to it.  The
logic therefore sits at the *top* of the class (right after the
docstring) with the boilerplate ``__init__`` trailing — the layout a
developer writing a PE produces, and the one that keeps the
distinguishing code in the truncated-prefix queries of the Fig 12/13
experiments.

Keeping the function verbatim (rather than inlining its body) preserves
its name and parameter structure for structural search, and works for
recursive functions unchanged.
"""

from __future__ import annotations

import ast
import textwrap

__all__ = ["function_to_pe", "pe_class_name"]


def pe_class_name(function_name: str, unique_suffix: str | None = None) -> str:
    """Derive the PE class name: ``moving_average`` -> ``MovingAveragePE``.

    ``unique_suffix`` disambiguates duplicate function names across the
    corpus, as the paper's unique identifiers do.
    """
    camel = "".join(part.capitalize() for part in function_name.split("_") if part)
    name = f"{camel}PE"
    if unique_suffix:
        name += f"_{unique_suffix}"
    return name


def function_to_pe(
    function_source: str,
    description: str | None = None,
    unique_suffix: str | None = None,
) -> tuple[str, str]:
    """Wrap a function definition in a Laminar PE class.

    Returns ``(class_name, class_source)``.  Functions taking several
    required arguments are fed from a tuple data item; single-argument
    functions receive the item directly.  Raises ``ValueError`` if the
    source does not define a function.
    """
    tree = ast.parse(function_source)
    func = next(
        (
            node
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )
    if func is None:
        raise ValueError("source does not define a function")

    args = func.args.args
    n_required = len(args) - len(func.args.defaults)
    class_name = pe_class_name(func.name, unique_suffix)
    docstring = (description or f"PE wrapping {func.name}.").replace('"""', "'")

    nested = textwrap.indent(textwrap.dedent(function_source).strip(), "        ")
    call = f"{func.name}(*data)" if n_required > 1 else f"{func.name}(data)"

    class_source = (
        f"class {class_name}(IterativePE):\n"
        f'    """{docstring}"""\n'
        f"\n"
        f"    def _process(self, data):\n"
        f"{nested}\n"
        f"        return {call}\n"
        f"\n"
        f"    def __init__(self):\n"
        f"        IterativePE.__init__(self)\n"
    )
    # Sanity: the generated class must itself parse.
    ast.parse(class_source)
    return class_name, class_source
