"""Corpus serialisation: JSONL export/import of CodeSearchNet-PE items.

The synthetic corpus is deterministic, but a serialised form is useful
for inspecting what an evaluation actually ran on, for diffing corpora
across code changes, and for loading the same corpus into external
tooling.  One JSON object per line, fields mirroring
:class:`~repro.datasets.codesearchnet.CorpusItem`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable

from repro.datasets.codesearchnet import CorpusItem

__all__ = ["dump_jsonl", "load_jsonl"]


def dump_jsonl(items: Iterable[CorpusItem], path: str | Path) -> int:
    """Write corpus items to a JSONL file; returns the item count."""
    count = 0
    with open(path, "w") as fh:
        for item in items:
            fh.write(json.dumps(dataclasses.asdict(item)) + "\n")
            count += 1
    return count


def load_jsonl(path: str | Path) -> list[CorpusItem]:
    """Read corpus items back from a JSONL file.

    Raises ``ValueError`` on malformed lines or missing fields so corpus
    corruption fails loudly rather than skewing an evaluation.
    """
    field_names = {f.name for f in dataclasses.fields(CorpusItem)}
    items: list[CorpusItem] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            missing = field_names - set(payload)
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: missing fields {sorted(missing)}"
                )
            extra = set(payload) - field_names
            if extra:
                raise ValueError(f"{path}:{lineno}: unknown fields {sorted(extra)}")
            items.append(CorpusItem(**payload))
    return items
