"""Generator for the synthetic *CodeSearchNet PE* corpus.

:func:`generate_corpus` produces ``n`` corpus items by cycling through
the function families of :mod:`repro.datasets.templates`, alternating
structural variants and identifier-rename seeds.  Every item carries:

* a unique id (paper: "each PE was given a unique identifier to avoid
  ambiguity"),
* the plain function source + reference description (the CodeSearchNet
  function/docstring pair),
* the PE class source (the ANTLR conversion step),
* its ``family`` key — the ground-truth semantic group used to label
  retrieval relevance in the evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.peconvert import function_to_pe
from repro.datasets.templates import FAMILIES, FunctionFamily, render_variant

__all__ = ["CorpusItem", "generate_corpus", "family_of"]


@dataclass(frozen=True)
class CorpusItem:
    """One synthetic CodeSearchNet-PE entry."""

    uid: str
    family: str
    function_name: str
    function_source: str
    pe_name: str
    pe_source: str
    description: str
    query: str
    variant: int
    seed: int


def generate_corpus(
    n: int = 200,
    families: tuple[FunctionFamily, ...] = FAMILIES,
    min_per_family: int = 2,
) -> list[CorpusItem]:
    """Generate ``n`` corpus items spread over the template families.

    Items are assigned round-robin: family order, then variant, then
    rename seed, so any prefix of the corpus covers many families and
    every family present has at least ``min_per_family`` members whenever
    ``n`` allows it (retrieval metrics need non-singleton relevant sets).
    """
    if n < 1:
        raise ValueError("corpus size must be >= 1")
    usable = max(1, min(len(families), n // min_per_family))
    chosen = families[:usable]

    items: list[CorpusItem] = []
    round_idx = 0
    while len(items) < n:
        for family in chosen:
            if len(items) >= n:
                break
            # Pair same-variant renders before moving to the next variant:
            # rounds 0,1 give variant 0 under two rename seeds (near-clones),
            # rounds 2,3 variant 1, and so on.  Families therefore contain
            # both clones (ReACC's strength) and structural variants
            # (Aroma's strength), like real CodeSearchNet duplicate groups.
            variant = (round_idx // 2) % len(family.variants)
            seed = round_idx
            fn_name, fn_source = render_variant(family, variant, seed)
            uid = f"{family.key}-{round_idx:04d}"
            pe_name, pe_source = function_to_pe(
                fn_source,
                description=family.description,
                unique_suffix=f"{round_idx:04d}",
            )
            items.append(
                CorpusItem(
                    uid=uid,
                    family=family.key,
                    function_name=fn_name,
                    function_source=fn_source,
                    pe_name=pe_name,
                    pe_source=pe_source,
                    description=family.description,
                    query=family.query,
                    variant=variant,
                    seed=seed,
                )
            )
        round_idx += 1
    return items


def family_of(items: list[CorpusItem]) -> dict[str, list[CorpusItem]]:
    """Group corpus items by ground-truth family."""
    groups: dict[str, list[CorpusItem]] = {}
    for item in items:
        groups.setdefault(item.family, []).append(item)
    return groups
