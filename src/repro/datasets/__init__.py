"""Synthetic *CodeSearchNet PE* corpus (DESIGN.md substitution S14).

The paper evaluates on ~450k CodeSearchNet Python function/description
pairs, converted into Laminar PEs and grouped by semantic similarity.
That corpus cannot be downloaded offline, so this package generates a
synthetic equivalent with the properties the evaluation depends on:

* realistic Python functions with natural-language reference
  descriptions (:mod:`repro.datasets.templates` — dozens of function
  *families* spanning string, math, collection, validation, stream and
  I/O-flavoured code);
* ground-truth relevance groups — every family member is "semantically
  similar" to the others, with structural variants and identifier
  renames inside each family (clones for ReACC, patterns for Aroma);
* conversion of plain functions into Laminar's PE class format
  (:mod:`repro.datasets.peconvert` — the paper used ANTLR for this);
* unique identifiers per PE to avoid duplicate-name ambiguity.

:func:`repro.datasets.codesearchnet.generate_corpus` is the entry point.
"""

from repro.datasets.codesearchnet import CorpusItem, generate_corpus
from repro.datasets.peconvert import function_to_pe
from repro.datasets.templates import FAMILIES, FunctionFamily, render_variant

__all__ = [
    "CorpusItem",
    "generate_corpus",
    "function_to_pe",
    "FAMILIES",
    "FunctionFamily",
    "render_variant",
]
