"""Function template families for the synthetic CodeSearchNet-PE corpus.

Each :class:`FunctionFamily` bundles a reference natural-language
description, a realistic search query, and several *structural variants*
of the same task (loop vs comprehension vs builtin, different control
flow).  Rendering a variant picks concrete identifier names from synonym
pools with a seeded RNG, so one family yields many distinct-but-related
functions:

* members of one family are each other's ground-truth relevant set for
  the retrieval evaluations (Figs 11–13);
* identifier renames inside a variant are near-clones (what ReACC is good
  at); different variants of a family share structure but not surface
  (what Aroma is good at).

All rendering is deterministic given ``(family, variant, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["FunctionFamily", "FAMILIES", "render_variant", "NAME_POOLS"]


@dataclass(frozen=True)
class FunctionFamily:
    """One semantic group of functions."""

    key: str
    description: str
    query: str
    fn_names: tuple[str, ...]
    variants: tuple[str, ...]
    slots: tuple[str, ...] = ()


#: Synonym pools for local-identifier slots used in the templates.
NAME_POOLS: dict[str, tuple[str, ...]] = {
    "val": ("value", "item", "elem", "entry", "cur", "v"),
    "acc": ("total", "acc", "result", "agg", "summed"),
    "out": ("out", "results", "collected", "output", "buf"),
    "seq": ("values", "items", "data", "records", "seq", "numbers"),
    "idx": ("i", "idx", "pos", "k"),
    "n": ("n", "count", "size", "length"),
    "key": ("key", "name", "field", "label"),
    "tmp": ("tmp", "scratch", "hold", "aux"),
    "lo": ("lo", "low", "left", "start"),
    "hi": ("hi", "high", "right", "end"),
    "s": ("text", "s", "string", "line"),
    "w": ("word", "token", "part", "chunk"),
    "d": ("mapping", "table", "lookup", "d"),
    "thr": ("threshold", "limit", "cutoff", "bound"),
}


FAMILIES: tuple[FunctionFamily, ...] = (
    FunctionFamily(
        key="is_prime",
        description="Check whether a given number is prime and return True if it is.",
        query="check if a number is prime",
        fn_names=("is_prime", "check_prime", "prime_test"),
        slots=("val", "idx"),
        variants=(
            "def {fn}({val}):\n"
            "    if {val} < 2:\n"
            "        return False\n"
            "    for {idx} in range(2, int({val} ** 0.5) + 1):\n"
            "        if {val} % {idx} == 0:\n"
            "            return False\n"
            "    return True\n",
            "def {fn}({val}):\n"
            "    return {val} > 1 and all({val} % {idx} != 0 for {idx} in range(2, {val}))\n",
            "def {fn}({val}):\n"
            "    if {val} in (2, 3):\n"
            "        return True\n"
            "    if {val} < 2 or {val} % 2 == 0:\n"
            "        return False\n"
            "    {idx} = 3\n"
            "    while {idx} * {idx} <= {val}:\n"
            "        if {val} % {idx} == 0:\n"
            "            return False\n"
            "        {idx} += 2\n"
            "    return True\n",
        ),
    ),
    FunctionFamily(
        key="moving_average",
        description="Compute the moving average of a sequence over a sliding window.",
        query="compute moving average over a sliding window",
        fn_names=("moving_average", "running_mean", "rolling_avg"),
        slots=("seq", "n", "acc", "out", "idx"),
        variants=(
            "def {fn}({seq}, {n}):\n"
            "    {out} = []\n"
            "    {acc} = 0.0\n"
            "    for {idx}, {val} in enumerate({seq}):\n"
            "        {acc} += {val}\n"
            "        if {idx} >= {n}:\n"
            "            {acc} -= {seq}[{idx} - {n}]\n"
            "        {out}.append({acc} / min({idx} + 1, {n}))\n"
            "    return {out}\n".replace("{val}", "sample"),
            "def {fn}({seq}, {n}):\n"
            "    return [sum({seq}[max(0, {idx} - {n} + 1):{idx} + 1]) / len({seq}[max(0, {idx} - {n} + 1):{idx} + 1])\n"
            "            for {idx} in range(len({seq}))]\n",
            "def {fn}({seq}, {n}):\n"
            "    {out} = []\n"
            "    for {idx} in range(len({seq}) - {n} + 1):\n"
            "        window = {seq}[{idx}:{idx} + {n}]\n"
            "        {out}.append(sum(window) / {n})\n"
            "    return {out}\n",
        ),
    ),
    FunctionFamily(
        key="word_count",
        description="Count the occurrences of each word in a text string.",
        query="count word frequencies in text",
        fn_names=("word_count", "count_words", "word_frequencies"),
        slots=("s", "w", "d"),
        variants=(
            "def {fn}({s}):\n"
            "    {d} = {{}}\n"
            "    for {w} in {s}.split():\n"
            "        {d}[{w}] = {d}.get({w}, 0) + 1\n"
            "    return {d}\n",
            "def {fn}({s}):\n"
            "    from collections import Counter\n"
            "    return dict(Counter({s}.split()))\n",
            "def {fn}({s}):\n"
            "    {d} = {{}}\n"
            "    for {w} in {s}.lower().split():\n"
            "        if {w} in {d}:\n"
            "            {d}[{w}] += 1\n"
            "        else:\n"
            "            {d}[{w}] = 1\n"
            "    return {d}\n",
        ),
    ),
    FunctionFamily(
        key="reverse_string",
        description="Reverse the characters of a string.",
        query="reverse a string",
        fn_names=("reverse_string", "string_reverse", "reversed_text"),
        slots=("s", "out", "val"),
        variants=(
            "def {fn}({s}):\n    return {s}[::-1]\n",
            "def {fn}({s}):\n"
            "    {out} = ''\n"
            "    for {val} in {s}:\n"
            "        {out} = {val} + {out}\n"
            "    return {out}\n",
            "def {fn}({s}):\n    return ''.join(reversed({s}))\n",
        ),
    ),
    FunctionFamily(
        key="flatten",
        description="Flatten a nested list of lists into a single flat list.",
        query="flatten nested lists",
        fn_names=("flatten", "flatten_list", "flat"),
        slots=("seq", "out", "val", "tmp"),
        variants=(
            "def {fn}({seq}):\n"
            "    {out} = []\n"
            "    for {tmp} in {seq}:\n"
            "        for {val} in {tmp}:\n"
            "            {out}.append({val})\n"
            "    return {out}\n",
            "def {fn}({seq}):\n"
            "    return [{val} for {tmp} in {seq} for {val} in {tmp}]\n",
            "def {fn}({seq}):\n"
            "    import itertools\n"
            "    return list(itertools.chain.from_iterable({seq}))\n",
        ),
    ),
    FunctionFamily(
        key="merge_dicts",
        description="Merge two dictionaries, with values from the second overriding the first.",
        query="merge two dictionaries",
        fn_names=("merge_dicts", "combine_maps", "dict_union"),
        slots=("d", "out", "key"),
        variants=(
            "def {fn}(first, second):\n"
            "    {out} = dict(first)\n"
            "    {out}.update(second)\n"
            "    return {out}\n",
            "def {fn}(first, second):\n    return {{**first, **second}}\n",
            "def {fn}(first, second):\n"
            "    {out} = {{}}\n"
            "    for {d} in (first, second):\n"
            "        for {key} in {d}:\n"
            "            {out}[{key}] = {d}[{key}]\n"
            "    return {out}\n",
        ),
    ),
    FunctionFamily(
        key="fibonacci",
        description="Compute the n-th Fibonacci number.",
        query="compute fibonacci numbers",
        fn_names=("fibonacci", "fib", "nth_fibonacci"),
        slots=("n", "lo", "hi", "idx"),
        variants=(
            "def {fn}({n}):\n"
            "    {lo}, {hi} = 0, 1\n"
            "    for {idx} in range({n}):\n"
            "        {lo}, {hi} = {hi}, {lo} + {hi}\n"
            "    return {lo}\n",
            "def {fn}({n}):\n"
            "    if {n} < 2:\n"
            "        return {n}\n"
            "    return {fn}({n} - 1) + {fn}({n} - 2)\n",
            "def {fn}({n}):\n"
            "    cache = [0, 1]\n"
            "    while len(cache) <= {n}:\n"
            "        cache.append(cache[-1] + cache[-2])\n"
            "    return cache[{n}]\n",
        ),
    ),
    FunctionFamily(
        key="factorial",
        description="Compute the factorial of a non-negative integer.",
        query="calculate factorial of a number",
        fn_names=("factorial", "fact", "compute_factorial"),
        slots=("n", "acc", "idx"),
        variants=(
            "def {fn}({n}):\n"
            "    {acc} = 1\n"
            "    for {idx} in range(2, {n} + 1):\n"
            "        {acc} *= {idx}\n"
            "    return {acc}\n",
            "def {fn}({n}):\n"
            "    if {n} <= 1:\n"
            "        return 1\n"
            "    return {n} * {fn}({n} - 1)\n",
            "def {fn}({n}):\n"
            "    import math\n"
            "    return math.factorial({n})\n",
        ),
    ),
    FunctionFamily(
        key="gcd",
        description="Compute the greatest common divisor of two integers.",
        query="greatest common divisor of two numbers",
        fn_names=("gcd", "greatest_common_divisor", "compute_gcd"),
        slots=("lo", "hi"),
        variants=(
            "def {fn}({lo}, {hi}):\n"
            "    while {hi}:\n"
            "        {lo}, {hi} = {hi}, {lo} % {hi}\n"
            "    return {lo}\n",
            "def {fn}({lo}, {hi}):\n"
            "    if {hi} == 0:\n"
            "        return {lo}\n"
            "    return {fn}({hi}, {lo} % {hi})\n",
            "def {fn}({lo}, {hi}):\n"
            "    import math\n"
            "    return math.gcd({lo}, {hi})\n",
        ),
    ),
    FunctionFamily(
        key="median",
        description="Compute the median value of a list of numbers.",
        query="find the median of a list",
        fn_names=("median", "middle_value", "compute_median"),
        slots=("seq", "tmp", "n"),
        variants=(
            "def {fn}({seq}):\n"
            "    {tmp} = sorted({seq})\n"
            "    {n} = len({tmp})\n"
            "    if {n} % 2 == 1:\n"
            "        return {tmp}[{n} // 2]\n"
            "    return ({tmp}[{n} // 2 - 1] + {tmp}[{n} // 2]) / 2\n",
            "def {fn}({seq}):\n"
            "    import statistics\n"
            "    return statistics.median({seq})\n",
            "def {fn}({seq}):\n"
            "    {tmp} = sorted({seq})\n"
            "    mid = len({tmp}) // 2\n"
            "    return {tmp}[mid] if len({tmp}) % 2 else sum({tmp}[mid - 1:mid + 1]) / 2\n",
        ),
    ),
    FunctionFamily(
        key="variance",
        description="Compute the variance of a sequence of numbers.",
        query="compute variance of numbers",
        fn_names=("variance", "var", "compute_variance"),
        slots=("seq", "acc", "val", "n"),
        variants=(
            "def {fn}({seq}):\n"
            "    {n} = len({seq})\n"
            "    mean = sum({seq}) / {n}\n"
            "    {acc} = 0.0\n"
            "    for {val} in {seq}:\n"
            "        {acc} += ({val} - mean) ** 2\n"
            "    return {acc} / {n}\n",
            "def {fn}({seq}):\n"
            "    mean = sum({seq}) / len({seq})\n"
            "    return sum(({val} - mean) ** 2 for {val} in {seq}) / len({seq})\n",
            "def {fn}({seq}):\n"
            "    import statistics\n"
            "    return statistics.pvariance({seq})\n",
        ),
    ),
    FunctionFamily(
        key="minmax_normalize",
        description="Normalize values in a list to the range zero to one using min-max scaling.",
        query="normalize values between 0 and 1",
        fn_names=("normalize", "minmax_scale", "rescale"),
        slots=("seq", "lo", "hi", "val"),
        variants=(
            "def {fn}({seq}):\n"
            "    {lo} = min({seq})\n"
            "    {hi} = max({seq})\n"
            "    span = {hi} - {lo} or 1\n"
            "    return [({val} - {lo}) / span for {val} in {seq}]\n",
            "def {fn}({seq}):\n"
            "    {lo}, {hi} = min({seq}), max({seq})\n"
            "    scaled = []\n"
            "    for {val} in {seq}:\n"
            "        scaled.append(({val} - {lo}) / (({hi} - {lo}) or 1))\n"
            "    return scaled\n",
        ),
    ),
    FunctionFamily(
        key="zscore_anomaly",
        description="Detect anomalies in sensor readings using the z-score threshold method.",
        query="a pe that is able to detect anomalies",
        fn_names=("detect_anomalies", "find_outliers", "anomaly_scan"),
        slots=("seq", "thr", "out", "val", "acc"),
        variants=(
            "def {fn}({seq}, {thr}=3.0):\n"
            "    mean = sum({seq}) / len({seq})\n"
            "    std = (sum(({val} - mean) ** 2 for {val} in {seq}) / len({seq})) ** 0.5\n"
            "    {out} = []\n"
            "    for {val} in {seq}:\n"
            "        if std and abs({val} - mean) / std > {thr}:\n"
            "            {out}.append({val})\n"
            "    return {out}\n",
            "def {fn}({seq}, {thr}=3.0):\n"
            "    mean = sum({seq}) / len({seq})\n"
            "    std = (sum(({val} - mean) ** 2 for {val} in {seq}) / len({seq})) ** 0.5 or 1.0\n"
            "    return [{val} for {val} in {seq} if abs({val} - mean) / std > {thr}]\n",
        ),
    ),
    FunctionFamily(
        key="c2f",
        description="Convert a temperature from Celsius to Fahrenheit degrees.",
        query="convert celsius to fahrenheit",
        fn_names=("celsius_to_fahrenheit", "c2f", "to_fahrenheit"),
        slots=("val",),
        variants=(
            "def {fn}({val}):\n    return {val} * 9 / 5 + 32\n",
            "def {fn}({val}):\n"
            "    degrees = {val} * 1.8\n"
            "    return degrees + 32\n",
        ),
    ),
    FunctionFamily(
        key="dedupe",
        description="Remove duplicate items from a list while preserving their order.",
        query="remove duplicates from a list keeping order",
        fn_names=("dedupe", "unique", "remove_duplicates"),
        slots=("seq", "out", "val", "tmp"),
        variants=(
            "def {fn}({seq}):\n"
            "    seen = set()\n"
            "    {out} = []\n"
            "    for {val} in {seq}:\n"
            "        if {val} not in seen:\n"
            "            seen.add({val})\n"
            "            {out}.append({val})\n"
            "    return {out}\n",
            "def {fn}({seq}):\n    return list(dict.fromkeys({seq}))\n",
            "def {fn}({seq}):\n"
            "    {out} = []\n"
            "    for {val} in {seq}:\n"
            "        if {val} not in {out}:\n"
            "            {out}.append({val})\n"
            "    return {out}\n",
        ),
    ),
    FunctionFamily(
        key="chunk",
        description="Split a list into consecutive chunks of a fixed size.",
        query="split list into chunks of size n",
        fn_names=("chunk", "chunks", "partition_list"),
        slots=("seq", "n", "idx"),
        variants=(
            "def {fn}({seq}, {n}):\n"
            "    return [{seq}[{idx}:{idx} + {n}] for {idx} in range(0, len({seq}), {n})]\n",
            "def {fn}({seq}, {n}):\n"
            "    pieces = []\n"
            "    {idx} = 0\n"
            "    while {idx} < len({seq}):\n"
            "        pieces.append({seq}[{idx}:{idx} + {n}])\n"
            "        {idx} += {n}\n"
            "    return pieces\n",
        ),
    ),
    FunctionFamily(
        key="parse_csv_line",
        description="Parse a comma separated line into a list of trimmed fields.",
        query="parse a csv line into fields",
        fn_names=("parse_csv_line", "split_csv", "csv_fields"),
        slots=("s", "w", "out"),
        variants=(
            "def {fn}({s}):\n"
            "    return [{w}.strip() for {w} in {s}.split(',')]\n",
            "def {fn}({s}):\n"
            "    {out} = []\n"
            "    for {w} in {s}.split(','):\n"
            "        {out}.append({w}.strip())\n"
            "    return {out}\n",
            "def {fn}({s}):\n"
            "    import csv\n"
            "    return next(csv.reader([{s}]))\n",
        ),
    ),
    FunctionFamily(
        key="filter_keys",
        description="Return a copy of a dictionary containing only the requested keys.",
        query="filter dictionary by keys",
        fn_names=("filter_keys", "pick", "select_keys"),
        slots=("d", "key", "out"),
        variants=(
            "def {fn}({d}, wanted):\n"
            "    return {{{key}: {d}[{key}] for {key} in wanted if {key} in {d}}}\n",
            "def {fn}({d}, wanted):\n"
            "    {out} = {{}}\n"
            "    for {key} in wanted:\n"
            "        if {key} in {d}:\n"
            "            {out}[{key}] = {d}[{key}]\n"
            "    return {out}\n",
        ),
    ),
    FunctionFamily(
        key="count_vowels",
        description="Count how many vowels appear in a string.",
        query="count vowels in a string",
        fn_names=("count_vowels", "vowel_count", "num_vowels"),
        slots=("s", "acc", "val"),
        variants=(
            "def {fn}({s}):\n"
            "    {acc} = 0\n"
            "    for {val} in {s}.lower():\n"
            "        if {val} in 'aeiou':\n"
            "            {acc} += 1\n"
            "    return {acc}\n",
            "def {fn}({s}):\n"
            "    return sum(1 for {val} in {s}.lower() if {val} in 'aeiou')\n",
        ),
    ),
    FunctionFamily(
        key="palindrome",
        description="Check whether a string reads the same forwards and backwards.",
        query="check if string is a palindrome",
        fn_names=("is_palindrome", "palindrome_check", "reads_same"),
        slots=("s", "lo", "hi"),
        variants=(
            "def {fn}({s}):\n"
            "    cleaned = {s}.lower()\n"
            "    return cleaned == cleaned[::-1]\n",
            "def {fn}({s}):\n"
            "    {lo}, {hi} = 0, len({s}) - 1\n"
            "    while {lo} < {hi}:\n"
            "        if {s}[{lo}] != {s}[{hi}]:\n"
            "            return False\n"
            "        {lo} += 1\n"
            "        {hi} -= 1\n"
            "    return True\n",
        ),
    ),
    FunctionFamily(
        key="caesar",
        description="Encrypt text with a Caesar cipher shifting letters by a fixed amount.",
        query="caesar cipher encrypt text",
        fn_names=("caesar_encrypt", "shift_cipher", "rotate_text"),
        slots=("s", "n", "out", "val"),
        variants=(
            "def {fn}({s}, {n}):\n"
            "    {out} = []\n"
            "    for {val} in {s}:\n"
            "        if {val}.isalpha():\n"
            "            base = ord('a') if {val}.islower() else ord('A')\n"
            "            {out}.append(chr((ord({val}) - base + {n}) % 26 + base))\n"
            "        else:\n"
            "            {out}.append({val})\n"
            "    return ''.join({out})\n",
            "def {fn}({s}, {n}):\n"
            "    return ''.join(\n"
            "        chr((ord({val}) - 97 + {n}) % 26 + 97) if {val}.isalpha() else {val}\n"
            "        for {val} in {s}.lower()\n"
            "    )\n",
        ),
    ),
    FunctionFamily(
        key="hex_encode",
        description="Encode a byte string into its hexadecimal representation.",
        query="encode bytes as hex string",
        fn_names=("hex_encode", "to_hex", "bytes_to_hex"),
        slots=("s", "val"),
        variants=(
            "def {fn}({s}):\n    return {s}.hex()\n",
            "def {fn}({s}):\n"
            "    return ''.join(format({val}, '02x') for {val} in {s})\n",
        ),
    ),
    FunctionFamily(
        key="binary_search",
        description="Find the index of a target value in a sorted list using binary search.",
        query="binary search in sorted list",
        fn_names=("binary_search", "bsearch", "find_sorted"),
        slots=("seq", "lo", "hi", "val"),
        variants=(
            "def {fn}({seq}, target):\n"
            "    {lo}, {hi} = 0, len({seq}) - 1\n"
            "    while {lo} <= {hi}:\n"
            "        mid = ({lo} + {hi}) // 2\n"
            "        {val} = {seq}[mid]\n"
            "        if {val} == target:\n"
            "            return mid\n"
            "        if {val} < target:\n"
            "            {lo} = mid + 1\n"
            "        else:\n"
            "            {hi} = mid - 1\n"
            "    return -1\n",
            "def {fn}({seq}, target):\n"
            "    import bisect\n"
            "    {lo} = bisect.bisect_left({seq}, target)\n"
            "    if {lo} < len({seq}) and {seq}[{lo}] == target:\n"
            "        return {lo}\n"
            "    return -1\n",
        ),
    ),
    FunctionFamily(
        key="insertion_sort",
        description="Sort a list of numbers in ascending order using insertion sort.",
        query="sort a list with insertion sort",
        fn_names=("insertion_sort", "insert_sort", "sort_by_insertion"),
        slots=("seq", "idx", "val", "tmp"),
        variants=(
            "def {fn}({seq}):\n"
            "    for {idx} in range(1, len({seq})):\n"
            "        {val} = {seq}[{idx}]\n"
            "        {tmp} = {idx} - 1\n"
            "        while {tmp} >= 0 and {seq}[{tmp}] > {val}:\n"
            "            {seq}[{tmp} + 1] = {seq}[{tmp}]\n"
            "            {tmp} -= 1\n"
            "        {seq}[{tmp} + 1] = {val}\n"
            "    return {seq}\n",
            "def {fn}({seq}):\n"
            "    sorted_part = []\n"
            "    for {val} in {seq}:\n"
            "        {idx} = 0\n"
            "        while {idx} < len(sorted_part) and sorted_part[{idx}] < {val}:\n"
            "            {idx} += 1\n"
            "        sorted_part.insert({idx}, {val})\n"
            "    return sorted_part\n",
        ),
    ),
    FunctionFamily(
        key="transpose",
        description="Transpose a two dimensional matrix represented as a list of rows.",
        query="transpose a matrix",
        fn_names=("transpose", "matrix_transpose", "flip_axes"),
        slots=("seq", "idx", "out"),
        variants=(
            "def {fn}({seq}):\n    return [list(row) for row in zip(*{seq})]\n",
            "def {fn}({seq}):\n"
            "    {out} = []\n"
            "    for {idx} in range(len({seq}[0])):\n"
            "        {out}.append([row[{idx}] for row in {seq}])\n"
            "    return {out}\n",
        ),
    ),
    FunctionFamily(
        key="dot_product",
        description="Compute the dot product of two equal-length numeric vectors.",
        query="dot product of two vectors",
        fn_names=("dot_product", "dot", "inner_product"),
        slots=("acc", "val", "idx"),
        variants=(
            "def {fn}(xs, ys):\n"
            "    {acc} = 0\n"
            "    for {idx} in range(len(xs)):\n"
            "        {acc} += xs[{idx}] * ys[{idx}]\n"
            "    return {acc}\n",
            "def {fn}(xs, ys):\n"
            "    return sum(a * b for a, b in zip(xs, ys))\n",
        ),
    ),
    FunctionFamily(
        key="levenshtein",
        description="Compute the Levenshtein edit distance between two strings.",
        query="edit distance between two strings",
        fn_names=("levenshtein", "edit_distance", "string_distance"),
        slots=("s", "idx", "tmp"),
        variants=(
            "def {fn}(first, second):\n"
            "    if not first:\n"
            "        return len(second)\n"
            "    if not second:\n"
            "        return len(first)\n"
            "    prev = list(range(len(second) + 1))\n"
            "    for {idx}, a in enumerate(first, 1):\n"
            "        row = [{idx}]\n"
            "        for j, b in enumerate(second, 1):\n"
            "            row.append(min(prev[j] + 1, row[-1] + 1, prev[j - 1] + (a != b)))\n"
            "        prev = row\n"
            "    return prev[-1]\n",
            "def {fn}(first, second):\n"
            "    if first == second:\n"
            "        return 0\n"
            "    if not first or not second:\n"
            "        return max(len(first), len(second))\n"
            "    if first[0] == second[0]:\n"
            "        return {fn}(first[1:], second[1:])\n"
            "    return 1 + min(\n"
            "        {fn}(first[1:], second),\n"
            "        {fn}(first, second[1:]),\n"
            "        {fn}(first[1:], second[1:]),\n"
            "    )\n",
        ),
    ),
    FunctionFamily(
        key="parse_query",
        description="Parse a URL query string into a dictionary of parameters.",
        query="parse url query string parameters",
        fn_names=("parse_query", "query_params", "parse_querystring"),
        slots=("s", "d", "w"),
        variants=(
            "def {fn}({s}):\n"
            "    {d} = {{}}\n"
            "    for {w} in {s}.split('&'):\n"
            "        if '=' in {w}:\n"
            "            name, _, val = {w}.partition('=')\n"
            "            {d}[name] = val\n"
            "    return {d}\n",
            "def {fn}({s}):\n"
            "    from urllib.parse import parse_qs\n"
            "    return {{k: v[0] for k, v in parse_qs({s}).items()}}\n",
        ),
    ),
    FunctionFamily(
        key="valid_email",
        description="Validate that a string looks like a well-formed email address.",
        query="validate an email address",
        fn_names=("valid_email", "is_email", "check_email"),
        slots=("s",),
        variants=(
            "def {fn}({s}):\n"
            "    import re\n"
            "    return bool(re.match(r'^[\\w.+-]+@[\\w-]+\\.[\\w.]+$', {s}))\n",
            "def {fn}({s}):\n"
            "    if '@' not in {s}:\n"
            "        return False\n"
            "    local, _, domain = {s}.partition('@')\n"
            "    return bool(local) and '.' in domain\n",
        ),
    ),
    FunctionFamily(
        key="format_timestamp",
        description="Format a unix timestamp as a human readable date string.",
        query="format unix timestamp as date string",
        fn_names=("format_timestamp", "ts_to_string", "human_time"),
        slots=("val",),
        variants=(
            "def {fn}({val}):\n"
            "    import datetime\n"
            "    return datetime.datetime.utcfromtimestamp({val}).strftime('%Y-%m-%d %H:%M:%S')\n",
            "def {fn}({val}):\n"
            "    import time\n"
            "    return time.strftime('%Y-%m-%d %H:%M:%S', time.gmtime({val}))\n",
        ),
    ),
    FunctionFamily(
        key="window_max",
        description="Compute the maximum of each sliding window over a sequence.",
        query="sliding window maximum",
        fn_names=("window_max", "sliding_max", "rolling_maximum"),
        slots=("seq", "n", "out", "idx"),
        variants=(
            "def {fn}({seq}, {n}):\n"
            "    {out} = []\n"
            "    for {idx} in range(len({seq}) - {n} + 1):\n"
            "        {out}.append(max({seq}[{idx}:{idx} + {n}]))\n"
            "    return {out}\n",
            "def {fn}({seq}, {n}):\n"
            "    return [max({seq}[{idx}:{idx} + {n}]) for {idx} in range(len({seq}) - {n} + 1)]\n",
        ),
    ),
    FunctionFamily(
        key="top_k",
        description="Return the k most frequent items of a sequence.",
        query="find the most frequent elements",
        fn_names=("top_k", "most_frequent", "top_items"),
        slots=("seq", "n", "d", "val"),
        variants=(
            "def {fn}({seq}, {n}):\n"
            "    from collections import Counter\n"
            "    return [item for item, _ in Counter({seq}).most_common({n})]\n",
            "def {fn}({seq}, {n}):\n"
            "    {d} = {{}}\n"
            "    for {val} in {seq}:\n"
            "        {d}[{val}] = {d}.get({val}, 0) + 1\n"
            "    ranked = sorted({d}, key={d}.get, reverse=True)\n"
            "    return ranked[:{n}]\n",
        ),
    ),
    FunctionFamily(
        key="group_by",
        description="Group a sequence of records by the value of a key function.",
        query="group records by key",
        fn_names=("group_by", "bucket_by", "group_records"),
        slots=("seq", "d", "val", "key"),
        variants=(
            "def {fn}({seq}, keyfn):\n"
            "    {d} = {{}}\n"
            "    for {val} in {seq}:\n"
            "        {d}.setdefault(keyfn({val}), []).append({val})\n"
            "    return {d}\n",
            "def {fn}({seq}, keyfn):\n"
            "    {d} = {{}}\n"
            "    for {val} in {seq}:\n"
            "        {key} = keyfn({val})\n"
            "        if {key} not in {d}:\n"
            "            {d}[{key}] = []\n"
            "        {d}[{key}].append({val})\n"
            "    return {d}\n",
        ),
    ),
    FunctionFamily(
        key="clamp",
        description="Clamp every number in a list between a lower and upper bound.",
        query="clamp values to a range",
        fn_names=("clamp_all", "clip_values", "bound_values"),
        slots=("seq", "lo", "hi", "val"),
        variants=(
            "def {fn}({seq}, {lo}, {hi}):\n"
            "    return [min(max({val}, {lo}), {hi}) for {val} in {seq}]\n",
            "def {fn}({seq}, {lo}, {hi}):\n"
            "    bounded = []\n"
            "    for {val} in {seq}:\n"
            "        if {val} < {lo}:\n"
            "            bounded.append({lo})\n"
            "        elif {val} > {hi}:\n"
            "            bounded.append({hi})\n"
            "        else:\n"
            "            bounded.append({val})\n"
            "    return bounded\n",
        ),
    ),
    FunctionFamily(
        key="histogram",
        description="Build a histogram of values bucketed into equal-width bins.",
        query="build histogram with fixed bins",
        fn_names=("histogram", "bin_values", "make_histogram"),
        slots=("seq", "n", "d", "val", "lo", "hi"),
        variants=(
            "def {fn}({seq}, {n}):\n"
            "    {lo}, {hi} = min({seq}), max({seq})\n"
            "    width = ({hi} - {lo}) / {n} or 1\n"
            "    {d} = [0] * {n}\n"
            "    for {val} in {seq}:\n"
            "        slot = min(int(({val} - {lo}) / width), {n} - 1)\n"
            "        {d}[slot] += 1\n"
            "    return {d}\n",
            "def {fn}({seq}, {n}):\n"
            "    {lo}, {hi} = min({seq}), max({seq})\n"
            "    width = (({hi} - {lo}) or 1) / {n}\n"
            "    return [sum(1 for {val} in {seq}\n"
            "                if {lo} + slot * width <= {val} < {lo} + (slot + 1) * width or\n"
            "                (slot == {n} - 1 and {val} == {hi}))\n"
            "            for slot in range({n})]\n",
        ),
    ),
    FunctionFamily(
        key="running_total",
        description="Compute the cumulative running total of a numeric sequence.",
        query="cumulative sum of a list",
        fn_names=("running_total", "cumsum", "prefix_sums"),
        slots=("seq", "acc", "out", "val"),
        variants=(
            "def {fn}({seq}):\n"
            "    {acc} = 0\n"
            "    {out} = []\n"
            "    for {val} in {seq}:\n"
            "        {acc} += {val}\n"
            "        {out}.append({acc})\n"
            "    return {out}\n",
            "def {fn}({seq}):\n"
            "    import itertools\n"
            "    return list(itertools.accumulate({seq}))\n",
        ),
    ),
    FunctionFamily(
        key="strip_html",
        description="Remove HTML tags from a string, keeping only the text content.",
        query="strip html tags from text",
        fn_names=("strip_html", "remove_tags", "html_to_text"),
        slots=("s", "out", "val"),
        variants=(
            "def {fn}({s}):\n"
            "    import re\n"
            "    return re.sub(r'<[^>]+>', '', {s})\n",
            "def {fn}({s}):\n"
            "    {out} = []\n"
            "    inside = False\n"
            "    for {val} in {s}:\n"
            "        if {val} == '<':\n"
            "            inside = True\n"
            "        elif {val} == '>':\n"
            "            inside = False\n"
            "        elif not inside:\n"
            "            {out}.append({val})\n"
            "    return ''.join({out})\n",
        ),
    ),
    FunctionFamily(
        key="safe_get",
        description="Fetch a nested value from a dictionary by a dotted path with a default.",
        query="get nested dictionary value by path",
        fn_names=("safe_get", "dig", "get_path"),
        slots=("d", "key", "val"),
        variants=(
            "def {fn}({d}, path, default=None):\n"
            "    {val} = {d}\n"
            "    for {key} in path.split('.'):\n"
            "        if not isinstance({val}, dict) or {key} not in {val}:\n"
            "            return default\n"
            "        {val} = {val}[{key}]\n"
            "    return {val}\n",
            "def {fn}({d}, path, default=None):\n"
            "    try:\n"
            "        for {key} in path.split('.'):\n"
            "            {d} = {d}[{key}]\n"
            "        return {d}\n"
            "    except (KeyError, TypeError):\n"
            "        return default\n",
        ),
    ),
    FunctionFamily(
        key="retry_call",
        description="Call a function, retrying a fixed number of times on exception.",
        query="retry a function call on failure",
        fn_names=("retry_call", "with_retries", "call_with_retry"),
        slots=("n", "idx"),
        variants=(
            "def {fn}(func, {n}=3):\n"
            "    last = None\n"
            "    for {idx} in range({n}):\n"
            "        try:\n"
            "            return func()\n"
            "        except Exception as exc:\n"
            "            last = exc\n"
            "    raise last\n",
            "def {fn}(func, {n}=3):\n"
            "    while True:\n"
            "        {n} -= 1\n"
            "        try:\n"
            "            return func()\n"
            "        except Exception:\n"
            "            if {n} <= 0:\n"
            "                raise\n",
        ),
    ),
    FunctionFamily(
        key="slugify",
        description="Convert a title string into a lowercase URL slug with hyphens.",
        query="convert text to a url slug",
        fn_names=("slugify", "to_slug", "make_slug"),
        slots=("s", "w", "out"),
        variants=(
            "def {fn}({s}):\n"
            "    import re\n"
            "    cleaned = re.sub(r'[^a-z0-9]+', '-', {s}.lower())\n"
            "    return cleaned.strip('-')\n",
            "def {fn}({s}):\n"
            "    {out} = []\n"
            "    for {w} in {s}.lower().split():\n"
            "        {out}.append(''.join(c for c in {w} if c.isalnum()))\n"
            "    return '-'.join(p for p in {out} if p)\n",
        ),
    ),
    FunctionFamily(
        key="roman",
        description="Convert an integer into its Roman numeral representation.",
        query="convert number to roman numerals",
        fn_names=("to_roman", "roman_numeral", "int_to_roman"),
        slots=("n", "out", "val"),
        variants=(
            "def {fn}({n}):\n"
            "    pairs = [(1000, 'M'), (900, 'CM'), (500, 'D'), (400, 'CD'),\n"
            "             (100, 'C'), (90, 'XC'), (50, 'L'), (40, 'XL'),\n"
            "             (10, 'X'), (9, 'IX'), (5, 'V'), (4, 'IV'), (1, 'I')]\n"
            "    {out} = []\n"
            "    for {val}, symbol in pairs:\n"
            "        while {n} >= {val}:\n"
            "            {out}.append(symbol)\n"
            "            {n} -= {val}\n"
            "    return ''.join({out})\n",
            "def {fn}({n}):\n"
            "    pairs = ((1000, 'M'), (900, 'CM'), (500, 'D'), (400, 'CD'),\n"
            "             (100, 'C'), (90, 'XC'), (50, 'L'), (40, 'XL'),\n"
            "             (10, 'X'), (9, 'IX'), (5, 'V'), (4, 'IV'), (1, 'I'))\n"
            "    if {n} == 0:\n"
            "        return ''\n"
            "    for {val}, symbol in pairs:\n"
            "        if {n} >= {val}:\n"
            "            return symbol + {fn}({n} - {val})\n",
        ),
    ),
    FunctionFamily(
        key="mode",
        description="Find the most common value in a sequence.",
        query="most common value in a list",
        fn_names=("mode", "most_common_value", "majority"),
        slots=("seq", "d", "val"),
        variants=(
            "def {fn}({seq}):\n"
            "    from collections import Counter\n"
            "    return Counter({seq}).most_common(1)[0][0]\n",
            "def {fn}({seq}):\n"
            "    {d} = {{}}\n"
            "    for {val} in {seq}:\n"
            "        {d}[{val}] = {d}.get({val}, 0) + 1\n"
            "    return max({d}, key={d}.get)\n",
            "def {fn}({seq}):\n"
            "    import statistics\n"
            "    return statistics.mode({seq})\n",
        ),
    ),
    FunctionFamily(
        key="matmul",
        description="Multiply two matrices represented as nested lists.",
        query="multiply two matrices",
        fn_names=("matmul", "matrix_multiply", "mat_product"),
        slots=("out", "idx", "acc"),
        variants=(
            "def {fn}(a, b):\n"
            "    rows, inner, cols = len(a), len(b), len(b[0])\n"
            "    {out} = [[0] * cols for _ in range(rows)]\n"
            "    for i in range(rows):\n"
            "        for j in range(cols):\n"
            "            {acc} = 0\n"
            "            for {idx} in range(inner):\n"
            "                {acc} += a[i][{idx}] * b[{idx}][j]\n"
            "            {out}[i][j] = {acc}\n"
            "    return {out}\n",
            "def {fn}(a, b):\n"
            "    return [[sum(x * y for x, y in zip(row, col)) for col in zip(*b)]\n"
            "            for row in a]\n",
        ),
    ),
    FunctionFamily(
        key="valid_ip",
        description="Validate that a string is a well-formed IPv4 address.",
        query="validate an ipv4 address",
        fn_names=("valid_ip", "is_ipv4", "check_ip_address"),
        slots=("s", "w"),
        variants=(
            "def {fn}({s}):\n"
            "    parts = {s}.split('.')\n"
            "    if len(parts) != 4:\n"
            "        return False\n"
            "    for {w} in parts:\n"
            "        if not {w}.isdigit() or not 0 <= int({w}) <= 255:\n"
            "            return False\n"
            "    return True\n",
            "def {fn}({s}):\n"
            "    import re\n"
            "    octet = r'(25[0-5]|2[0-4]\\d|1?\\d?\\d)'\n"
            "    return bool(re.fullmatch(rf'{{octet}}(\\.{{octet}}){{{{3}}}}', {s}))\n",
        ),
    ),
    FunctionFamily(
        key="flatten_json",
        description="Flatten a nested dictionary into dotted-path keys.",
        query="flatten nested dictionary keys",
        fn_names=("flatten_json", "flatten_dict", "dotted_keys"),
        slots=("d", "out", "key", "val"),
        variants=(
            "def {fn}({d}):\n"
            "    {out} = {{}}\n"
            "    stack = [('', {d})]\n"
            "    while stack:\n"
            "        prefix, node = stack.pop()\n"
            "        for {key}, {val} in node.items():\n"
            "            dotted = prefix + '.' + {key} if prefix else {key}\n"
            "            if isinstance({val}, dict):\n"
            "                stack.append((dotted, {val}))\n"
            "            else:\n"
            "                {out}[dotted] = {val}\n"
            "    return {out}\n",
            "def {fn}({d}, prefix=''):\n"
            "    {out} = {{}}\n"
            "    for {key}, {val} in {d}.items():\n"
            "        dotted = prefix + '.' + {key} if prefix else {key}\n"
            "        if isinstance({val}, dict):\n"
            "            {out}.update({fn}({val}, dotted))\n"
            "        else:\n"
            "            {out}[dotted] = {val}\n"
            "    return {out}\n",
        ),
    ),
    FunctionFamily(
        key="interpolate",
        description="Linearly interpolate between two numbers by a ratio.",
        query="linear interpolation between values",
        fn_names=("lerp", "interpolate", "linear_interp"),
        slots=("lo", "hi", "val"),
        variants=(
            "def {fn}({lo}, {hi}, {val}):\n"
            "    return {lo} + ({hi} - {lo}) * {val}\n",
            "def {fn}({lo}, {hi}, {val}):\n"
            "    return {lo} * (1 - {val}) + {hi} * {val}\n",
        ),
    ),
    FunctionFamily(
        key="title_case",
        description="Capitalize the first letter of every word in a string.",
        query="capitalize every word in text",
        fn_names=("title_case", "capitalize_words", "to_title"),
        slots=("s", "w", "out"),
        variants=(
            "def {fn}({s}):\n"
            "    return ' '.join({w}.capitalize() for {w} in {s}.split())\n",
            "def {fn}({s}):\n"
            "    {out} = []\n"
            "    for {w} in {s}.split():\n"
            "        {out}.append({w}[0].upper() + {w}[1:].lower() if {w} else {w})\n"
            "    return ' '.join({out})\n",
        ),
    ),
    FunctionFamily(
        key="rate_limit_filter",
        description="Filter a stream of timestamped events to at most one per interval.",
        query="throttle events to one per time interval",
        fn_names=("rate_limit", "throttle_events", "debounce_stream"),
        slots=("seq", "out", "val", "thr"),
        variants=(
            "def {fn}({seq}, interval):\n"
            "    {out} = []\n"
            "    {thr} = None\n"
            "    for {val} in {seq}:\n"
            "        if {thr} is None or {val} - {thr} >= interval:\n"
            "            {out}.append({val})\n"
            "            {thr} = {val}\n"
            "    return {out}\n",
            "def {fn}({seq}, interval):\n"
            "    kept = []\n"
            "    last = float('-inf')\n"
            "    for {val} in {seq}:\n"
            "        if {val} - last >= interval:\n"
            "            kept.append({val})\n"
            "            last = {val}\n"
            "    return kept\n",
        ),
    ),
)


def render_variant(
    family: FunctionFamily, variant: int, seed: int = 0
) -> tuple[str, str]:
    """Render one concrete function: returns ``(function_name, source)``.

    ``seed`` steers identifier choice: the function name cycles through
    the family's synonyms and each slot gets a distinct local name from
    its pool, so equal seeds reproduce identical sources.
    """
    template = family.variants[variant % len(family.variants)]
    rng = random.Random((hash(family.key) & 0xFFFF) * 1_000_003 + seed)
    # Both the function name and the locals vary with the seed: same-variant
    # renders are *renamed* clones (identical structure, different surface),
    # which is what separates structural from surface-form search.
    fn_name = family.fn_names[(variant + seed) % len(family.fn_names)]

    chosen: dict[str, str] = {"fn": fn_name}
    used: set[str] = {fn_name}
    for slot in family.slots:
        pool = [n for n in NAME_POOLS[slot] if n not in used]
        if not pool:  # pragma: no cover - pools are large enough
            pool = list(NAME_POOLS[slot])
        name = rng.choice(pool)
        chosen[slot] = name
        used.add(name)
    return fn_name, template.format(**chosen)
