"""The ``multi`` mapping: static workload distribution over processes.

Mirrors dispel4py's multiprocessing mapping: the requested number of OS
processes is statically partitioned among the PEs of the graph
(:func:`~repro.d4py.mappings.base.partition_processes`), each rank runs one
PE instance, and data items travel between ranks through per-rank inbox
queues.  Termination uses the classic dataflow protocol — every upstream
instance broadcasts a STOP marker on each outgoing edge when it finishes,
and an instance retires once it has seen STOPs from every upstream instance
on every incoming edge.

The implementation relies on the ``fork`` start method (Linux), so workers
inherit the workflow graph without pickling.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from typing import Any

from repro.d4py.core import GenericPE
from repro.d4py.grouping import Grouping
from repro.d4py.mappings.base import (
    RunResult,
    leaf_ports,
    normalize_inputs,
    partition_processes,
)
from repro.d4py.workflow import WorkflowGraph

_STOP = ("__STOP__",)
#: First element of a micro-batch frame ``(_BATCH, to_input, [payloads])``.
_BATCH = ("__BATCH__",)

#: Hard ceiling on how long the parent waits for worker completion before
#: declaring the run wedged (seconds).
_JOIN_TIMEOUT = 120.0


class _CollectorWriter:
    """Child-process stdout shim: lines travel to the parent's collector.

    Forked workers inherit the parent's ``sys.stdout``; printing there
    would bypass the engine's streaming capture, so each worker installs
    this writer and its prints arrive in ``RunResult.logs`` instead.
    """

    def __init__(self, collector: mp.Queue) -> None:
        self._collector = collector
        self._buffer = ""

    def write(self, text: str) -> int:
        """Buffer text; completed lines travel to the parent collector."""
        data = self._buffer + text
        *lines, self._buffer = data.split("\n")
        for line in lines:
            self._collector.put(("log", line))
        return len(text)

    def flush(self) -> None:
        """Send any unterminated tail line to the collector."""
        if self._buffer:
            self._collector.put(("log", self._buffer))
            self._buffer = ""


def _worker(
    rank: int,
    pe: GenericPE,
    instance: int,
    invocations: list[dict[str, Any]],
    out_edges: list[tuple[str, str, Grouping, range]],
    expected_stops: int,
    inboxes: dict[int, mp.Queue],
    collector: mp.Queue,
    leaves: set[tuple[str, str]],
    verbose: bool,
    traced: bool = False,
    batch_max_items: int = 1,
) -> None:
    """Run one PE instance on one rank until its input streams drain."""
    import sys

    sys.stdout = _CollectorWriter(collector)
    counters: dict[int, int] = {}
    iterations = 0
    busy = 0.0
    # Micro-batch buffers per (dest rank, input port).  Routing happens
    # *before* buffering, so group_by partitioning is unchanged — a frame
    # only ever carries items for the one rank it is addressed to.
    buffers: dict[tuple[int, str], list] = {}

    def flush(key: tuple[int, str]) -> None:
        payloads = buffers.pop(key, None)
        if payloads:
            dest_rank, to_input = key
            inboxes[dest_rank].put((_BATCH, to_input, payloads))

    def flush_all() -> None:
        for key in list(buffers):
            flush(key)

    def emit(output: str, data: Any) -> None:
        if (pe.name, output) in leaves:
            collector.put(("output", pe.name, output, data))
        for edge_idx, (from_output, to_input, grouping, dest_ranks) in enumerate(
            out_edges
        ):
            if from_output != output:
                continue
            count = counters.get(edge_idx, 0)
            counters[edge_idx] = count + 1
            for offset in grouping.route(data, len(dest_ranks), count):
                if batch_max_items <= 1:
                    inboxes[dest_ranks[offset]].put((to_input, data))
                    continue
                key = (dest_ranks[offset], to_input)
                buffers.setdefault(key, []).append(data)
                if len(buffers[key]) >= batch_max_items:
                    flush(key)

    pe.rank = rank
    pe._set_emitter(emit)
    pe._set_logger(lambda msg: collector.put(("log", msg)))
    pe.preprocess()

    import time as _time

    span_started = _time.time()
    span_perf = _time.perf_counter()
    try:
        for inputs in invocations:
            started = _time.perf_counter()
            pe.process(dict(inputs))
            busy += _time.perf_counter() - started
            iterations += 1

        stops_seen = 0
        inbox = inboxes[rank]
        while stops_seen < expected_stops:
            try:
                msg = inbox.get_nowait()
            except queue_mod.Empty:
                # About to block: hand off every under-full frame first so
                # no item sits in a local buffer while downstream starves.
                flush_all()
                msg = inbox.get()
            if msg == _STOP:
                stops_seen += 1
                continue
            if len(msg) == 3 and msg[0] == _BATCH:
                _marker, to_input, payloads = msg
            else:
                to_input, data = msg
                payloads = [data]
            for data in payloads:
                started = _time.perf_counter()
                pe.process({to_input: data})
                busy += _time.perf_counter() - started
                iterations += 1
        pe.postprocess()
    except Exception as exc:  # surface worker failures to the parent
        collector.put(("error", rank, f"{type(exc).__name__}: {exc}"))
    finally:
        # Buffered frames must reach their destinations before the STOPs
        # that tell those destinations their streams are exhausted.
        flush_all()
        # One STOP per (edge, dest instance): downstream instances count
        # these to know when their input streams are exhausted.
        for _from_output, _to_input, _grouping, dest_ranks in out_edges:
            for dest in dest_ranks:
                inboxes[dest].put(_STOP)
        if verbose:
            collector.put(
                ("log", f"{pe.name} (rank {rank}): Processed {iterations} iterations.")
            )
        collector.put(("iter", f"{pe.name}{instance}", iterations, rank))
        collector.put(("time", f"{pe.name}{instance}", busy))
        if traced:
            # The parent adopts this interval as the instance's span: the
            # child cannot share the parent's Tracer across the fork.
            collector.put(
                (
                    "span",
                    f"{pe.name}{instance}",
                    span_started,
                    _time.perf_counter() - span_perf,
                    iterations,
                    rank,
                )
            )
        sys.stdout.flush()  # drain any unterminated print output
        collector.put(("done", rank))


def run_multi(
    graph: WorkflowGraph,
    input: Any = 1,
    num_processes: int = 4,
    verbose: bool = False,
    trace: bool = False,
    tracer=None,
    registry=None,
    batch_max_items: int = 1,
) -> RunResult:
    """Execute ``graph`` with static multiprocessing workload distribution.

    Parameters
    ----------
    graph:
        The abstract workflow.
    input:
        Root input spec (see :func:`normalize_inputs`).
    num_processes:
        Total ranks to partition among the PEs.
    verbose:
        Emit per-instance "Processed N iterations" log lines, as the paper's
        CLI ``-v`` flag does (Fig 5b).
    trace:
        Capture a span tree on ``result.trace`` — workers time their own
        instance intervals and report them through the collector, so the
        tree is assembled parent-side despite the fork.
    tracer, registry:
        Optional :class:`repro.obs.Tracer` / metrics registry sinks (a
        fresh tracer / the process-default registry when omitted).
    batch_max_items:
        Items per inter-rank message frame (1 = per-item delivery, the
        classic behaviour).  Frames are split per destination rank before
        sending, so ``group_by`` partitioning is identical either way;
        buffered frames are flushed whenever a worker is about to block
        on its inbox and before its STOP markers.
    """
    import time as _time

    if batch_max_items < 1:
        raise ValueError(f"batch_max_items must be >= 1, got {batch_max_items}")

    wall_started = _time.perf_counter()
    span_root = setup_span = None
    if trace:
        from repro.obs.trace import Tracer

        tracer = tracer or Tracer()
        span_root = tracer.span("run:multi", mapping="multi")
        setup_span = tracer.span("setup", parent=span_root)

    flat = graph.flatten()
    partition = partition_processes(flat, num_processes)
    total_ranks = max(r.stop for r in partition.values())
    leaves = leaf_ports(flat)
    pe_by_name = {pe.name: pe for pe in flat.pes}

    ctx = mp.get_context("fork")
    inboxes: dict[int, mp.Queue] = {rank: ctx.Queue() for rank in range(total_ranks)}
    collector: mp.Queue = ctx.Queue()

    # Per-PE routing tables and stop accounting.
    out_edges_by_pe: dict[str, list[tuple[str, str, Grouping, range]]] = {
        name: [] for name in partition
    }
    expected_stops: dict[str, int] = {name: 0 for name in partition}
    for u, from_output, v, to_input, grouping in flat.edges():
        out_edges_by_pe[u.name].append(
            (from_output, to_input, grouping, partition[v.name])
        )
        expected_stops[v.name] += len(partition[u.name])

    inputs_by_root = normalize_inputs(flat, input)
    invocations_by_rank: dict[int, list[dict[str, Any]]] = {}
    for root, invocations in inputs_by_root.items():
        ranks = partition[root.name]
        for i, rank in enumerate(ranks):
            invocations_by_rank[rank] = [
                dict(inv) for inv in invocations[i :: len(ranks)]
            ]

    workers = []
    for name, ranks in partition.items():
        pe = pe_by_name[name]
        for instance, rank in enumerate(ranks):
            proc = ctx.Process(
                target=_worker,
                args=(
                    rank,
                    pe,
                    instance,
                    invocations_by_rank.get(rank, []),
                    out_edges_by_pe[name],
                    expected_stops[name],
                    inboxes,
                    collector,
                    leaves,
                    verbose,
                    trace,
                    batch_max_items,
                ),
                daemon=True,
            )
            proc.start()
            workers.append(proc)

    if setup_span is not None:
        setup_span.set(
            num_processes=num_processes,
            partition={k: repr(v) for k, v in partition.items()},
        ).end()
    result = RunResult(partition=dict(partition))
    if verbose:
        result.logs.append(f"Partition: {partition}")
    errors: list[str] = []
    done = 0
    try:
        while done < total_ranks:
            try:
                msg = collector.get(timeout=_JOIN_TIMEOUT)
            except queue_mod.Empty as exc:
                raise RuntimeError(
                    "multi mapping wedged: workers stopped reporting"
                ) from exc
            kind = msg[0]
            if kind == "output":
                _, pe_name, port, data = msg
                result.outputs.setdefault((pe_name, port), []).append(data)
            elif kind == "log":
                result.logs.append(msg[1])
            elif kind == "iter":
                _, label, count, _rank = msg
                result.iterations[label] = count
            elif kind == "time":
                result.timings[msg[1]] = msg[2]
            elif kind == "span":
                _, label, started_at, duration, iterations, rank = msg
                if span_root is not None:
                    tracer.record(
                        f"pe:{label}",
                        started_at,
                        duration,
                        parent=span_root,
                        iterations=iterations,
                        rank=rank,
                    )
            elif kind == "error":
                # The erroring rank still sends its own "done" afterwards.
                errors.append(f"rank {msg[1]}: {msg[2]}")
            elif kind == "done":
                done += 1
    finally:
        for proc in workers:
            proc.join(timeout=5.0)
        for proc in workers:
            if proc.is_alive():  # pragma: no cover - defensive cleanup
                proc.terminate()
        for q in list(inboxes.values()) + [collector]:
            q.close()
            q.join_thread()

    # Normalise the timings contract: every reporting instance has a key.
    for label in result.iterations:
        result.timings.setdefault(label, 0.0)

    if span_root is not None:
        span_root.end("error" if errors else "ok")
        result.trace = tracer

    from repro.obs import runtime as obs_runtime

    obs_runtime.record_mapping_run(
        "multi",
        result.iterations,
        result.timings,
        _time.perf_counter() - wall_started,
        status="error" if errors else "success",
        registry=registry,
    )
    if errors:
        raise RuntimeError("worker failures: " + "; ".join(errors))
    return result
