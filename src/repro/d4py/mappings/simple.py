"""The sequential ("simple") mapping: one process, FIFO message loop.

This is dispel4py's reference semantics: every PE has a single instance,
messages are delivered in emission order, and execution finishes when the
message queue drains.  All other mappings must agree with this one on
observable results (a property the test suite checks).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

from repro.d4py.core import GenericPE
from repro.d4py.mappings.base import RunResult, leaf_ports, normalize_inputs
from repro.d4py.workflow import WorkflowGraph


def run_simple(
    graph: WorkflowGraph,
    input: Any = 1,
    provenance: bool = False,
    trace: bool = False,
    tracer=None,
    registry=None,
) -> RunResult:
    """Execute ``graph`` sequentially in the calling process.

    Parameters
    ----------
    graph:
        The abstract workflow (composites are expanded automatically).
    input:
        Iteration spec for the root PEs — see
        :func:`repro.d4py.mappings.base.normalize_inputs`.
    provenance:
        Capture full data lineage (see :mod:`repro.d4py.provenance`);
        the trace arrives on ``result.provenance``.
    trace:
        Capture a span tree (``run:simple`` → ``setup`` + one span per
        PE instance with per-invocation children); arrives on
        ``result.trace`` as a :class:`repro.obs.Tracer`.
    tracer:
        Record spans into an existing :class:`repro.obs.Tracer` (a
        server's sink) instead of a fresh one; implies nothing unless
        ``trace`` is set.
    registry:
        Record per-instance metrics into this
        :class:`repro.obs.MetricsRegistry` instead of the process
        default.
    """
    from repro.obs import runtime as obs_runtime

    wall_started = time.perf_counter()
    span_root = span_instances = None
    if trace:
        from repro.obs.trace import Tracer

        tracer = tracer or Tracer()
        span_root = tracer.span("run:simple", mapping="simple")
        span_instances = {}

    flat = graph.flatten()
    result = RunResult()
    leaves = leaf_ports(flat)
    # Routing table computed once: the emitter is the hot path (one call
    # per emitted item), so it must not re-scan the graph's edges.
    routes: dict[tuple[str, str], list[tuple[GenericPE, str]]] = {}
    for u, from_output, v, to_input, _grouping in flat.edges():
        routes.setdefault((u.name, from_output), []).append((v, to_input))
    # Queue entries: (pe, inputs, consumed item ids) — ids are only
    # tracked when provenance capture is on.
    queue: deque[tuple[GenericPE, dict[str, Any], tuple[int, ...]]] = deque()
    iteration_counts: dict[str, int] = {pe.name: 0 for pe in flat.pes}
    processing_time: dict[str, float] = {pe.name: 0.0 for pe in flat.pes}

    prov_trace = None
    if provenance:
        from repro.d4py.provenance import ProvenanceTrace

        prov_trace = ProvenanceTrace()
        result.provenance = prov_trace
    # Mutable holder for the invocation currently executing (set by the
    # main loop, read by emitters).
    current: dict[str, Any] = {"invocation": None, "produced": []}

    def make_emitter(pe: GenericPE):
        def emit(output: str, data: Any) -> None:
            item_id: int | None = None
            if prov_trace is not None:
                item_id = prov_trace.record_item(
                    pe.name, output, current["invocation"], data
                )
                current["produced"].append(item_id)
            if (pe.name, output) in leaves:
                result.outputs.setdefault((pe.name, output), []).append(data)
            for dest, to_input in routes.get((pe.name, output), ()):
                consumed = (item_id,) if item_id is not None else ()
                queue.append((dest, {to_input: data}, consumed))

        return emit

    setup_span = tracer.span("setup", parent=span_root) if span_root else None
    for pe in flat.pes:
        pe.rank = 0
        pe._set_emitter(make_emitter(pe))
        pe._set_logger(result.logs.append)
        pe.preprocess()
        if span_instances is not None:
            span_instances[pe.name] = tracer.span(
                f"pe:{pe.name}0", parent=span_root, pe=pe.name, instance=0
            )
    if setup_span is not None:
        setup_span.end()

    status = "success"
    try:
        for root, invocations in normalize_inputs(flat, input).items():
            for inputs in invocations:
                queue.append((root, dict(inputs), ()))

        while queue:
            pe, inputs, consumed = queue.popleft()
            if prov_trace is not None:
                current["invocation"] = prov_trace.new_invocation_id()
                current["produced"] = []
            wall = time.time() if span_instances is not None else 0.0
            started = time.perf_counter()
            pe.process(inputs)
            elapsed = time.perf_counter() - started
            processing_time[pe.name] += elapsed
            iteration_counts[pe.name] += 1
            if span_instances is not None:
                tracer.record(
                    f"invoke:{pe.name}0",
                    wall,
                    elapsed,
                    parent=span_instances[pe.name],
                )
            if prov_trace is not None:
                prov_trace.record_invocation(
                    current["invocation"],
                    pe.name,
                    consumed,
                    tuple(current["produced"]),
                    elapsed,
                )
    except BaseException:
        status = "error"
        raise
    finally:
        for pe in flat.pes:
            pe.postprocess()
            pe._set_emitter(None)  # type: ignore[arg-type]
        if span_instances is not None:
            for name, span in span_instances.items():
                span.set(
                    iterations=iteration_counts[name],
                    busy_seconds=round(processing_time[name], 6),
                ).end()
        if span_root is not None:
            span_root.end(status="ok" if status == "success" else "error")
            result.trace = tracer
        result.iterations = {
            f"{name}0": count for name, count in iteration_counts.items()
        }
        result.timings = {
            f"{name}0": seconds for name, seconds in processing_time.items()
        }
        obs_runtime.record_mapping_run(
            "simple",
            result.iterations,
            result.timings,
            time.perf_counter() - wall_started,
            status=status,
            registry=registry,
        )
    return result
