"""The sequential ("simple") mapping: one process, FIFO message loop.

This is dispel4py's reference semantics: every PE has a single instance,
messages are delivered in emission order, and execution finishes when the
message queue drains.  All other mappings must agree with this one on
observable results (a property the test suite checks).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

from repro.d4py.core import GenericPE
from repro.d4py.mappings.base import RunResult, leaf_ports, normalize_inputs
from repro.d4py.workflow import WorkflowGraph


def run_simple(
    graph: WorkflowGraph, input: Any = 1, provenance: bool = False
) -> RunResult:
    """Execute ``graph`` sequentially in the calling process.

    Parameters
    ----------
    graph:
        The abstract workflow (composites are expanded automatically).
    input:
        Iteration spec for the root PEs — see
        :func:`repro.d4py.mappings.base.normalize_inputs`.
    provenance:
        Capture full data lineage (see :mod:`repro.d4py.provenance`);
        the trace arrives on ``result.provenance``.
    """
    flat = graph.flatten()
    result = RunResult()
    leaves = leaf_ports(flat)
    # Queue entries: (pe, inputs, consumed item ids) — ids are only
    # tracked when provenance capture is on.
    queue: deque[tuple[GenericPE, dict[str, Any], tuple[int, ...]]] = deque()
    iteration_counts: dict[str, int] = {pe.name: 0 for pe in flat.pes}
    processing_time: dict[str, float] = {pe.name: 0.0 for pe in flat.pes}

    trace = None
    if provenance:
        from repro.d4py.provenance import ProvenanceTrace

        trace = ProvenanceTrace()
        result.provenance = trace
    # Mutable holder for the invocation currently executing (set by the
    # main loop, read by emitters).
    current: dict[str, Any] = {"invocation": None, "produced": []}

    def make_emitter(pe: GenericPE):
        def emit(output: str, data: Any) -> None:
            item_id: int | None = None
            if trace is not None:
                item_id = trace.record_item(
                    pe.name, output, current["invocation"], data
                )
                current["produced"].append(item_id)
            if (pe.name, output) in leaves:
                result.outputs.setdefault((pe.name, output), []).append(data)
            for dest, to_input, _grouping in flat.successors(pe, output):
                consumed = (item_id,) if item_id is not None else ()
                queue.append((dest, {to_input: data}, consumed))

        return emit

    for pe in flat.pes:
        pe.rank = 0
        pe._set_emitter(make_emitter(pe))
        pe._set_logger(result.logs.append)
        pe.preprocess()

    try:
        for root, invocations in normalize_inputs(flat, input).items():
            for inputs in invocations:
                queue.append((root, dict(inputs), ()))

        while queue:
            pe, inputs, consumed = queue.popleft()
            if trace is not None:
                current["invocation"] = trace.new_invocation_id()
                current["produced"] = []
            started = time.perf_counter()
            pe.process(inputs)
            elapsed = time.perf_counter() - started
            processing_time[pe.name] += elapsed
            iteration_counts[pe.name] += 1
            if trace is not None:
                trace.record_invocation(
                    current["invocation"],
                    pe.name,
                    consumed,
                    tuple(current["produced"]),
                    elapsed,
                )
    finally:
        for pe in flat.pes:
            pe.postprocess()
            pe._set_emitter(None)  # type: ignore[arg-type]

    result.iterations = {
        f"{name}0": count for name, count in iteration_counts.items()
    }
    result.timings = {
        f"{name}0": seconds for name, seconds in processing_time.items()
    }
    return result
