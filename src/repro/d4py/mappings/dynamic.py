"""The ``dynamic`` mapping: work-queue execution with autoscaling workers.

This reproduces dispel4py's Redis-based dynamic workload allocation
(Liang et al., 2022): instead of statically binding processes to PEs, every
data item becomes a *task* on a shared queue (the simulated Redis broker,
:class:`~repro.d4py.redisim.RedisSim`), and an elastic pool of workers pulls
tasks regardless of which PE they belong to.  An autoscaler grows the pool
while the queue is deep and shrinks it when the queue idles — the adaptive
resource allocation the paper's §II-A describes.

Workers are threads sharing one broker; each *logical PE instance* is a
distinct deep-copied PE object guarded by a lock, so stateful PEs and
``group_by`` routing behave exactly as in the distributed setting.
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Any

from repro.d4py.core import GenericPE
from repro.d4py.grouping import Grouping
from repro.d4py.mappings.base import RunResult, leaf_ports, normalize_inputs
from repro.d4py.redisim import RedisSim
from repro.d4py.workflow import WorkflowGraph

_TASKS = "tasks"
_PENDING = "pending"
_DONE = "done"

#: Queue depth above which the autoscaler adds a worker.
_SCALE_UP_DEPTH = 4
#: Seconds between autoscaler checks.
_SCALE_INTERVAL = 0.02
#: Default overall drain deadline before the run is declared wedged (seconds).
_DRAIN_TIMEOUT = 120.0


class DrainTimeout(RuntimeError):
    """A dynamic enactment whose task queue never drained.

    Carries the undrained queue key and the in-flight count at the moment
    the deadline expired, so callers (notably the jobs subsystem) can
    distinguish a wedged run (``TIMED_OUT``) from a failing one
    (``FAILED``) instead of parsing an opaque message.
    """

    def __init__(self, queue_key: str, pending: int, timeout: float) -> None:
        super().__init__(
            f"dynamic mapping wedged: queue {queue_key!r} still has "
            f"{pending} in-flight task(s) after {timeout:.1f}s"
        )
        self.queue_key = queue_key
        self.pending = pending
        self.timeout = timeout


class _DynamicEngine:
    """One dynamic enactment: broker, instance pool, worker pool, autoscaler."""

    def __init__(
        self,
        graph: WorkflowGraph,
        broker: RedisSim,
        instances_per_pe: int,
        min_workers: int,
        max_workers: int,
        autoscale: bool,
        drain_timeout: float = _DRAIN_TIMEOUT,
        trace: bool = False,
        tracer=None,
        registry=None,
    ) -> None:
        from repro.obs import runtime as obs_runtime

        self.flat = graph.flatten()
        self.broker = broker
        self.instances_per_pe = instances_per_pe
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.autoscale = autoscale
        self.drain_timeout = drain_timeout

        # Observability: metrics always record (into the explicit registry
        # or the process default unless disabled); spans only when traced.
        self.registry = obs_runtime.active_registry(registry)
        self.tracer = None
        self.span_root = None
        self.instance_spans: dict[tuple[str, int], object] = {}
        self.queue_wait: dict[tuple[str, int], float] = {}
        self._wait_histogram = None
        if trace:
            from repro.obs.trace import Tracer

            self.tracer = tracer or Tracer()
            self.span_root = self.tracer.span("run:dynamic", mapping="dynamic")
        if self.registry is not None:
            self._wait_histogram = self.registry.histogram(
                "laminar_dynamic_queue_wait_seconds",
                "Time dynamic-mapping tasks spend queued before a worker "
                "claims them.",
                ("pe",),
            )
            self.registry.gauge(
                "laminar_dynamic_queue_depth",
                "Tasks currently queued on the dynamic mapping's broker.",
            ).set_function(lambda: self.broker.llen(self.ns + _TASKS))
            self.registry.gauge(
                "laminar_dynamic_workers",
                "Live worker threads of the most recent dynamic enactment.",
            ).set_function(lambda: len(self.workers))
            self.broker.bind_metrics(self.registry)

        self.leaves = leaf_ports(self.flat)
        self.pe_by_name = {pe.name: pe for pe in self.flat.pes}
        self.edges = list(self.flat.edges())
        roots = set(self.flat.roots())
        # Producers keep a single logical instance; everything else fans out.
        self.n_instances = {
            pe.name: (1 if pe in roots else instances_per_pe)
            for pe in self.flat.pes
        }

        self.result = RunResult()
        self.result_lock = threading.Lock()
        self.errors: list[str] = []

        self.instances: dict[tuple[str, int], tuple[GenericPE, threading.Lock]] = {}
        self.instances_lock = threading.Lock()

        # Per-run key namespace so several enactments can share one broker.
        self.ns = f"d4pyrun:{id(self)}:"

        self.workers: list[threading.Thread] = []
        self.workers_lock = threading.Lock()
        self.target_workers = min_workers
        self.peak_workers = min_workers
        self.stop_event = threading.Event()

    # -- instance pool ---------------------------------------------------------

    def instance(self, pe_name: str, idx: int) -> tuple[GenericPE, threading.Lock]:
        """Lazily create (or fetch) one logical PE instance and its lock."""
        key = (pe_name, idx)
        with self.instances_lock:
            entry = self.instances.get(key)
            if entry is None:
                template = self.pe_by_name[pe_name]
                pe = copy.deepcopy(template)
                pe.rank = idx
                pe._set_emitter(self._make_emitter(pe_name, pe))
                pe._set_logger(self._log)
                pe.preprocess()
                entry = (pe, threading.Lock())
                self.instances[key] = entry
                if self.tracer is not None:
                    # Worker threads do not inherit the run's context, so
                    # the instance span is parented explicitly to the root.
                    self.instance_spans[key] = self.tracer.span(
                        f"pe:{pe_name}{idx}",
                        parent=self.span_root,
                        pe=pe_name,
                        instance=idx,
                    )
            return entry

    def _log(self, message: str) -> None:
        with self.result_lock:
            self.result.logs.append(message)

    def _make_emitter(self, pe_name: str, pe: GenericPE):
        def emit(output: str, data: Any) -> None:
            if (pe_name, output) in self.leaves:
                with self.result_lock:
                    self.result.outputs.setdefault((pe_name, output), []).append(data)
            for edge_idx, (u, from_output, v, to_input, grouping) in enumerate(
                self.edges
            ):
                if u.name != pe_name or from_output != output:
                    continue
                n = self.n_instances[v.name]
                counter = self.broker.incr(f"{self.ns}ctr:{edge_idx}") - 1
                for dest_idx in grouping.route(data, n, counter):
                    self.push_task(v.name, dest_idx, to_input, data)

        return emit

    # -- task queue --------------------------------------------------------------

    def push_task(
        self, pe_name: str, instance_idx: int, input_name: str | None, payload: Any
    ) -> None:
        """Enqueue one task and bump the in-flight counter.

        The enqueue timestamp travels with the task so the consuming
        worker can measure queue wait; it is appended here (not taken as
        a parameter) so external callers such as
        :class:`repro.d4py.realtime.StreamSession` stay unchanged.
        """
        self.broker.incr(self.ns + _PENDING)
        self.broker.rpush(
            self.ns + _TASKS,
            (pe_name, instance_idx, input_name, payload, time.perf_counter()),
        )

    def _run_task(self, task: tuple) -> None:
        pe_name, instance_idx, input_name, payload, enqueued = task
        waited = time.perf_counter() - enqueued
        if self._wait_histogram is not None:
            self._wait_histogram.labels(pe_name).observe(waited)
        pe, lock = self.instance(pe_name, instance_idx)
        started = time.perf_counter()
        with lock:
            if input_name is None:
                pe.process(dict(payload) if isinstance(payload, dict) else {})
            else:
                pe.process({input_name: payload})
        elapsed = time.perf_counter() - started
        with self.result_lock:
            label = f"{pe_name}{instance_idx}"
            self.result.timings[label] = self.result.timings.get(label, 0.0) + elapsed
            key = (pe_name, instance_idx)
            self.queue_wait[key] = self.queue_wait.get(key, 0.0) + waited
        self.broker.incr(f"{self.ns}iter:{pe_name}{instance_idx}")

    def _worker_loop(self) -> None:
        while not self.stop_event.is_set():
            task = self.broker.brpop(self.ns + _TASKS, timeout=0.05)
            if task is None:
                with self.workers_lock:
                    if (
                        len(self.workers) > self.target_workers
                        and threading.current_thread() in self.workers
                    ):
                        self.workers.remove(threading.current_thread())
                        return
                continue
            try:
                self._run_task(task)
            except Exception as exc:
                with self.result_lock:
                    self.errors.append(
                        f"task {task[0]}[{task[1]}]: {type(exc).__name__}: {exc}"
                    )
            finally:
                self.broker.decr(self.ns + _PENDING)

    def _spawn_worker(self) -> None:
        thread = threading.Thread(target=self._worker_loop, daemon=True)
        with self.workers_lock:
            self.workers.append(thread)
            self.peak_workers = max(self.peak_workers, len(self.workers))
        thread.start()

    def _autoscaler_loop(self) -> None:
        while not self.stop_event.is_set():
            depth = self.broker.llen(self.ns + _TASKS)
            spawn = False
            # target_workers is read by _worker_loop under workers_lock
            # for its scale-down decision, so every write happens under
            # the same lock — an unsynchronised write could shrink the
            # pool past the floor a concurrent reader just checked.
            with self.workers_lock:
                current = len(self.workers)
                if depth > _SCALE_UP_DEPTH and current < self.max_workers:
                    self.target_workers = min(self.max_workers, current + 1)
                    spawn = True
                elif depth == 0 and current > self.min_workers:
                    self.target_workers = max(self.min_workers, current - 1)
            if spawn:
                self._spawn_worker()
            time.sleep(_SCALE_INTERVAL)

    # -- enactment ----------------------------------------------------------------

    def run(self, input_spec: Any) -> RunResult:
        """Enact the workflow: seed tasks, drain the queue, collect results."""
        from repro.obs import runtime as obs_runtime

        wall_started = time.perf_counter()
        setup_span = None
        if self.tracer is not None:
            setup_span = self.tracer.span(
                "setup",
                parent=self.span_root,
                min_workers=self.min_workers,
                max_workers=self.max_workers,
                autoscale=self.autoscale,
            )
        for _ in range(self.min_workers):
            self._spawn_worker()
        scaler = None
        if self.autoscale:
            scaler = threading.Thread(target=self._autoscaler_loop, daemon=True)
            scaler.start()
        if setup_span is not None:
            setup_span.end()

        try:
            for root, invocations in normalize_inputs(self.flat, input_spec).items():
                n = self.n_instances[root.name]
                for i, inputs in enumerate(invocations):
                    self.push_task(root.name, i % n, None, dict(inputs))

            if not self.broker.wait_for_zero(
                self.ns + _PENDING, timeout=self.drain_timeout
            ):
                pending = int(self.broker.get(self.ns + _PENDING) or 0)
                raise DrainTimeout(self.ns + _TASKS, pending, self.drain_timeout)
        finally:
            self.stop_event.set()
            self.broker.set(self.ns + _DONE, 1)
            with self.workers_lock:
                pending_join = list(self.workers)
            for thread in pending_join:
                thread.join(timeout=5.0)
            if scaler is not None:
                scaler.join(timeout=5.0)

        for (pe_name, idx), (pe, lock) in sorted(self.instances.items()):
            with lock:
                pe.postprocess()
            count = self.broker.get(f"{self.ns}iter:{pe_name}{idx}") or 0
            self.result.iterations[f"{pe_name}{idx}"] = int(count)

        # Normalise the timings contract: every reporting instance has a key.
        for label in self.result.iterations:
            self.result.timings.setdefault(label, 0.0)

        status = "error" if self.errors else "success"
        if self.tracer is not None:
            for (pe_name, idx), span in sorted(self.instance_spans.items()):
                span.set(
                    iterations=self.result.iterations.get(f"{pe_name}{idx}", 0),
                    busy_seconds=round(
                        self.result.timings.get(f"{pe_name}{idx}", 0.0), 6
                    ),
                    queue_wait_seconds=round(
                        self.queue_wait.get((pe_name, idx), 0.0), 6
                    ),
                ).end()
            self.span_root.set(peak_workers=self.peak_workers).end(
                "error" if self.errors else "ok"
            )
            self.result.trace = self.tracer
        obs_runtime.record_mapping_run(
            "dynamic",
            self.result.iterations,
            self.result.timings,
            time.perf_counter() - wall_started,
            status=status,
            registry=self.registry,
        )

        if self.errors:
            raise RuntimeError("dynamic worker failures: " + "; ".join(self.errors))
        self.result.logs.append(
            f"dynamic: peak workers {self.peak_workers} "
            f"(min {self.min_workers}, max {self.max_workers})"
        )
        return self.result


def run_dynamic(
    graph: WorkflowGraph,
    input: Any = 1,
    min_workers: int = 1,
    max_workers: int = 8,
    instances_per_pe: int = 4,
    autoscale: bool = True,
    broker: RedisSim | None = None,
    drain_timeout: float = _DRAIN_TIMEOUT,
    trace: bool = False,
    tracer=None,
    registry=None,
) -> RunResult:
    """Execute ``graph`` with dynamic workload allocation over a work queue.

    Parameters
    ----------
    graph:
        The abstract workflow.
    input:
        Root input spec (see :func:`normalize_inputs`).
    min_workers, max_workers:
        Bounds for the elastic worker pool.
    instances_per_pe:
        Logical instance count for non-root PEs (controls ``group_by``
        partitioning exactly as process counts do in the multi mapping).
    autoscale:
        Enable the queue-depth autoscaler; with ``False`` the pool stays at
        ``min_workers``.
    broker:
        Supply a shared :class:`RedisSim` (e.g. the process-wide default) —
        a fresh private broker is used when omitted.
    drain_timeout:
        Seconds to wait for the in-flight counter to drain before the run
        is declared wedged with a :class:`DrainTimeout`.
    trace:
        Capture a span tree on ``result.trace`` — per-instance spans are
        parented to the ``run:dynamic`` root explicitly, since worker
        threads do not inherit the enactment's span context.
    tracer, registry:
        Optional :class:`repro.obs.Tracer` / metrics registry sinks (a
        fresh tracer / the process-default registry when omitted).
    """
    engine = _DynamicEngine(
        graph,
        broker or RedisSim(),
        instances_per_pe=instances_per_pe,
        min_workers=min_workers,
        max_workers=max_workers,
        autoscale=autoscale,
        drain_timeout=drain_timeout,
        trace=trace,
        tracer=tracer,
        registry=registry,
    )
    return engine.run(input)
