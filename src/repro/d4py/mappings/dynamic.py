"""The ``dynamic`` mapping: work-queue execution with autoscaling workers.

This reproduces dispel4py's Redis-based dynamic workload allocation
(Liang et al., 2022): instead of statically binding processes to PEs, data
items become *tasks* on a shared FIFO queue (the simulated Redis broker,
:class:`~repro.d4py.redisim.RedisSim`), and an elastic pool of workers pulls
tasks regardless of which PE they belong to.  An autoscaler grows the pool
while the queue is deep and shrinks it when the queue idles — the adaptive
resource allocation the paper's §II-A describes.

Two optimisations keep per-item dispatch off the hot path:

* **Micro-batching** — emitters accumulate items per destination instance
  and enqueue them as one list-of-items frame, flushed by the
  :class:`~repro.d4py.mappings.base.BatchPolicy` (size/age thresholds plus
  an unconditional flush when the producing task finishes).  ``group_by``
  routing is applied *before* buffering, so batches are split per
  destination instance and partitioning is identical to per-item dispatch.
* **Operator fusion** — 1-in/1-out shuffle-connected segments (detected by
  :meth:`~repro.d4py.workflow.WorkflowGraph.linear_segments`) run inside
  the worker that claimed the head task, invoking downstream instances
  inline with no broker round-trip between stages.

Workers are threads sharing one broker; each *logical PE instance* is a
distinct deep-copied PE object guarded by a lock, so stateful PEs and
``group_by`` routing behave exactly as in the distributed setting.
"""

from __future__ import annotations

import copy
import itertools
import threading
import time
from typing import Any

from repro.d4py.core import GenericPE, IterativePE
from repro.d4py.mappings.base import (
    BatchPolicy,
    RunResult,
    leaf_ports,
    normalize_inputs,
)
from repro.d4py.redisim import RedisSim
from repro.d4py.workflow import WorkflowGraph

_TASKS = "tasks"
_PENDING = "pending"
_DONE = "done"

#: Sentinel frame pushed once per worker at shutdown.  A worker parked in
#: ``blpop`` only re-checks ``stop_event`` after its poll timeout expires;
#: feeding it a sentinel wakes it with an item so the pool retires
#: immediately instead of paying the poll interval as shutdown latency.
_STOP_FRAME = ("__STOP__",)

#: Queue depth above which the autoscaler adds a worker.
_SCALE_UP_DEPTH = 4
#: Seconds between autoscaler checks.
_SCALE_INTERVAL = 0.02
#: Default overall drain deadline before the run is declared wedged (seconds).
_DRAIN_TIMEOUT = 120.0
#: Per-thread join budget during shutdown (seconds); threads still alive
#: afterwards are counted as leaked and reported in the run's logs.
_JOIN_TIMEOUT = 5.0

#: Minimum seconds between adaptive batch-target recomputations.
_ADAPTIVE_REFRESH = 0.005
#: EWMA smoothing factor for the observed queue wait.
_EWMA_ALPHA = 0.2
#: Queue-wait EWMA (seconds) above which the adaptive target is boosted:
#: tasks are waiting longer than a frame takes to flush, so dispatch
#: overhead — not compute — is the bottleneck.
_WAIT_SLOW = 0.002
#: Histogram buckets for the per-frame batch-size distribution.
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class DrainTimeout(RuntimeError):
    """A dynamic enactment whose task queue never drained.

    Carries the undrained queue key and the in-flight count at the moment
    the deadline expired, so callers (notably the jobs subsystem) can
    distinguish a wedged run (``TIMED_OUT``) from a failing one
    (``FAILED``) instead of parsing an opaque message.
    """

    def __init__(self, queue_key: str, pending: int, timeout: float) -> None:
        super().__init__(
            f"dynamic mapping wedged: queue {queue_key!r} still has "
            f"{pending} in-flight task(s) after {timeout:.1f}s"
        )
        self.queue_key = queue_key
        self.pending = pending
        self.timeout = timeout


class _FrameState:
    """Per-worker-thread scratch state for the task frame being executed.

    Emit buffers and leaf collections are thread-confined, so the hot path
    touches no shared lock except each PE instance's own: buffered items
    are flushed and leaf outputs merged into the shared result exactly
    once per frame.
    """

    __slots__ = ("buffers", "births", "leaf", "fused", "fused_buf", "seat")

    def __init__(self) -> None:
        #: ``{(pe_name, instance_idx, input_name): [payload, ...]}``
        self.buffers: dict[tuple[str, int, str | None], list] = {}
        #: First-buffered timestamp per destination (for the age flush).
        self.births: dict[tuple[str, int, str | None], float] = {}
        #: Leaf-port emissions of the current frame, merged at frame end.
        self.leaf: dict[tuple[str, str], list] = {}
        #: Items that crossed each fused edge inline, per edge index.
        self.fused: dict[int, int] = {}
        #: Items awaiting a fused stage run, per fused edge index.  Drained
        #: stage-at-a-time by ``_drain_fused`` so the downstream instance
        #: lock is taken once per frame, not once per item.
        self.fused_buf: dict[int, list] = {}
        #: This worker's fused-placement seat: fused invokes go to
        #: instance ``seat % n``, so each worker keeps hitting the same
        #: (usually uncontended) downstream instance locks.
        self.seat = 0


class _DynamicEngine:
    """One dynamic enactment: broker, instance pool, worker pool, autoscaler."""

    def __init__(
        self,
        graph: WorkflowGraph,
        broker: RedisSim,
        instances_per_pe: int,
        min_workers: int,
        max_workers: int,
        autoscale: bool,
        drain_timeout: float = _DRAIN_TIMEOUT,
        trace: bool = False,
        tracer=None,
        registry=None,
        batch_max_items: int | str | None = None,
        batch_max_delay: float = 0.002,
        fuse: bool = True,
    ) -> None:
        from repro.obs import runtime as obs_runtime

        self.flat = graph.flatten()
        self.broker = broker
        self.instances_per_pe = instances_per_pe
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.autoscale = autoscale
        self.drain_timeout = drain_timeout
        self.batch = BatchPolicy.of(batch_max_items, batch_max_delay)
        self.fuse = bool(fuse)

        # Observability: metrics always record (into the explicit registry
        # or the process default unless disabled); spans only when traced.
        self.registry = obs_runtime.active_registry(registry)
        self.tracer = None
        self.span_root = None
        self.instance_spans: dict[tuple[str, int], object] = {}
        self.queue_wait: dict[tuple[str, int], float] = {}
        self._wait_histogram = None
        self._batch_histogram = None
        if trace:
            from repro.obs.trace import Tracer

            self.tracer = tracer or Tracer()
            self.span_root = self.tracer.span("run:dynamic", mapping="dynamic")
        if self.registry is not None:
            self._wait_histogram = self.registry.histogram(
                "laminar_dynamic_queue_wait_seconds",
                "Time dynamic-mapping tasks spend queued before a worker "
                "claims them.",
                ("pe",),
            )
            self._batch_histogram = self.registry.histogram(
                "laminar_dynamic_batch_size",
                "Items per task frame enqueued on the dynamic mapping's "
                "broker.",
                ("pe",),
                buckets=_BATCH_BUCKETS,
            )
            self.registry.gauge(
                "laminar_dynamic_queue_depth",
                "Tasks currently queued on the dynamic mapping's broker.",
            ).set_function(lambda: self.broker.llen(self.ns + _TASKS))
            self.registry.gauge(
                "laminar_dynamic_workers",
                "Live worker threads of the most recent dynamic enactment.",
            ).set_function(lambda: len(self.workers))
            self.broker.bind_metrics(self.registry)

        self.leaves = leaf_ports(self.flat)
        self.pe_by_name = {pe.name: pe for pe in self.flat.pes}
        self.edges = list(self.flat.edges())
        roots = set(self.flat.roots())
        # Producers keep a single logical instance; everything else fans out.
        self.n_instances = {
            pe.name: (1 if pe in roots else instances_per_pe)
            for pe in self.flat.pes
        }

        # Operator fusion: 1-in/1-out shuffle links run inside the worker
        # holding the upstream instance, with no broker round-trip.
        self.fused_edges: set[int] = set()
        #: ``{edge_idx: (dest_pe_name, to_input, n_instances)}`` for fused
        #: edges — resolved at drain time, once per stage batch.
        self.fused_meta: dict[int, tuple[str, str, int]] = {}
        self.segments: list[list[str]] = []
        if self.fuse:
            fusable = {
                (u.name, out, v.name, inp)
                for u, out, v, inp in self.flat.fusable_edges()
            }
            for edge_idx, (u, out, v, inp, _g) in enumerate(self.edges):
                if (u.name, out, v.name, inp) in fusable:
                    self.fused_edges.add(edge_idx)
                    self.fused_meta[edge_idx] = (
                        v.name,
                        inp,
                        self.n_instances[v.name],
                    )
            self.segments = [
                [pe.name for pe in chain]
                for chain in self.flat.linear_segments()
            ]
        self.fused_counts: dict[int, int] = {}
        self.segment_spans: list[tuple[object, int]] = []
        if self.tracer is not None:
            for names in self.segments:
                first_edge = next(
                    idx
                    for idx, (u, _o, v, _i, _g) in enumerate(self.edges)
                    if u.name == names[0] and v.name == names[1]
                )
                span = self.tracer.span(
                    "fused:" + "->".join(names),
                    parent=self.span_root,
                    stages=len(names),
                )
                self.segment_spans.append((span, first_edge))

        self.result = RunResult()
        self.result_lock = threading.Lock()
        self.errors: list[str] = []

        #: ``{(pe_name, idx): (pe, lock, [iterations, busy_seconds])}`` —
        #: the stats cell is mutated under the instance's own lock, so the
        #: hot path never touches ``result_lock`` per invocation.
        self.instances: dict[
            tuple[str, int], tuple[GenericPE, threading.Lock, list]
        ] = {}
        self.instances_lock = threading.Lock()
        # Per-key creation gates: instances_lock is only held to look up or
        # register entries, never across deepcopy/preprocess (see instance()).
        self._creating: dict[tuple[str, int], threading.Lock] = {}
        # During the final postprocess sweep fused edges fall back to
        # buffering (and the buffers are discarded), matching the simple
        # mapping where postprocess emissions reach leaves but are not
        # processed further downstream.
        self._postprocessing = False

        # Per-run key namespace so several enactments can share one broker.
        self.ns = f"d4pyrun:{id(self)}:"

        self.workers: list[threading.Thread] = []
        self.workers_lock = threading.Lock()
        self.target_workers = min_workers
        self.peak_workers = min_workers
        self.stop_event = threading.Event()

        self._tls = threading.local()
        self._seat_counter = itertools.count()
        # Adaptive batch sizing state: refreshed from the queue-depth gauge
        # at most every _ADAPTIVE_REFRESH seconds; races on these floats
        # are benign (a stale target, never a wrong result).
        self._adaptive_target = 1
        self._adaptive_stamp = 0.0
        self._wait_ewma = 0.0

    # -- instance pool ---------------------------------------------------------

    def instance(
        self, pe_name: str, idx: int
    ) -> tuple[GenericPE, threading.Lock, list]:
        """Lazily create (or fetch) one logical PE instance entry.

        The shared ``instances_lock`` guards only the dictionaries; the
        expensive part — ``copy.deepcopy`` of the template plus the user's
        ``preprocess()`` — runs under a per-key creation gate, so two
        *distinct* instances can always warm up concurrently (a single
        global critical section here used to serialise the whole worker
        pool behind one slow preprocess).
        """
        key = (pe_name, idx)
        entry = self.instances.get(key)
        if entry is not None:
            return entry
        with self.instances_lock:
            entry = self.instances.get(key)
            if entry is not None:
                return entry
            gate = self._creating.setdefault(key, threading.Lock())
        with gate:
            entry = self.instances.get(key)
            if entry is not None:
                return entry
            template = self.pe_by_name[pe_name]
            pe = copy.deepcopy(template)
            pe.rank = idx
            pe._set_emitter(self._make_emitter(pe_name, pe))
            pe._set_logger(self._log)
            pe.preprocess()
            entry = (pe, threading.Lock(), [0, 0.0])
            span = None
            if self.tracer is not None:
                # Worker threads do not inherit the run's context, so
                # the instance span is parented explicitly to the root.
                span = self.tracer.span(
                    f"pe:{pe_name}{idx}",
                    parent=self.span_root,
                    pe=pe_name,
                    instance=idx,
                )
            with self.instances_lock:
                self.instances[key] = entry
                if span is not None:
                    self.instance_spans[key] = span
        return entry

    def _log(self, message: str) -> None:
        with self.result_lock:
            self.result.logs.append(message)

    def _make_emitter(self, pe_name: str, pe: GenericPE):
        # Per-output routing tables precomputed once per instance: the old
        # emitter re-scanned every edge of the graph on every emission.
        edges_by_output: dict[str, list] = {}
        for edge_idx, (u, from_output, v, to_input, grouping) in enumerate(
            self.edges
        ):
            if u.name == pe_name:
                edges_by_output.setdefault(from_output, []).append(
                    (
                        edge_idx,
                        v.name,
                        to_input,
                        grouping,
                        self.n_instances[v.name],
                        edge_idx in self.fused_edges,
                    )
                )
        leaf_outputs = {out for (p, out) in self.leaves if p == pe_name}
        # Per-edge shuffle counters.  The emitter only runs while this
        # instance's lock is held, so plain dict mutation is safe; seeding
        # with the instance rank staggers round-robin across instances.
        shuffle_counters: dict[int, int] = {}
        counter_seed = (pe.rank or 0) * 7919
        tls = self._tls
        engine = self

        def emit(output: str, data: Any) -> None:
            state = tls.state
            if output in leaf_outputs:
                state.leaf.setdefault((pe_name, output), []).append(data)
            for edge_idx, dest, to_input, grouping, n, fused in edges_by_output.get(
                output, ()
            ):
                if fused and not engine._postprocessing:
                    # Fused hop: queue the item for an in-worker stage run
                    # — no broker round-trip.
                    buf = state.fused_buf.get(edge_idx)
                    if buf is None:
                        buf = state.fused_buf[edge_idx] = []
                    buf.append(data)
                    continue
                counter = shuffle_counters.get(edge_idx, counter_seed)
                shuffle_counters[edge_idx] = counter + 1
                for dest_idx in grouping.route(data, n, counter):
                    self._buffer_item(state, dest, dest_idx, to_input, data)

        # Specialised fast paths for the two shapes a fused chain is made
        # of — they skip the routing loop entirely and fall back to the
        # general emitter for anything unusual (postprocess sweep,
        # unexpected output names).
        if not leaf_outputs and len(edges_by_output) == 1:
            [(only_output, edge_list)] = edges_by_output.items()
            if len(edge_list) == 1 and edge_list[0][5]:
                fast_edge = edge_list[0][0]

                def fused_emit(output: str, data: Any) -> None:
                    if output == only_output and not engine._postprocessing:
                        state = tls.state
                        buf = state.fused_buf.get(fast_edge)
                        if buf is None:
                            buf = state.fused_buf[fast_edge] = []
                        buf.append(data)
                        return
                    emit(output, data)

                return fused_emit
        if not edges_by_output and len(leaf_outputs) == 1:
            [only_leaf] = leaf_outputs
            leaf_key = (pe_name, only_leaf)

            def leaf_emit(output: str, data: Any) -> None:
                if output == only_leaf:
                    state = tls.state
                    items = state.leaf.get(leaf_key)
                    if items is None:
                        items = state.leaf[leaf_key] = []
                    items.append(data)
                    return
                emit(output, data)

            return leaf_emit

        return emit

    # -- task queue --------------------------------------------------------------

    def _frame_state(self) -> _FrameState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = self._tls.state = _FrameState()
        return state

    def _batch_target(self) -> int:
        """Items per frame before a buffered destination is flushed.

        Fixed policies return ``max_items``.  The adaptive policy derives
        the target from the same live signals the dashboards see — the
        ``laminar_dynamic_queue_depth`` gauge and the queue-wait EWMA
        behind ``laminar_dynamic_queue_wait_seconds``: a deep queue (or
        tasks visibly waiting on dispatch) grows frames to amortise broker
        round-trips; a shallow queue degrades to per-item dispatch so
        latency stays flat.
        """
        if not self.batch.adaptive:
            return self.batch.max_items
        now = time.perf_counter()
        if now - self._adaptive_stamp >= _ADAPTIVE_REFRESH:
            depth = self.broker.llen(self.ns + _TASKS)
            workers = max(1, len(self.workers))
            target = max(1, min(self.batch.adaptive_cap, depth // workers))
            if self._wait_ewma > _WAIT_SLOW:
                target = min(self.batch.adaptive_cap, max(target * 2, 8))
            self._adaptive_target = target
            self._adaptive_stamp = now
        return self._adaptive_target

    def _buffer_item(
        self,
        state: _FrameState,
        pe_name: str,
        instance_idx: int,
        input_name: str | None,
        payload: Any,
    ) -> None:
        """Buffer one routed item; flush its destination on size/age."""
        key = (pe_name, instance_idx, input_name)
        buf = state.buffers.get(key)
        now = time.perf_counter()
        if buf is None:
            buf = state.buffers[key] = []
            state.births[key] = now
        buf.append(payload)
        if (
            len(buf) >= self._batch_target()
            or now - state.births[key] >= self.batch.max_delay
        ):
            del state.buffers[key]
            del state.births[key]
            self.push_batch(pe_name, instance_idx, input_name, buf)

    def _flush_buffers(self, state: _FrameState) -> None:
        """Enqueue every buffered destination of the calling thread."""
        if not state.buffers:
            return
        buffers, state.buffers, state.births = state.buffers, {}, {}
        for (pe_name, instance_idx, input_name), payloads in buffers.items():
            self.push_batch(pe_name, instance_idx, input_name, payloads)

    def push_batch(
        self,
        pe_name: str,
        instance_idx: int,
        input_name: str | None,
        payloads: list,
    ) -> None:
        """Enqueue one task frame and bump the in-flight counter.

        The enqueue timestamp travels with the frame so the consuming
        worker can measure queue wait.
        """
        if self._batch_histogram is not None:
            self._batch_histogram.labels(pe_name).observe(len(payloads))
        self.broker.incr(self.ns + _PENDING)
        self.broker.rpush(
            self.ns + _TASKS,
            (pe_name, instance_idx, input_name, payloads, time.perf_counter()),
        )

    def push_task(
        self, pe_name: str, instance_idx: int, input_name: str | None, payload: Any
    ) -> None:
        """Enqueue one single-item task frame (external-producer entry point).

        Kept item-granular so callers such as
        :class:`repro.d4py.realtime.StreamSession` stay unchanged; internal
        edges batch through :meth:`push_batch`.
        """
        self.push_batch(pe_name, instance_idx, input_name, [payload])

    def _invoke_batch(
        self, pe_name: str, idx: int, input_name: str | None, payloads: list
    ) -> None:
        """Run a batch of items through one PE instance, one lock hold.

        Instance stats are mutated under the instance lock we already
        hold — no trip through ``result_lock`` on the per-item path.
        """
        entry = self.instances.get((pe_name, idx))
        if entry is None:
            entry = self.instance(pe_name, idx)
        pe, lock, stats = entry
        started = time.perf_counter()
        with lock:
            if input_name is None:
                for payload in payloads:
                    pe.process(payload if isinstance(payload, dict) else {})
            else:
                for payload in payloads:
                    pe.process({input_name: payload})
            stats[0] += len(payloads)
            stats[1] += time.perf_counter() - started

    def _drain_fused(self, state: _FrameState) -> None:
        """Run buffered fused-stage items, one lock hold per stage batch.

        Emissions during a stage run may buffer items for stages further
        down the fused chain; the loop keeps draining until the cascade is
        exhausted (workflows are DAGs, so it terminates).  Placement uses
        the worker's seat, so each worker keeps hitting the same (usually
        uncontended) downstream instance locks; ``shuffle`` semantics
        permit any placement.
        """
        while state.fused_buf:
            edge_idx, items = state.fused_buf.popitem()
            pe_name, input_name, n = self.fused_meta[edge_idx]
            state.fused[edge_idx] = state.fused.get(edge_idx, 0) + len(items)
            idx = state.seat % n
            entry = self.instances.get((pe_name, idx))
            if entry is None:
                entry = self.instance(pe_name, idx)
            pe, lock, stats = entry
            started = time.perf_counter()
            with lock:
                if (
                    type(pe).process is IterativePE.process
                    and input_name == pe.INPUT_NAME
                ):
                    # Unwrapped stage loop: an unmodified IterativePE just
                    # extracts the single input and writes a non-None
                    # result, so the engine inlines that contract and
                    # skips the per-item dict build and write() checks.
                    proc = pe._process
                    emitter = pe._emitter
                    out_name = pe.OUTPUT_NAME
                    for item in items:
                        result = proc(item)
                        if result is not None:
                            emitter(out_name, result)
                else:
                    proc = pe.process
                    for item in items:
                        proc({input_name: item})
                stats[0] += len(items)
                stats[1] += time.perf_counter() - started

    def _merge_frame_results(self, state: _FrameState) -> None:
        """Fold the calling thread's frame-local results into the run."""
        if not (state.leaf or state.fused):
            return
        with self.result_lock:
            for key, items in state.leaf.items():
                self.result.outputs.setdefault(key, []).extend(items)
            for edge_idx, count in state.fused.items():
                self.fused_counts[edge_idx] = (
                    self.fused_counts.get(edge_idx, 0) + count
                )
        state.leaf.clear()
        state.fused.clear()

    def _run_task(self, task: tuple) -> None:
        pe_name, instance_idx, input_name, payloads, enqueued = task
        waited = time.perf_counter() - enqueued
        self._wait_ewma += _EWMA_ALPHA * (waited - self._wait_ewma)
        if self._wait_histogram is not None:
            self._wait_histogram.labels(pe_name).observe(waited)
        state = self._frame_state()
        try:
            self._invoke_batch(pe_name, instance_idx, input_name, payloads)
            self._drain_fused(state)
        finally:
            # A failed frame abandons its fused cascade (the run is going
            # to raise); flushing must still happen before the caller
            # decrements the in-flight counter so the run can never
            # observe "drained" with items still buffered.
            state.fused_buf.clear()
            self._flush_buffers(state)
            self._merge_frame_results(state)
            with self.result_lock:
                key = (pe_name, instance_idx)
                self.queue_wait[key] = self.queue_wait.get(key, 0.0) + waited

    def _worker_loop(self) -> None:
        self._frame_state().seat = next(self._seat_counter)
        while not self.stop_event.is_set():
            # Head pop paired with push_batch's tail push: true FIFO, so
            # the oldest queued frame is always the next one claimed.
            task = self.broker.blpop(self.ns + _TASKS, timeout=0.05)
            if task is None:
                with self.workers_lock:
                    if (
                        len(self.workers) > self.target_workers
                        and threading.current_thread() in self.workers
                    ):
                        self.workers.remove(threading.current_thread())
                        return
                continue
            if task == _STOP_FRAME:
                return
            try:
                self._run_task(task)
            except Exception as exc:
                with self.result_lock:
                    self.errors.append(
                        f"task {task[0]}[{task[1]}]: {type(exc).__name__}: {exc}"
                    )
            finally:
                self.broker.decr(self.ns + _PENDING)

    def _wake_workers(self) -> None:
        """Push one stop sentinel per live worker (call after ``stop_event``).

        Sentinels are not counted in the pending counter; any left
        undrained disappear with the run namespace in ``delete_prefix``.
        """
        with self.workers_lock:
            n = len(self.workers)
        if n:
            self.broker.rpush(self.ns + _TASKS, *([_STOP_FRAME] * n))

    def _spawn_worker(self) -> None:
        thread = threading.Thread(target=self._worker_loop, daemon=True)
        with self.workers_lock:
            self.workers.append(thread)
            self.peak_workers = max(self.peak_workers, len(self.workers))
        thread.start()

    def _autoscaler_loop(self) -> None:
        while not self.stop_event.is_set():
            depth = self.broker.llen(self.ns + _TASKS)
            spawn = False
            # target_workers is read by _worker_loop under workers_lock
            # for its scale-down decision, so every write happens under
            # the same lock — an unsynchronised write could shrink the
            # pool past the floor a concurrent reader just checked.
            with self.workers_lock:
                current = len(self.workers)
                if depth > _SCALE_UP_DEPTH and current < self.max_workers:
                    self.target_workers = min(self.max_workers, current + 1)
                    spawn = True
                elif depth == 0 and current > self.min_workers:
                    self.target_workers = max(self.min_workers, current - 1)
            if spawn:
                self._spawn_worker()
            time.sleep(_SCALE_INTERVAL)

    # -- enactment ----------------------------------------------------------------

    def run(self, input_spec: Any) -> RunResult:
        """Enact the workflow: seed tasks, drain the queue, collect results."""
        try:
            return self._run(input_spec)
        finally:
            # Drop the per-run namespace (pending/done counters and any
            # undrained task list) so enactments sharing a long-lived
            # broker do not accumulate ghost keys.
            self.broker.delete_prefix(self.ns)

    def _run(self, input_spec: Any) -> RunResult:
        from repro.obs import runtime as obs_runtime

        wall_started = time.perf_counter()
        setup_span = None
        if self.tracer is not None:
            setup_span = self.tracer.span(
                "setup",
                parent=self.span_root,
                min_workers=self.min_workers,
                max_workers=self.max_workers,
                autoscale=self.autoscale,
            )
        for _ in range(self.min_workers):
            self._spawn_worker()
        scaler = None
        if self.autoscale:
            scaler = threading.Thread(target=self._autoscaler_loop, daemon=True)
            scaler.start()
        if setup_span is not None:
            setup_span.end()

        # The drive loop is not latency-sensitive, so root invocations are
        # seeded in full-size frames up front (adaptive sizing has no
        # queue-depth signal yet — the queue starts empty).
        seed_target = (
            self.batch.adaptive_cap if self.batch.adaptive else self.batch.max_items
        )
        leaked = 0
        try:
            for root, invocations in normalize_inputs(self.flat, input_spec).items():
                n = self.n_instances[root.name]
                per_instance: dict[int, list] = {}
                for i, inputs in enumerate(invocations):
                    per_instance.setdefault(i % n, []).append(dict(inputs))
                for idx, payloads in per_instance.items():
                    for lo in range(0, len(payloads), seed_target):
                        self.push_batch(
                            root.name, idx, None, payloads[lo : lo + seed_target]
                        )

            if not self.broker.wait_for_zero(
                self.ns + _PENDING, timeout=self.drain_timeout
            ):
                pending = int(self.broker.get(self.ns + _PENDING) or 0)
                raise DrainTimeout(self.ns + _TASKS, pending, self.drain_timeout)
        finally:
            self.stop_event.set()
            self.broker.set(self.ns + _DONE, 1)
            self._wake_workers()
            with self.workers_lock:
                pending_join = list(self.workers)
            for thread in pending_join:
                thread.join(timeout=_JOIN_TIMEOUT)
            if scaler is not None:
                scaler.join(timeout=_JOIN_TIMEOUT)
            stuck = [t for t in pending_join if t.is_alive()]
            if scaler is not None and scaler.is_alive():
                stuck.append(scaler)
            leaked = len(stuck)
            if leaked:
                from repro.obs.events import format_event

                with self.result_lock:
                    self.result.logs.append(
                        format_event(
                            "worker_leak",
                            component="dynamic",
                            leaked_threads=leaked,
                            join_timeout=_JOIN_TIMEOUT,
                            queue=self.ns + _TASKS,
                        )
                    )

        self._postprocessing = True
        state = self._frame_state()  # emitters need this thread's state
        for (pe_name, idx), (pe, lock, stats) in sorted(self.instances.items()):
            with lock:
                pe.postprocess()
            label = f"{pe_name}{idx}"
            self.result.iterations[label] = stats[0]
            self.result.timings[label] = stats[1]
        # Postprocess emissions land in the main thread's frame state;
        # leaf items among them belong in the observable results (the
        # buffered non-leaf remainder is discarded, matching the simple
        # mapping's stream-exhausted semantics).
        state.buffers.clear()
        state.births.clear()
        self._merge_frame_results(state)

        status = "error" if self.errors else "success"
        if self.tracer is not None:
            for (pe_name, idx), span in sorted(self.instance_spans.items()):
                span.set(
                    iterations=self.result.iterations.get(f"{pe_name}{idx}", 0),
                    busy_seconds=round(
                        self.result.timings.get(f"{pe_name}{idx}", 0.0), 6
                    ),
                    queue_wait_seconds=round(
                        self.queue_wait.get((pe_name, idx), 0.0), 6
                    ),
                ).end()
            for span, first_edge in self.segment_spans:
                span.set(items=self.fused_counts.get(first_edge, 0)).end()
            self.span_root.set(peak_workers=self.peak_workers).end(
                "error" if self.errors else "ok"
            )
            self.result.trace = self.tracer
        obs_runtime.record_mapping_run(
            "dynamic",
            self.result.iterations,
            self.result.timings,
            time.perf_counter() - wall_started,
            status=status,
            registry=self.registry,
        )

        if self.errors:
            raise RuntimeError("dynamic worker failures: " + "; ".join(self.errors))
        if leaked:
            self.result.logs.append(
                f"dynamic: WARNING {leaked} worker thread(s) still alive "
                f"after {_JOIN_TIMEOUT:.1f}s join timeout"
            )
        self.result.logs.append(
            f"dynamic: peak workers {self.peak_workers} "
            f"(min {self.min_workers}, max {self.max_workers})"
        )
        return self.result


def run_dynamic(
    graph: WorkflowGraph,
    input: Any = 1,
    min_workers: int = 1,
    max_workers: int = 8,
    instances_per_pe: int = 4,
    autoscale: bool = True,
    broker: RedisSim | None = None,
    drain_timeout: float = _DRAIN_TIMEOUT,
    trace: bool = False,
    tracer=None,
    registry=None,
    batch_max_items: int | str | None = None,
    batch_max_delay: float = 0.002,
    fuse: bool = True,
) -> RunResult:
    """Execute ``graph`` with dynamic workload allocation over a work queue.

    Parameters
    ----------
    graph:
        The abstract workflow.
    input:
        Root input spec (see :func:`normalize_inputs`).
    min_workers, max_workers:
        Bounds for the elastic worker pool.
    instances_per_pe:
        Logical instance count for non-root PEs (controls ``group_by``
        partitioning exactly as process counts do in the multi mapping).
    autoscale:
        Enable the queue-depth autoscaler; with ``False`` the pool stays at
        ``min_workers``.
    broker:
        Supply a shared :class:`RedisSim` (e.g. the process-wide default) —
        a fresh private broker is used when omitted.
    drain_timeout:
        Seconds to wait for the in-flight counter to drain before the run
        is declared wedged with a :class:`DrainTimeout`.
    trace:
        Capture a span tree on ``result.trace`` — per-instance spans are
        parented to the ``run:dynamic`` root explicitly, since worker
        threads do not inherit the enactment's span context.  Fused
        segments additionally appear as ``fused:a->b`` spans carrying the
        inline item count.
    tracer, registry:
        Optional :class:`repro.obs.Tracer` / metrics registry sinks (a
        fresh tracer / the process-default registry when omitted).
    batch_max_items:
        Items per inter-PE task frame: an int fixes the frame size (1 =
        per-item dispatch), ``None``/``"adaptive"`` (the default) sizes
        frames from the live queue-depth/queue-wait gauges.
    batch_max_delay:
        Seconds an under-full frame may wait before being flushed anyway.
    fuse:
        Run 1-in/1-out shuffle-connected PE chains inline in one worker
        task (no broker round-trips between stages).  ``group_by`` /
        ``global`` / ``all`` edges always go through the queue.
    """
    engine = _DynamicEngine(
        graph,
        broker or RedisSim(),
        instances_per_pe=instances_per_pe,
        min_workers=min_workers,
        max_workers=max_workers,
        autoscale=autoscale,
        drain_timeout=drain_timeout,
        trace=trace,
        tracer=tracer,
        registry=registry,
        batch_max_items=batch_max_items,
        batch_max_delay=batch_max_delay,
        fuse=fuse,
    )
    return engine.run(input)
