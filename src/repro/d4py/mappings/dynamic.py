"""The ``dynamic`` mapping: work-queue execution with autoscaling workers.

This reproduces dispel4py's Redis-based dynamic workload allocation
(Liang et al., 2022): instead of statically binding processes to PEs, every
data item becomes a *task* on a shared queue (the simulated Redis broker,
:class:`~repro.d4py.redisim.RedisSim`), and an elastic pool of workers pulls
tasks regardless of which PE they belong to.  An autoscaler grows the pool
while the queue is deep and shrinks it when the queue idles — the adaptive
resource allocation the paper's §II-A describes.

Workers are threads sharing one broker; each *logical PE instance* is a
distinct deep-copied PE object guarded by a lock, so stateful PEs and
``group_by`` routing behave exactly as in the distributed setting.
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Any

from repro.d4py.core import GenericPE
from repro.d4py.grouping import Grouping
from repro.d4py.mappings.base import RunResult, leaf_ports, normalize_inputs
from repro.d4py.redisim import RedisSim
from repro.d4py.workflow import WorkflowGraph

_TASKS = "tasks"
_PENDING = "pending"
_DONE = "done"

#: Queue depth above which the autoscaler adds a worker.
_SCALE_UP_DEPTH = 4
#: Seconds between autoscaler checks.
_SCALE_INTERVAL = 0.02
#: Default overall drain deadline before the run is declared wedged (seconds).
_DRAIN_TIMEOUT = 120.0


class DrainTimeout(RuntimeError):
    """A dynamic enactment whose task queue never drained.

    Carries the undrained queue key and the in-flight count at the moment
    the deadline expired, so callers (notably the jobs subsystem) can
    distinguish a wedged run (``TIMED_OUT``) from a failing one
    (``FAILED``) instead of parsing an opaque message.
    """

    def __init__(self, queue_key: str, pending: int, timeout: float) -> None:
        super().__init__(
            f"dynamic mapping wedged: queue {queue_key!r} still has "
            f"{pending} in-flight task(s) after {timeout:.1f}s"
        )
        self.queue_key = queue_key
        self.pending = pending
        self.timeout = timeout


class _DynamicEngine:
    """One dynamic enactment: broker, instance pool, worker pool, autoscaler."""

    def __init__(
        self,
        graph: WorkflowGraph,
        broker: RedisSim,
        instances_per_pe: int,
        min_workers: int,
        max_workers: int,
        autoscale: bool,
        drain_timeout: float = _DRAIN_TIMEOUT,
    ) -> None:
        self.flat = graph.flatten()
        self.broker = broker
        self.instances_per_pe = instances_per_pe
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.autoscale = autoscale
        self.drain_timeout = drain_timeout

        self.leaves = leaf_ports(self.flat)
        self.pe_by_name = {pe.name: pe for pe in self.flat.pes}
        self.edges = list(self.flat.edges())
        roots = set(self.flat.roots())
        # Producers keep a single logical instance; everything else fans out.
        self.n_instances = {
            pe.name: (1 if pe in roots else instances_per_pe)
            for pe in self.flat.pes
        }

        self.result = RunResult()
        self.result_lock = threading.Lock()
        self.errors: list[str] = []

        self.instances: dict[tuple[str, int], tuple[GenericPE, threading.Lock]] = {}
        self.instances_lock = threading.Lock()

        # Per-run key namespace so several enactments can share one broker.
        self.ns = f"d4pyrun:{id(self)}:"

        self.workers: list[threading.Thread] = []
        self.workers_lock = threading.Lock()
        self.target_workers = min_workers
        self.peak_workers = min_workers
        self.stop_event = threading.Event()

    # -- instance pool ---------------------------------------------------------

    def instance(self, pe_name: str, idx: int) -> tuple[GenericPE, threading.Lock]:
        """Lazily create (or fetch) one logical PE instance and its lock."""
        key = (pe_name, idx)
        with self.instances_lock:
            entry = self.instances.get(key)
            if entry is None:
                template = self.pe_by_name[pe_name]
                pe = copy.deepcopy(template)
                pe.rank = idx
                pe._set_emitter(self._make_emitter(pe_name, pe))
                pe._set_logger(self._log)
                pe.preprocess()
                entry = (pe, threading.Lock())
                self.instances[key] = entry
            return entry

    def _log(self, message: str) -> None:
        with self.result_lock:
            self.result.logs.append(message)

    def _make_emitter(self, pe_name: str, pe: GenericPE):
        def emit(output: str, data: Any) -> None:
            if (pe_name, output) in self.leaves:
                with self.result_lock:
                    self.result.outputs.setdefault((pe_name, output), []).append(data)
            for edge_idx, (u, from_output, v, to_input, grouping) in enumerate(
                self.edges
            ):
                if u.name != pe_name or from_output != output:
                    continue
                n = self.n_instances[v.name]
                counter = self.broker.incr(f"{self.ns}ctr:{edge_idx}") - 1
                for dest_idx in grouping.route(data, n, counter):
                    self.push_task(v.name, dest_idx, to_input, data)

        return emit

    # -- task queue --------------------------------------------------------------

    def push_task(
        self, pe_name: str, instance_idx: int, input_name: str | None, payload: Any
    ) -> None:
        """Enqueue one task and bump the in-flight counter."""
        self.broker.incr(self.ns + _PENDING)
        self.broker.rpush(self.ns + _TASKS, (pe_name, instance_idx, input_name, payload))

    def _run_task(self, task: tuple) -> None:
        pe_name, instance_idx, input_name, payload = task
        pe, lock = self.instance(pe_name, instance_idx)
        started = time.perf_counter()
        with lock:
            if input_name is None:
                pe.process(dict(payload) if isinstance(payload, dict) else {})
            else:
                pe.process({input_name: payload})
        elapsed = time.perf_counter() - started
        with self.result_lock:
            label = f"{pe_name}{instance_idx}"
            self.result.timings[label] = self.result.timings.get(label, 0.0) + elapsed
        self.broker.incr(f"{self.ns}iter:{pe_name}{instance_idx}")

    def _worker_loop(self) -> None:
        while not self.stop_event.is_set():
            task = self.broker.brpop(self.ns + _TASKS, timeout=0.05)
            if task is None:
                with self.workers_lock:
                    if (
                        len(self.workers) > self.target_workers
                        and threading.current_thread() in self.workers
                    ):
                        self.workers.remove(threading.current_thread())
                        return
                continue
            try:
                self._run_task(task)
            except Exception as exc:
                with self.result_lock:
                    self.errors.append(
                        f"task {task[0]}[{task[1]}]: {type(exc).__name__}: {exc}"
                    )
            finally:
                self.broker.decr(self.ns + _PENDING)

    def _spawn_worker(self) -> None:
        thread = threading.Thread(target=self._worker_loop, daemon=True)
        with self.workers_lock:
            self.workers.append(thread)
            self.peak_workers = max(self.peak_workers, len(self.workers))
        thread.start()

    def _autoscaler_loop(self) -> None:
        while not self.stop_event.is_set():
            depth = self.broker.llen(self.ns + _TASKS)
            with self.workers_lock:
                current = len(self.workers)
            if depth > _SCALE_UP_DEPTH and current < self.max_workers:
                self.target_workers = min(self.max_workers, current + 1)
                self._spawn_worker()
            elif depth == 0 and current > self.min_workers:
                self.target_workers = max(self.min_workers, current - 1)
            time.sleep(_SCALE_INTERVAL)

    # -- enactment ----------------------------------------------------------------

    def run(self, input_spec: Any) -> RunResult:
        """Enact the workflow: seed tasks, drain the queue, collect results."""
        for _ in range(self.min_workers):
            self._spawn_worker()
        scaler = None
        if self.autoscale:
            scaler = threading.Thread(target=self._autoscaler_loop, daemon=True)
            scaler.start()

        try:
            for root, invocations in normalize_inputs(self.flat, input_spec).items():
                n = self.n_instances[root.name]
                for i, inputs in enumerate(invocations):
                    self.push_task(root.name, i % n, None, dict(inputs))

            if not self.broker.wait_for_zero(
                self.ns + _PENDING, timeout=self.drain_timeout
            ):
                pending = int(self.broker.get(self.ns + _PENDING) or 0)
                raise DrainTimeout(self.ns + _TASKS, pending, self.drain_timeout)
        finally:
            self.stop_event.set()
            self.broker.set(self.ns + _DONE, 1)
            with self.workers_lock:
                pending_join = list(self.workers)
            for thread in pending_join:
                thread.join(timeout=5.0)
            if scaler is not None:
                scaler.join(timeout=5.0)

        for (pe_name, idx), (pe, lock) in sorted(self.instances.items()):
            with lock:
                pe.postprocess()
            count = self.broker.get(f"{self.ns}iter:{pe_name}{idx}") or 0
            self.result.iterations[f"{pe_name}{idx}"] = int(count)

        if self.errors:
            raise RuntimeError("dynamic worker failures: " + "; ".join(self.errors))
        self.result.logs.append(
            f"dynamic: peak workers {self.peak_workers} "
            f"(min {self.min_workers}, max {self.max_workers})"
        )
        return self.result


def run_dynamic(
    graph: WorkflowGraph,
    input: Any = 1,
    min_workers: int = 1,
    max_workers: int = 8,
    instances_per_pe: int = 4,
    autoscale: bool = True,
    broker: RedisSim | None = None,
    drain_timeout: float = _DRAIN_TIMEOUT,
) -> RunResult:
    """Execute ``graph`` with dynamic workload allocation over a work queue.

    Parameters
    ----------
    graph:
        The abstract workflow.
    input:
        Root input spec (see :func:`normalize_inputs`).
    min_workers, max_workers:
        Bounds for the elastic worker pool.
    instances_per_pe:
        Logical instance count for non-root PEs (controls ``group_by``
        partitioning exactly as process counts do in the multi mapping).
    autoscale:
        Enable the queue-depth autoscaler; with ``False`` the pool stays at
        ``min_workers``.
    broker:
        Supply a shared :class:`RedisSim` (e.g. the process-wide default) —
        a fresh private broker is used when omitted.
    drain_timeout:
        Seconds to wait for the in-flight counter to drain before the run
        is declared wedged with a :class:`DrainTimeout`.
    """
    engine = _DynamicEngine(
        graph,
        broker or RedisSim(),
        instances_per_pe=instances_per_pe,
        min_workers=min_workers,
        max_workers=max_workers,
        autoscale=autoscale,
        drain_timeout=drain_timeout,
    )
    return engine.run(input)
