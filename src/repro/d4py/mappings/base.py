"""Shared machinery for translating abstract workflows into concrete ones.

A *mapping* enacts a :class:`~repro.d4py.workflow.WorkflowGraph` on some
substrate.  This module holds the pieces every mapping needs:

* :func:`normalize_inputs` — turn the many user-facing ``input=`` spellings
  (int, list, per-PE dict) into per-root invocation lists.
* :func:`partition_processes` — dispel4py's static workload allocation:
  divide N processes among the PEs of a graph (Fig 5b of the paper).
* :class:`RunResult` — what every mapping returns: data collected from
  unconnected output ports plus engine log lines.
* :class:`BatchPolicy` — the micro-batch flush policy shared by the
  physical mappings (how many items ride in one task frame, and how long
  an under-full frame may wait before it is flushed anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.d4py.core import GenericPE, ProducerPE
from repro.d4py.workflow import WorkflowGraph


@dataclass
class RunResult:
    """Outcome of one workflow enactment.

    Attributes
    ----------
    outputs:
        ``{(pe_name, output_port): [items...]}`` for every output port with
        no downstream consumer — the workflow's observable results.
    logs:
        Engine and PE log lines, in arrival order.
    iterations:
        ``{instance_label: count}`` of items processed per PE instance,
        matching the "Processed N iterations" lines of the paper's Fig 5b.
    timings:
        ``{instance_label: seconds}`` of cumulative processing time per
        PE instance — the engine-level monitoring used to find the
        workflow's bottleneck PE.

        The contract is identical across every mapping: keys are
        *instance labels* ``<PEName><instance_index>`` (the simple
        mapping always uses index ``0``; multi/dynamic number instances
        from 0), values are cumulative wall-clock **seconds** spent in
        ``process()`` for that instance, and every instance that appears
        in ``iterations`` also appears in ``timings`` (``0.0`` when it
        never processed an item).  The same labels key the per-instance
        metrics in :mod:`repro.obs`.
    partition:
        The process partition used (empty for the sequential mapping).
    """

    outputs: dict[tuple[str, str], list] = field(default_factory=dict)
    logs: list[str] = field(default_factory=list)
    iterations: dict[str, int] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    partition: dict[str, range] = field(default_factory=dict)
    #: Data-lineage trace when the run was started with provenance=True
    #: (simple mapping only); see :mod:`repro.d4py.provenance`.
    provenance: "object | None" = None
    #: The :class:`repro.obs.Tracer` holding this run's span tree when the
    #: run was started with trace=True (all mappings); ``None`` otherwise.
    trace: "object | None" = None

    def output_for(self, pe_name: str, port: str = "output") -> list:
        """All items emitted on one leaf port (empty list if none)."""
        return self.outputs.get((pe_name, port), [])

    def all_outputs(self) -> list:
        """Every leaf item from every port, flattened."""
        return [item for items in self.outputs.values() for item in items]

    def hotspot(self) -> str | None:
        """The instance label with the largest cumulative processing time."""
        if not self.timings:
            return None
        return max(self.timings, key=self.timings.get)


@dataclass(frozen=True)
class BatchPolicy:
    """Flush policy for micro-batched task frames between PE instances.

    Instead of one broker round-trip per data item, emitters accumulate
    items per destination instance and enqueue them as one list-of-items
    frame.  A buffered destination is flushed when it holds
    ``max_items`` items, when the oldest buffered item is older than
    ``max_delay`` seconds, or unconditionally when the producing task
    finishes (so no item can linger in a buffer).

    ``adaptive=True`` means ``max_items`` is not fixed: the dynamic
    mapping recomputes the target from its live queue-depth and
    queue-wait gauges (deep queue → bigger frames to amortise dispatch,
    shallow queue → per-item for latency), capped at ``adaptive_cap``.
    """

    max_items: int = 1
    max_delay: float = 0.002
    adaptive: bool = False
    adaptive_cap: int = 64

    @classmethod
    def of(
        cls,
        batch_max_items: "int | str | None",
        batch_max_delay: float = 0.002,
    ) -> "BatchPolicy":
        """Coerce the user-facing knobs into a policy.

        ``None`` or ``"adaptive"`` selects adaptive sizing; an int >= 1
        fixes the frame size (1 = per-item dispatch, the pre-batching
        behaviour).
        """
        if batch_max_delay < 0:
            raise ValueError(
                f"batch_max_delay must be >= 0, got {batch_max_delay}"
            )
        if batch_max_items is None or batch_max_items == "adaptive":
            return cls(max_items=1, max_delay=batch_max_delay, adaptive=True)
        if isinstance(batch_max_items, bool) or not isinstance(
            batch_max_items, int
        ):
            raise TypeError(
                "batch_max_items must be an int >= 1, None, or 'adaptive'; "
                f"got {batch_max_items!r}"
            )
        if batch_max_items < 1:
            raise ValueError(
                f"batch_max_items must be >= 1, got {batch_max_items}"
            )
        return cls(max_items=batch_max_items, max_delay=batch_max_delay)


def normalize_inputs(
    graph: WorkflowGraph, input_spec: Any
) -> dict[GenericPE, list[Mapping[str, Any]]]:
    """Expand a user input spec into per-root invocation input mappings.

    Accepted forms (mirroring dispel4py):

    * ``int n`` — drive every root PE ``n`` times with empty inputs.
    * ``list`` — each element is one invocation; dict elements are used as
      the inputs mapping, any other value is bound to the root's first
      declared input (or passed as ``{}`` for producers).
    * ``dict {pe_name: spec}`` — per-root spec, each value again an int or
      list as above.
    """
    roots = graph.roots()
    if not roots:
        raise ValueError("workflow has no root PEs to feed input to")

    def expand_for(pe: GenericPE, spec: Any) -> list[Mapping[str, Any]]:
        if spec is None:
            return [{}]
        if isinstance(spec, bool):
            raise TypeError("input spec may not be a bool")
        if isinstance(spec, int):
            if spec < 0:
                raise ValueError(f"iteration count must be >= 0, got {spec}")
            return [{} for _ in range(spec)]
        if isinstance(spec, Mapping):
            return [spec]
        if isinstance(spec, Sequence) and not isinstance(spec, (str, bytes)):
            invocations: list[Mapping[str, Any]] = []
            for item in spec:
                if isinstance(item, Mapping):
                    invocations.append(item)
                elif isinstance(pe, ProducerPE) or not pe.inputconnections:
                    invocations.append({"_data": item})
                else:
                    first_input = next(iter(pe.inputconnections))
                    invocations.append({first_input: item})
            return invocations
        # A scalar: one invocation carrying the value.
        if isinstance(pe, ProducerPE) or not pe.inputconnections:
            return [{"_data": spec}]
        first_input = next(iter(pe.inputconnections))
        return [{first_input: spec}]

    if isinstance(input_spec, Mapping) and input_spec and all(
        isinstance(k, str) for k in input_spec
    ):
        by_name = {pe.name: pe for pe in roots}
        # Also allow class-name addressing for convenience.
        by_class = {type(pe).__name__: pe for pe in roots}
        result: dict[GenericPE, list[Mapping[str, Any]]] = {}
        for name, spec in input_spec.items():
            pe = by_name.get(name) or by_class.get(name)
            if pe is None:
                raise KeyError(
                    f"input spec names unknown root PE {name!r}; "
                    f"roots: {sorted(by_name)}"
                )
            result[pe] = expand_for(pe, spec)
        # Roots not named get a single empty invocation so they still start.
        for pe in roots:
            result.setdefault(pe, [{}])
        return result

    return {pe: expand_for(pe, input_spec) for pe in roots}


def partition_processes(
    graph: WorkflowGraph, num_processes: int
) -> dict[str, range]:
    """Statically allocate ``num_processes`` ranks to the PEs of ``graph``.

    Mirrors dispel4py's multiprocessing allocation, as shown in the paper's
    Fig 5b (``{'NumberProducer': range(0, 1), 'IsPrime1': range(1, 5),
    'PrintPrime2': range(5, 9)}`` for 9 processes):

    * a PE with an explicit ``numprocesses`` gets exactly that many ranks;
    * otherwise source PEs get one rank (a producer is not replicated
      implicitly), and remaining ranks are split evenly over the other PEs,
      earlier (topologically) PEs receiving the remainder.
    """
    pes = graph.pes
    if not pes:
        raise ValueError("cannot partition an empty workflow")
    roots = set(graph.roots())

    counts: dict[str, int] = {}
    flexible: list[GenericPE] = []
    fixed_total = 0
    for pe in pes:
        if pe.numprocesses > 1:
            counts[pe.name] = pe.numprocesses
            fixed_total += pe.numprocesses
        elif pe in roots:
            counts[pe.name] = 1
            fixed_total += 1
        else:
            flexible.append(pe)

    remaining = num_processes - fixed_total
    if flexible:
        if remaining < len(flexible):
            # Not enough ranks to go around: everyone flexible gets one.
            for pe in flexible:
                counts[pe.name] = 1
        else:
            share, extra = divmod(remaining, len(flexible))
            for i, pe in enumerate(flexible):
                counts[pe.name] = share + (1 if i < extra else 0)
    elif remaining < 0:
        raise ValueError(
            f"{num_processes} processes cannot satisfy fixed requests "
            f"totalling {fixed_total}"
        )

    partition: dict[str, range] = {}
    next_rank = 0
    for pe in pes:
        n = counts[pe.name]
        partition[pe.name] = range(next_rank, next_rank + n)
        next_rank += n
    return partition


def leaf_ports(graph: WorkflowGraph) -> set[tuple[str, str]]:
    """Output ports with no downstream edge: ``{(pe_name, port), ...}``."""
    leaves = set()
    for pe in graph.pes:
        for port in pe.outputconnections:
            if not graph.successors(pe, port):
                leaves.add((pe.name, port))
    return leaves
