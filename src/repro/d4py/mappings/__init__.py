"""Execution mappings: translate abstract workflows onto substrates.

``run_graph(graph, mapping=..., ...)`` is the single entry point the rest
of the framework uses; it dispatches to:

* ``simple`` — sequential reference semantics
  (:func:`repro.d4py.mappings.simple.run_simple`);
* ``multi`` — static multiprocessing distribution
  (:func:`repro.d4py.mappings.multi.run_multi`);
* ``dynamic`` — autoscaling work-queue execution over the simulated Redis
  broker (:func:`repro.d4py.mappings.dynamic.run_dynamic`).
"""

from __future__ import annotations

from typing import Any

from repro.d4py.mappings.base import (
    RunResult,
    normalize_inputs,
    partition_processes,
)
from repro.d4py.mappings.dynamic import DrainTimeout, run_dynamic
from repro.d4py.mappings.multi import run_multi
from repro.d4py.mappings.simple import run_simple

MAPPINGS = ("simple", "multi", "mpi", "dynamic")


def run_graph(
    graph,
    input: Any = 1,
    mapping: str = "simple",
    **options: Any,
) -> RunResult:
    """Enact ``graph`` with the chosen mapping.

    ``options`` are forwarded to the mapping (``num_processes`` and
    ``verbose`` for ``multi``; ``min_workers`` / ``max_workers`` /
    ``instances_per_pe`` / ``autoscale`` / ``broker`` / ``drain_timeout``
    for ``dynamic``).  The batching knobs ``batch_max_items`` /
    ``batch_max_delay`` / ``fuse`` reach the mappings that support them
    (``multi`` takes a fixed ``batch_max_items``; ``dynamic`` takes all
    three) and are ignored by ``simple``, which has no inter-process hops.  ``trace`` / ``tracer`` / ``registry`` are accepted
    by every mapping: with ``trace=True`` the result carries a span tree
    on ``result.trace``, and per-instance metrics are recorded into
    ``registry`` (or the process default).
    """
    if mapping == "simple":
        # Cross-mapping flags are accepted and ignored so callers (CLI,
        # execution engine) can pass one option set regardless of mapping.
        options.pop("verbose", None)
        options.pop("num_processes", None)
        options.pop("drain_timeout", None)
        # The sequential mapping has no inter-process hops to batch or fuse.
        options.pop("batch_max_items", None)
        options.pop("batch_max_delay", None)
        options.pop("fuse", None)
        provenance = bool(options.pop("provenance", False))
        trace = bool(options.pop("trace", False))
        tracer = options.pop("tracer", None)
        registry = options.pop("registry", None)
        if options:
            raise TypeError(f"simple mapping got unexpected options {sorted(options)}")
        return run_simple(
            graph,
            input=input,
            provenance=provenance,
            trace=trace,
            tracer=tracer,
            registry=registry,
        )
    if options.get("provenance"):
        raise ValueError(
            "provenance capture is only supported by the simple mapping"
        )
    if mapping in ("multi", "mpi"):
        # dispel4py's MPI mapping uses the same *static* workload
        # distribution semantics as multiprocessing (§II-A); with no MPI
        # runtime available offline, "mpi" enacts through the same
        # rank-partitioned process engine (DESIGN.md substitution note).
        options.pop("drain_timeout", None)
        # multi batches with a fixed frame size only; adaptive sizing and
        # fusion are dynamic-mapping features.
        options.pop("batch_max_delay", None)
        options.pop("fuse", None)
        if not isinstance(options.get("batch_max_items"), int):
            options.pop("batch_max_items", None)
        return run_multi(graph, input=input, **options)
    if mapping == "dynamic":
        options.pop("verbose", None)
        if options.get("drain_timeout") is None:
            options.pop("drain_timeout", None)
        processes = options.pop("num_processes", None)
        if processes is not None:
            options.setdefault("max_workers", int(processes))
        return run_dynamic(graph, input=input, **options)
    raise ValueError(f"unknown mapping {mapping!r}; expected one of {MAPPINGS}")


__all__ = [
    "MAPPINGS",
    "DrainTimeout",
    "RunResult",
    "normalize_inputs",
    "partition_processes",
    "run_dynamic",
    "run_graph",
    "run_multi",
    "run_simple",
]
