"""A standard library of reusable Processing Elements.

dispel4py's value proposition includes PE reuse across workflows
(§II-A: "fundamental units of computation that ... can be reused").
This module provides the combinators every streaming workflow reaches
for — map/filter/flat-map, windowing, batching, keyed reduction, rate
limiting and stream joining — implemented once, tested once, and
registrable in the Laminar registry like any user PE.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable

from repro.d4py.core import GenericPE, IterativePE

__all__ = [
    "MapPE",
    "FilterPE",
    "FlatMapPE",
    "SlidingWindowPE",
    "BatchPE",
    "KeyedReducePE",
    "DistinctPE",
    "RateLimitPE",
    "ZipPE",
    "TakePE",
]


class MapPE(IterativePE):
    """Applies a function to every item: the streaming ``map``."""

    def __init__(self, fn: Callable[[Any], Any], name: str | None = None) -> None:
        super().__init__(name)
        self.fn = fn

    def _process(self, data):
        return self.fn(data)


class FilterPE(IterativePE):
    """Forwards items satisfying a predicate: the streaming ``filter``."""

    def __init__(self, predicate: Callable[[Any], bool], name: str | None = None) -> None:
        super().__init__(name)
        self.predicate = predicate

    def _process(self, data):
        return data if self.predicate(data) else None


class FlatMapPE(IterativePE):
    """Expands each item into zero or more items (``flat_map``)."""

    def __init__(
        self, fn: Callable[[Any], Iterable], name: str | None = None
    ) -> None:
        super().__init__(name)
        self.fn = fn

    def _process(self, data):
        for item in self.fn(data):
            self.write(self.OUTPUT_NAME, item)
        return None


class SlidingWindowPE(IterativePE):
    """Emits a list of the last ``size`` items for every arrival after
    warm-up; with ``step > 1`` emits every ``step``-th window (tumbling
    when ``step == size``)."""

    def __init__(self, size: int, step: int = 1, name: str | None = None) -> None:
        if size < 1 or step < 1:
            raise ValueError("size and step must be >= 1")
        super().__init__(name)
        self.size = size
        self.step = step
        self._buffer: list = []
        self._arrivals = 0

    def _process(self, data):
        self._arrivals += 1
        self._buffer.append(data)
        if len(self._buffer) > self.size:
            self._buffer.pop(0)
        # First emission when the window fills, then every `step` arrivals.
        if (
            len(self._buffer) == self.size
            and (self._arrivals - self.size) % self.step == 0
        ):
            return list(self._buffer)
        return None


class BatchPE(IterativePE):
    """Groups consecutive items into fixed-size batches.

    A trailing partial batch is flushed at ``postprocess`` — engines call
    it after the stream drains, so no data is lost.
    """

    def __init__(self, size: int, name: str | None = None) -> None:
        if size < 1:
            raise ValueError("batch size must be >= 1")
        super().__init__(name)
        self.size = size
        self._batch: list = []

    def _process(self, data):
        self._batch.append(data)
        if len(self._batch) == self.size:
            out, self._batch = self._batch, []
            return out
        return None

    def postprocess(self):
        """Flush the trailing partial batch when the stream drains."""
        if self._batch and self._emitter is not None:
            out, self._batch = self._batch, []
            self.write(self.OUTPUT_NAME, out)


class KeyedReducePE(GenericPE):
    """Stateful keyed reduction over ``(key, value)`` items.

    Emits ``(key, accumulator)`` after every update.  The input is
    grouped on the key, so state stays exact under any parallel mapping.
    """

    def __init__(
        self,
        fn: Callable[[Any, Any], Any],
        initial: Any = 0,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self._add_input("input", grouping=[0])
        self._add_output("output")
        self.fn = fn
        self.initial = initial
        self.state: dict = {}

    def _process(self, inputs):
        key, value = inputs["input"]
        acc = self.fn(self.state.get(key, self.initial), value)
        self.state[key] = acc
        return {"output": (key, acc)}


class DistinctPE(IterativePE):
    """Forwards only the first occurrence of each item (dedup)."""

    def __init__(self, key: Callable[[Any], Any] | None = None, name: str | None = None) -> None:
        super().__init__(name)
        self.key = key or (lambda x: x)
        self._seen: set = set()

    def _process(self, data):
        k = self.key(data)
        if k in self._seen:
            return None
        self._seen.add(k)
        return data


class RateLimitPE(IterativePE):
    """Forwards at most one item per ``interval`` seconds (throttle).

    Uses a monotonic clock; items arriving inside the interval are
    dropped — the semantics of a sensor-stream decimator.
    """

    def __init__(self, interval: float, name: str | None = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        super().__init__(name)
        self.interval = interval
        self._last = float("-inf")

    def _process(self, data):
        now = time.monotonic()
        if now - self._last >= self.interval:
            self._last = now
            return data
        return None


class ZipPE(GenericPE):
    """Pairs items arriving on inputs ``left`` and ``right`` in order.

    Buffers the faster stream; emits ``(left, right)`` tuples when both
    sides have an item — the streaming join-by-arrival-order.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._add_input("left")
        self._add_input("right")
        self._add_output("output")
        self._left: list = []
        self._right: list = []

    def _process(self, inputs):
        if "left" in inputs:
            self._left.append(inputs["left"])
        if "right" in inputs:
            self._right.append(inputs["right"])
        while self._left and self._right:
            self.write("output", (self._left.pop(0), self._right.pop(0)))
        return None


class TakePE(IterativePE):
    """Forwards only the first ``n`` items, then drops the rest."""

    def __init__(self, n: int, name: str | None = None) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        super().__init__(name)
        self.n = n
        self._taken = 0

    def _process(self, data):
        if self._taken < self.n:
            self._taken += 1
            return data
        return None
