"""Abstract workflow graphs: the user-facing DAG of Processing Elements.

A :class:`WorkflowGraph` is what a dispel4py user describes — PEs and the
data flow between their named ports.  Mappings translate it into a concrete
workflow at enactment time.  The graph is backed by a
:class:`networkx.MultiDiGraph` so multiple distinct port-to-port edges
between the same pair of PEs are supported.
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx

from repro.d4py.core import CompositePE, GenericPE
from repro.d4py.grouping import Grouping


class WorkflowGraph:
    """A directed acyclic graph of PEs with named, grouped connections."""

    def __init__(self) -> None:
        self._graph = nx.MultiDiGraph()

    # -- construction -------------------------------------------------------

    def add(self, pe: GenericPE) -> GenericPE:
        """Add a PE node (idempotent); returns the PE for chaining."""
        if not isinstance(pe, GenericPE):
            raise TypeError(f"expected a GenericPE, got {type(pe).__name__}")
        self._graph.add_node(pe)
        return pe

    def connect(
        self,
        from_pe: GenericPE,
        from_output: str,
        to_pe: GenericPE,
        to_input: str,
    ) -> None:
        """Connect ``from_pe.from_output`` to ``to_pe.to_input``.

        Both ports must have been declared by the PEs.  Adding an edge that
        would create a cycle raises ``ValueError`` (workflows are DAGs).
        """
        if from_output not in from_pe.outputconnections:
            raise KeyError(
                f"{from_pe.name!r} has no output {from_output!r}; "
                f"declared: {sorted(from_pe.outputconnections)}"
            )
        if to_input not in to_pe.inputconnections:
            raise KeyError(
                f"{to_pe.name!r} has no input {to_input!r}; "
                f"declared: {sorted(to_pe.inputconnections)}"
            )
        self.add(from_pe)
        self.add(to_pe)
        self._graph.add_edge(
            from_pe,
            to_pe,
            from_output=from_output,
            to_input=to_input,
            grouping=to_pe.inputconnections[to_input],
        )
        if not nx.is_directed_acyclic_graph(self._graph):
            # Roll back the offending edge so the graph stays usable.
            self._graph.remove_edge(from_pe, to_pe)
            raise ValueError(
                f"connecting {from_pe.name} -> {to_pe.name} creates a cycle; "
                "workflows must be DAGs"
            )

    # -- inspection ----------------------------------------------------------

    @property
    def pes(self) -> list[GenericPE]:
        """All PEs, in topological order."""
        return list(nx.topological_sort(self._graph))

    def get_pe(self, name: str) -> GenericPE:
        """Find a PE by instance name."""
        for pe in self._graph.nodes:
            if pe.name == name:
                return pe
        raise KeyError(f"no PE named {name!r} in workflow")

    def edges(self) -> Iterator[tuple[GenericPE, str, GenericPE, str, Grouping]]:
        """Yield ``(from_pe, from_output, to_pe, to_input, grouping)``."""
        for u, v, data in self._graph.edges(data=True):
            yield u, data["from_output"], v, data["to_input"], data["grouping"]

    def roots(self) -> list[GenericPE]:
        """PEs with no incoming edges — the workflow's sources."""
        return [n for n in self.pes if self._graph.in_degree(n) == 0]

    def sinks(self) -> list[GenericPE]:
        """PEs with no outgoing edges."""
        return [n for n in self.pes if self._graph.out_degree(n) == 0]

    def successors(
        self, pe: GenericPE, output: str
    ) -> list[tuple[GenericPE, str, Grouping]]:
        """Destinations of one output port: ``(to_pe, to_input, grouping)``."""
        dests = []
        for _, v, data in self._graph.out_edges(pe, data=True):
            if data["from_output"] == output:
                dests.append((v, data["to_input"], data["grouping"]))
        return dests

    def fusable_edges(self) -> list[tuple[GenericPE, str, GenericPE, str]]:
        """Edges eligible for operator fusion: ``(u, out, v, in)`` tuples.

        An edge can be fused — the downstream PE invoked inline by the
        upstream's worker, with no broker round-trip — when the pair forms
        a 1-in/1-out link of a linear chain:

        * ``u`` has exactly one outgoing edge (all of its traffic crosses
          this link), and
        * ``v`` has exactly one incoming edge (its whole input stream
          originates here), and
        * the link's grouping is ``shuffle`` — the engine is already free
          to route any item to any instance, so co-locating an item with
          its producer cannot violate partitioning.  ``group_by`` /
          ``global`` / ``all`` edges pin items to specific instances and
          must keep going through the queue.
        """
        fusable = []
        for u, from_output, v, to_input, grouping in self.edges():
            if (
                self._graph.out_degree(u) == 1
                and self._graph.in_degree(v) == 1
                and grouping.kind == "shuffle"
            ):
                fusable.append((u, from_output, v, to_input))
        return fusable

    def linear_segments(self) -> list[list[GenericPE]]:
        """Maximal fusable chains of PEs, each in upstream-to-downstream order.

        Built from :meth:`fusable_edges`: consecutive fusable links are
        merged into one segment, so ``src -> a -> b -> c`` with all links
        fusable yields ``[[src, a, b, c]]``.  Only segments of two or more
        PEs are returned; PEs not on any fusable link do not appear.
        """
        next_of: dict[GenericPE, GenericPE] = {}
        has_fusable_in: set[GenericPE] = set()
        for u, _out, v, _in in self.fusable_edges():
            next_of[u] = v  # out_degree(u) == 1, so at most one entry per u
            has_fusable_in.add(v)
        segments = []
        for head in self.pes:
            if head in next_of and head not in has_fusable_in:
                chain = [head]
                while chain[-1] in next_of:
                    chain.append(next_of[chain[-1]])
                segments.append(chain)
        return segments

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, pe: GenericPE) -> bool:
        return pe in self._graph

    # -- composite expansion --------------------------------------------------

    def flatten(self) -> "WorkflowGraph":
        """Return an equivalent graph with every :class:`CompositePE` inlined.

        External edges into a composite are rewired to the mapped internal
        ``(pe, port)``; edges out likewise.  Nested composites are expanded
        recursively.  The original graph is not modified.
        """
        if not any(isinstance(pe, CompositePE) for pe in self._graph.nodes):
            return self

        flat = WorkflowGraph()
        for pe in self._graph.nodes:
            if not isinstance(pe, CompositePE):
                flat.add(pe)
            else:
                inner = pe.subgraph.flatten()
                for node in inner.pes:
                    flat.add(node)
                for edge in inner.edges():
                    u, out, v, inp, _ = edge
                    flat.connect(u, out, v, inp)
        for u, v, data in self._graph.edges(data=True):
            src, src_port = u, data["from_output"]
            dst, dst_port = v, data["to_input"]
            if isinstance(u, CompositePE):
                src, src_port = u.output_mappings[src_port]
            if isinstance(v, CompositePE):
                dst, dst_port = v.input_mappings[dst_port]
            flat.connect(src, src_port, dst, dst_port)
        return flat.flatten()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WorkflowGraph pes={[pe.name for pe in self.pes]} "
            f"edges={self._graph.number_of_edges()}>"
        )
