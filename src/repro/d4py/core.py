"""Processing Element (PE) base classes for the d4py stream engine.

A PE is the fundamental unit of computation in a dispel4py workflow: it
declares named input and output connections, consumes data items arriving on
its inputs, and emits data items on its outputs via :meth:`GenericPE.write`.

The class hierarchy mirrors dispel4py's:

* :class:`GenericPE` — arbitrary fan-in/fan-out; subclasses implement
  :meth:`GenericPE._process`.
* :class:`IterativePE` — exactly one input (``input``) and one output
  (``output``); ``_process(data)`` returns the value to emit (or ``None``).
* :class:`ProducerPE` — no inputs; driven by the engine a configurable
  number of times.
* :class:`ConsumerPE` — one input, no outputs.
* :class:`CompositePE` — wraps a sub-:class:`~repro.d4py.workflow.WorkflowGraph`
  so a whole pipeline can be reused as one node.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Mapping

from repro.d4py.grouping import Grouping

_pe_counter = itertools.count()


class GenericPE:
    """Base class for all Processing Elements.

    Subclasses declare connections in ``__init__`` with :meth:`_add_input`
    and :meth:`_add_output`, and implement :meth:`_process`, which receives
    a dict mapping input names to the data item that arrived.  Output is
    produced either by returning ``{output_name: value}`` from ``_process``
    or by calling :meth:`write` any number of times.

    Attributes
    ----------
    inputconnections:
        Mapping of input name to its declared :class:`Grouping`.
    outputconnections:
        Set-like mapping of declared output names.
    name:
        Unique instance name, defaults to ``ClassName<seq>``.
    """

    #: Default output name used by convenience single-port subclasses.
    OUTPUT_NAME = "output"
    #: Default input name used by convenience single-port subclasses.
    INPUT_NAME = "input"

    def __init__(self, name: str | None = None) -> None:
        self.inputconnections: dict[str, Grouping] = {}
        self.outputconnections: dict[str, dict] = {}
        self.name = name or f"{type(self).__name__}{next(_pe_counter)}"
        self._emitter: Callable[[str, Any], None] | None = None
        self._logger: Callable[[str], None] | None = None
        self.rank: int | None = None  # set by parallel mappings
        self.numprocesses: int = 1  # requested replication factor

    # -- connection declaration -------------------------------------------------

    def _add_input(self, name: str, grouping: Grouping | str | None = None) -> None:
        """Declare an input connection ``name`` with an optional grouping."""
        self.inputconnections[name] = Grouping.of(grouping)

    def _add_output(self, name: str) -> None:
        """Declare an output connection ``name``."""
        self.outputconnections[name] = {"name": name}

    # -- engine-facing API -------------------------------------------------------

    def _set_emitter(self, emitter: Callable[[str, Any], None]) -> None:
        self._emitter = emitter

    def _set_logger(self, logger: Callable[[str], None]) -> None:
        self._logger = logger

    def preprocess(self) -> None:
        """Hook run once per PE instance before any data is processed."""

    def postprocess(self) -> None:
        """Hook run once per PE instance after the stream is exhausted."""

    def process(self, inputs: Mapping[str, Any]) -> Mapping[str, Any] | None:
        """Process one unit of input; called by the engine.

        The default implementation delegates to :meth:`_process` and, if it
        returns a mapping, treats it as ``{output_name: value}``.
        """
        result = self._process(inputs)
        if result is not None:
            if not isinstance(result, Mapping):
                raise TypeError(
                    f"{self.name}._process must return a mapping of "
                    f"output name to value, got {type(result).__name__}"
                )
            for output, value in result.items():
                self.write(output, value)
        return None

    def _process(self, inputs: Mapping[str, Any]) -> Mapping[str, Any] | None:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _process()"
        )

    def write(self, output: str, data: Any) -> None:
        """Emit ``data`` on output connection ``output``."""
        if output not in self.outputconnections:
            raise KeyError(
                f"PE {self.name!r} has no output {output!r}; "
                f"declared outputs: {sorted(self.outputconnections)}"
            )
        if self._emitter is None:
            raise RuntimeError(
                f"PE {self.name!r} is not attached to an engine; "
                "write() is only valid during workflow execution"
            )
        self._emitter(output, data)

    def log(self, message: str) -> None:
        """Log a message through the enclosing engine (falls back to print)."""
        if self._logger is not None:
            self._logger(f"{self.name} (rank {self.rank}): {message}")
        else:  # pragma: no cover - only hit outside an engine
            print(f"{self.name}: {message}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"in={sorted(self.inputconnections)} out={sorted(self.outputconnections)}>"
        )


class IterativePE(GenericPE):
    """A PE consuming one input stream and producing one output stream.

    Subclasses implement ``_process(data)`` taking the single data item; a
    non-``None`` return value is written to the sole output.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._add_input(self.INPUT_NAME)
        self._add_output(self.OUTPUT_NAME)

    def process(self, inputs: Mapping[str, Any]) -> None:
        """Engine hook: unwrap the single input and delegate to ``_process``."""
        data = inputs[self.INPUT_NAME]
        result = self._process(data)
        if result is not None:
            self.write(self.OUTPUT_NAME, result)

    def _process(self, data: Any) -> Any:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _process(data)"
        )


class ProducerPE(GenericPE):
    """A source PE with no inputs and a single output.

    The engine drives a producer once per *iteration*: running a graph with
    ``input=5`` calls ``_process`` five times.  ``_process`` receives the
    iteration payload (``None`` unless explicit input data was supplied).
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._add_output(self.OUTPUT_NAME)

    def process(self, inputs: Mapping[str, Any]) -> None:
        """Engine hook: one production step; non-None results are emitted."""
        result = self._process(inputs)
        if result is not None:
            self.write(self.OUTPUT_NAME, result)

    def _process(self, inputs: Mapping[str, Any]) -> Any:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _process(inputs)"
        )


class ConsumerPE(GenericPE):
    """A sink PE with a single input and no outputs."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._add_input(self.INPUT_NAME)

    def process(self, inputs: Mapping[str, Any]) -> None:
        """Engine hook: unwrap the single input and consume it."""
        self._process(inputs[self.INPUT_NAME])

    def _process(self, data: Any) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _process(data)"
        )


class CompositePE(GenericPE):
    """A PE wrapping a sub-workflow, exposing selected internal ports.

    Construct with a factory that populates a
    :class:`~repro.d4py.workflow.WorkflowGraph`, then map external names to
    internal ``(pe, port)`` pairs with :meth:`_map_input` / :meth:`_map_output`.
    Mappings expand composites inline before execution, so a composite never
    executes itself.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        # Imported lazily to avoid a circular import at module load time.
        from repro.d4py.workflow import WorkflowGraph

        self.subgraph = WorkflowGraph()
        self.input_mappings: dict[str, tuple[GenericPE, str]] = {}
        self.output_mappings: dict[str, tuple[GenericPE, str]] = {}

    def connect(self, from_pe, from_output, to_pe, to_input) -> None:
        """Connect two PEs inside the wrapped sub-workflow."""
        self.subgraph.connect(from_pe, from_output, to_pe, to_input)

    def _map_input(self, external: str, pe: GenericPE, port: str) -> None:
        self.input_mappings[external] = (pe, port)
        self._add_input(external, pe.inputconnections.get(port))

    def _map_output(self, external: str, pe: GenericPE, port: str) -> None:
        self.output_mappings[external] = (pe, port)
        self._add_output(external)

    def process(self, inputs: Mapping[str, Any]) -> None:  # pragma: no cover
        """Engine hook: expand the wrapped sub-workflow (never called)."""
        raise RuntimeError(
            "CompositePE is expanded before execution and never processes data"
        )


def pes_from_iterable(
    items: Iterable[Any], name: str = "IterSource"
) -> ProducerPE:
    """Build a producer that replays ``items`` one per iteration.

    Convenience for tests and examples: run the graph with
    ``input=len(items)`` (or let :func:`repro.d4py.mappings.run_graph`
    infer it by passing the same iterable).
    """

    class _IterSource(ProducerPE):
        def __init__(self) -> None:
            super().__init__(name)
            self._iter = iter(items)

        def _process(self, inputs: Mapping[str, Any]) -> Any:
            try:
                return next(self._iter)
            except StopIteration:
                return None

    return _IterSource()
