"""Workflow graph visualisation: DOT export and ASCII rendering.

dispel4py users inspect abstract workflows before enactment; this module
renders a :class:`~repro.d4py.workflow.WorkflowGraph` as Graphviz DOT
(for tooling) or as a plain-text listing (for the CLI's ``show``
command), annotating edges with their ports and grouping policies.
"""

from __future__ import annotations

from repro.d4py.core import CompositePE, GenericPE
from repro.d4py.grouping import Grouping
from repro.d4py.workflow import WorkflowGraph

__all__ = ["to_dot", "to_text"]


def _edge_label(from_output: str, to_input: str, grouping: Grouping) -> str:
    label = f"{from_output}->{to_input}"
    if grouping.kind == "group_by":
        label += f" [group_by{list(grouping.keys)}]"
    elif grouping.kind != "shuffle":
        label += f" [{grouping.kind}]"
    return label


def to_dot(graph: WorkflowGraph, name: str = "workflow") -> str:
    """Render a graph as Graphviz DOT source."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for pe in graph.pes:
        shape = "component" if isinstance(pe, CompositePE) else "box"
        kind = type(pe).__name__
        lines.append(f'  "{pe.name}" [shape={shape} label="{pe.name}\\n({kind})"];')
    for u, from_output, v, to_input, grouping in graph.edges():
        label = _edge_label(from_output, to_input, grouping)
        lines.append(f'  "{u.name}" -> "{v.name}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def to_text(graph: WorkflowGraph) -> str:
    """Render a graph as an indented text listing, in topological order."""
    lines = []
    roots = set(graph.roots())
    for pe in graph.pes:
        marker = "◆" if pe in roots else "▶"
        lines.append(f"{marker} {pe.name} ({type(pe).__name__})")
        for port in sorted(pe.outputconnections):
            dests = graph.successors(pe, port)
            if not dests:
                lines.append(f"    {port} ─▶ (workflow output)")
            for dest, to_input, grouping in dests:
                suffix = ""
                if grouping.kind == "group_by":
                    suffix = f"  [group_by{list(grouping.keys)}]"
                elif grouping.kind != "shuffle":
                    suffix = f"  [{grouping.kind}]"
                lines.append(f"    {port} ─▶ {dest.name}.{to_input}{suffix}")
    return "\n".join(lines)
