"""An in-memory, Redis-like broker for the dynamic mapping.

dispel4py's dynamic workload allocation (Liang et al., 2022) uses a Redis
server as a shared work queue decoupling producers from an elastic pool of
workers.  A real Redis server is not available offline, so this module
provides :class:`RedisSim`: a thread-safe, in-process data store exposing
the subset of the Redis command surface the dynamic mapping needs —
blocking list pops, hashes, counters and plain keys.

The substitution preserves the behaviour that matters for the paper's
claims: a shared FIFO of tasks that any worker can claim, with blocking
consumption and atomic counters for in-flight accounting.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from typing import Any


class RedisSim:
    """Thread-safe in-memory key/list/hash store with blocking pops."""

    def __init__(self) -> None:
        self._lock = threading.Condition()
        self._lists: dict[str, deque] = defaultdict(deque)
        self._hashes: dict[str, dict] = defaultdict(dict)
        self._kv: dict[str, Any] = {}
        # Consumers currently parked inside brpop()/wait_for_zero() —
        # exposed as a gauge via bind_metrics() so dashboards can tell a
        # starved pool (many blocked consumers) from a saturated one.
        self._blocked = 0

    @property
    def blocked_consumers(self) -> int:
        """How many threads are currently blocked in ``brpop``/``wait_for_zero``."""
        with self._lock:
            return self._blocked

    # -- lists ---------------------------------------------------------------

    def lpush(self, key: str, *values: Any) -> int:
        """Prepend values; returns the new list length."""
        with self._lock:
            for v in values:
                self._lists[key].appendleft(v)
            self._lock.notify_all()
            return len(self._lists[key])

    def rpush(self, key: str, *values: Any) -> int:
        """Append values; returns the new list length."""
        with self._lock:
            for v in values:
                self._lists[key].append(v)
            self._lock.notify_all()
            return len(self._lists[key])

    def _drop_if_empty(self, key: str) -> None:
        """Remove a fully drained list so the key table does not grow forever.

        ``_lists`` is a ``defaultdict``: every key ever popped would
        otherwise survive as an empty deque, so per-run namespaces on a
        shared broker would accumulate ghosts and ``stats()["lists"]``
        would count queues that no longer exist.  Callers hold ``_lock``.
        """
        lst = self._lists.get(key)
        if lst is not None and not lst:
            del self._lists[key]

    def rpop(self, key: str) -> Any | None:
        """Non-blocking pop from the tail; ``None`` if empty."""
        with self._lock:
            lst = self._lists.get(key)
            value = lst.pop() if lst else None
            self._drop_if_empty(key)
            return value

    def lpop(self, key: str) -> Any | None:
        """Non-blocking pop from the head; ``None`` if empty."""
        with self._lock:
            lst = self._lists.get(key)
            value = lst.popleft() if lst else None
            self._drop_if_empty(key)
            return value

    def _bpop(
        self, key: str, timeout: float | None, from_head: bool
    ) -> Any | None:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                lst = self._lists.get(key)
                if lst:
                    value = lst.popleft() if from_head else lst.pop()
                    self._drop_if_empty(key)
                    return value
                if deadline is None:
                    self._blocked += 1
                    try:
                        self._lock.wait()
                    finally:
                        self._blocked -= 1
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._blocked += 1
                    try:
                        self._lock.wait(remaining)
                    finally:
                        self._blocked -= 1

    def brpop(self, key: str, timeout: float | None = None) -> Any | None:
        """Blocking tail pop: wait up to ``timeout`` seconds for an item."""
        return self._bpop(key, timeout, from_head=False)

    def blpop(self, key: str, timeout: float | None = None) -> Any | None:
        """Blocking head pop: wait up to ``timeout`` seconds for an item.

        Paired with :meth:`rpush` this gives true FIFO consumption — the
        combination the dynamic mapping uses for its task queue, so the
        oldest queued task is always the next one claimed.
        """
        return self._bpop(key, timeout, from_head=True)

    def llen(self, key: str) -> int:
        """Current length of list ``key`` (0 when absent)."""
        with self._lock:
            return len(self._lists.get(key, ()))

    # -- hashes ----------------------------------------------------------------

    def hset(self, key: str, field: str, value: Any) -> None:
        """Set one field of hash ``key``."""
        with self._lock:
            self._hashes[key][field] = value

    def hget(self, key: str, field: str) -> Any | None:
        """Read one field of hash ``key`` (``None`` when absent)."""
        with self._lock:
            return self._hashes.get(key, {}).get(field)

    def hgetall(self, key: str) -> dict:
        """Copy of hash ``key`` as a plain dict."""
        with self._lock:
            return dict(self._hashes.get(key, {}))

    def hsetnx(self, key: str, field: str, value: Any) -> bool:
        """Set a hash field only if absent; returns True if it was set."""
        with self._lock:
            h = self._hashes[key]
            if field in h:
                return False
            h[field] = value
            return True

    # -- counters and keys -------------------------------------------------------

    def incr(self, key: str, amount: int = 1) -> int:
        """Atomically add ``amount``; returns the new value."""
        with self._lock:
            value = int(self._kv.get(key, 0)) + amount
            self._kv[key] = value
            self._lock.notify_all()
            return value

    def decr(self, key: str, amount: int = 1) -> int:
        """Atomically subtract ``amount``; returns the new value."""
        return self.incr(key, -amount)

    def get(self, key: str) -> Any | None:
        """Read a plain key (``None`` when absent)."""
        with self._lock:
            return self._kv.get(key)

    def set(self, key: str, value: Any) -> None:
        """Write a plain key and wake any counter-waiters."""
        with self._lock:
            self._kv[key] = value
            self._lock.notify_all()

    def delete(self, *keys: str) -> int:
        """Delete keys from every namespace; returns how many existed."""
        with self._lock:
            n = 0
            for key in keys:
                for ns in (self._kv, self._lists, self._hashes):
                    if key in ns:
                        del ns[key]
                        n += 1
            if n:
                # A deleted counter reads as 0: wake wait_for_zero()
                # waiters so they re-check instead of sleeping out their
                # full timeout on a key that no longer exists.
                self._lock.notify_all()
            return n

    def delete_prefix(self, prefix: str) -> int:
        """Delete every key starting with ``prefix`` across all namespaces.

        Used by the dynamic mapping to drop its per-run ``d4pyrun:<id>:``
        namespace when an enactment finishes, so long-lived shared brokers
        do not accumulate counters from completed runs.
        """
        with self._lock:
            n = 0
            for ns in (self._kv, self._lists, self._hashes):
                stale = [k for k in ns if k.startswith(prefix)]
                for key in stale:
                    del ns[key]
                n += len(stale)
            if n:
                self._lock.notify_all()
            return n

    def wait_for_zero(self, key: str, timeout: float | None = None) -> bool:
        """Block until counter ``key`` reaches zero (or below).

        Returns False on timeout.  Used by the dynamic mapping to wait for
        the in-flight task counter to drain.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while int(self._kv.get(key, 0)) > 0:
                self._blocked += 1
                try:
                    if deadline is None:
                        self._lock.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return False
                        self._lock.wait(remaining)
                finally:
                    self._blocked -= 1
            return True

    def flushall(self) -> None:
        """Drop every key in every namespace."""
        with self._lock:
            self._lists.clear()
            self._hashes.clear()
            self._kv.clear()
            self._lock.notify_all()

    # -- observability -----------------------------------------------------------

    def stats(self) -> dict:
        """Point-in-time broker statistics (keys, queued items, consumers)."""
        with self._lock:
            return {
                "lists": len(self._lists),
                "queued_items": sum(len(lst) for lst in self._lists.values()),
                "hashes": len(self._hashes),
                "keys": len(self._kv),
                "blocked_consumers": self._blocked,
            }

    def stats_prefix(self, prefix: str) -> dict:
        """Statistics restricted to keys under ``prefix`` (one partition).

        ``blocked_consumers`` is omitted: blocking is accounted globally
        here and per-partition by :class:`NamespacedRedisSim`.
        """
        with self._lock:
            lists = [v for k, v in self._lists.items() if k.startswith(prefix)]
            return {
                "lists": len(lists),
                "queued_items": sum(len(lst) for lst in lists),
                "hashes": sum(1 for k in self._hashes if k.startswith(prefix)),
                "keys": sum(1 for k in self._kv if k.startswith(prefix)),
            }

    def namespaced(self, prefix: str) -> "NamespacedRedisSim":
        """A view of this broker confined to keys under ``prefix``.

        Cluster mode gives each server shard its own partition of one
        shared broker (``shard:<id>:``): shards cannot observe or drain
        each other's queues, yet the underlying store — and its single
        condition variable — stays one object.
        """
        return NamespacedRedisSim(self, prefix)

    def bind_metrics(self, registry) -> None:
        """Register live callback gauges for this broker on ``registry``.

        The gauges read broker state at scrape time, so binding costs
        nothing on the hot path.  Re-binding (e.g. one broker shared by
        several enactments) just overwrites the callbacks — idempotent.
        """
        registry.gauge(
            "laminar_broker_queued_items",
            "Items across every list of the simulated Redis broker.",
        ).set_function(lambda: self.stats()["queued_items"])
        registry.gauge(
            "laminar_broker_blocked_consumers",
            "Consumers blocked in brpop/wait_for_zero on the broker.",
        ).set_function(lambda: self.blocked_consumers)


class NamespacedRedisSim:
    """A per-shard partition of a shared :class:`RedisSim`.

    Every key is transparently prefixed, so the wrapper exposes the full
    broker surface while operations can only ever touch its own
    namespace — :meth:`flushall` drops *this partition*, not the parent.
    The dynamic mapping composes its own ``d4pyrun:<id>:`` run namespace
    on top, so keys end up ``shard:<id>:d4pyrun:<run>:...`` and per-run
    cleanup (:meth:`delete_prefix`) still works unchanged.
    """

    def __init__(self, parent: RedisSim, prefix: str) -> None:
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        self.parent = parent
        self.prefix = prefix
        self._blocked = 0
        self._blocked_lock = threading.Lock()

    def _k(self, key: str) -> str:
        return self.prefix + key

    @property
    def blocked_consumers(self) -> int:
        """Threads blocked in this partition's ``brpop``/``wait_for_zero``."""
        with self._blocked_lock:
            return self._blocked

    def _enter_blocked(self) -> None:
        with self._blocked_lock:
            self._blocked += 1

    def _exit_blocked(self) -> None:
        with self._blocked_lock:
            self._blocked -= 1

    # -- lists ---------------------------------------------------------------

    def lpush(self, key: str, *values: Any) -> int:
        return self.parent.lpush(self._k(key), *values)

    def rpush(self, key: str, *values: Any) -> int:
        return self.parent.rpush(self._k(key), *values)

    def rpop(self, key: str) -> Any | None:
        return self.parent.rpop(self._k(key))

    def lpop(self, key: str) -> Any | None:
        return self.parent.lpop(self._k(key))

    def brpop(self, key: str, timeout: float | None = None) -> Any | None:
        self._enter_blocked()
        try:
            return self.parent.brpop(self._k(key), timeout)
        finally:
            self._exit_blocked()

    def blpop(self, key: str, timeout: float | None = None) -> Any | None:
        self._enter_blocked()
        try:
            return self.parent.blpop(self._k(key), timeout)
        finally:
            self._exit_blocked()

    def llen(self, key: str) -> int:
        return self.parent.llen(self._k(key))

    # -- hashes ----------------------------------------------------------------

    def hset(self, key: str, field: str, value: Any) -> None:
        self.parent.hset(self._k(key), field, value)

    def hget(self, key: str, field: str) -> Any | None:
        return self.parent.hget(self._k(key), field)

    def hgetall(self, key: str) -> dict:
        return self.parent.hgetall(self._k(key))

    def hsetnx(self, key: str, field: str, value: Any) -> bool:
        return self.parent.hsetnx(self._k(key), field, value)

    # -- counters and keys -------------------------------------------------------

    def incr(self, key: str, amount: int = 1) -> int:
        return self.parent.incr(self._k(key), amount)

    def decr(self, key: str, amount: int = 1) -> int:
        return self.parent.decr(self._k(key), amount)

    def get(self, key: str) -> Any | None:
        return self.parent.get(self._k(key))

    def set(self, key: str, value: Any) -> None:
        self.parent.set(self._k(key), value)

    def delete(self, *keys: str) -> int:
        return self.parent.delete(*(self._k(k) for k in keys))

    def delete_prefix(self, prefix: str) -> int:
        return self.parent.delete_prefix(self._k(prefix))

    def wait_for_zero(self, key: str, timeout: float | None = None) -> bool:
        self._enter_blocked()
        try:
            return self.parent.wait_for_zero(self._k(key), timeout)
        finally:
            self._exit_blocked()

    def flushall(self) -> None:
        """Drop every key of *this partition* (the parent is untouched)."""
        self.parent.delete_prefix(self.prefix)

    def namespaced(self, prefix: str) -> "NamespacedRedisSim":
        """A nested partition — prefixes compose onto the shared parent,
        so ``shard:s0:`` + ``d4pyrun:1:`` scopes to
        ``shard:s0:d4pyrun:1:...`` keys."""
        return NamespacedRedisSim(self.parent, self._k(prefix))

    # -- observability -----------------------------------------------------------

    def stats(self) -> dict:
        """Partition-scoped statistics (same shape as :meth:`RedisSim.stats`)."""
        stats = self.parent.stats_prefix(self.prefix)
        stats["blocked_consumers"] = self.blocked_consumers
        return stats

    def bind_metrics(self, registry) -> None:
        """Register partition-scoped broker gauges (same names as the
        parent's — each shard has its own metrics registry)."""
        registry.gauge(
            "laminar_broker_queued_items",
            "Items across every list of the simulated Redis broker.",
        ).set_function(lambda: self.stats()["queued_items"])
        registry.gauge(
            "laminar_broker_blocked_consumers",
            "Consumers blocked in brpop/wait_for_zero on the broker.",
        ).set_function(lambda: self.blocked_consumers)


_default_broker: RedisSim | None = None
_default_broker_lock = threading.Lock()


def default_broker() -> RedisSim:
    """Process-wide shared broker instance (lazily created)."""
    global _default_broker
    with _default_broker_lock:
        if _default_broker is None:
            _default_broker = RedisSim()
        return _default_broker
