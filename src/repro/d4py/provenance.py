"""Data provenance for workflow enactment.

dispel4py supports provenance capture — recording, for every data item,
which PE invocation produced it and which items it was derived from —
so scientific users can audit a result back to its inputs.  This module
provides the same capability for the reference (sequential) mapping:

* every emitted data item gets a unique id;
* every PE invocation is recorded with the item ids it consumed and
  produced plus its duration;
* :meth:`ProvenanceTrace.lineage` walks the derivation graph backwards
  from any item to the workflow inputs.

Enable with ``run_graph(graph, input=…, provenance=True)`` (simple
mapping only — parallel mappings would need distributed id coordination,
which the paper's system also does not attempt); the trace arrives on
``RunResult.provenance``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["ProvenanceTrace", "Invocation", "ItemRecord"]


@dataclass(frozen=True)
class ItemRecord:
    """One data item's provenance: who made it, from what."""

    item_id: int
    pe_name: str
    port: str
    invocation_id: int
    preview: str  # repr-truncated payload for human inspection


@dataclass(frozen=True)
class Invocation:
    """One PE ``process()`` call."""

    invocation_id: int
    pe_name: str
    consumed: tuple[int, ...]  # item ids
    produced: tuple[int, ...]  # item ids
    seconds: float


@dataclass
class ProvenanceTrace:
    """The full derivation record of one enactment."""

    items: dict[int, ItemRecord] = field(default_factory=dict)
    invocations: list[Invocation] = field(default_factory=list)
    _item_counter: "itertools.count" = field(
        default_factory=itertools.count, repr=False
    )
    _invocation_counter: "itertools.count" = field(
        default_factory=itertools.count, repr=False
    )

    # -- capture (used by the simple mapping) -------------------------------

    def new_invocation_id(self) -> int:
        """Reserve the next invocation id."""
        return next(self._invocation_counter)

    def record_item(
        self, pe_name: str, port: str, invocation_id: int, payload
    ) -> int:
        """Register one emitted item; returns its new item id."""
        item_id = next(self._item_counter)
        preview = repr(payload)
        if len(preview) > 80:
            preview = preview[:77] + "..."
        self.items[item_id] = ItemRecord(
            item_id=item_id,
            pe_name=pe_name,
            port=port,
            invocation_id=invocation_id,
            preview=preview,
        )
        return item_id

    def record_invocation(
        self,
        invocation_id: int,
        pe_name: str,
        consumed: tuple[int, ...],
        produced: tuple[int, ...],
        seconds: float,
    ) -> None:
        """Register one completed PE invocation."""
        self.invocations.append(
            Invocation(invocation_id, pe_name, consumed, produced, seconds)
        )

    # -- queries --------------------------------------------------------------

    def invocation_of(self, invocation_id: int) -> Invocation:
        """Look up an invocation record by id (KeyError when unknown)."""
        for inv in self.invocations:
            if inv.invocation_id == invocation_id:
                return inv
        raise KeyError(f"no invocation {invocation_id}")

    def lineage(self, item_id: int) -> list[ItemRecord]:
        """Every ancestor item of ``item_id`` (nearest first), inclusive.

        Walks produced→consumed edges backwards through invocations.
        """
        if item_id not in self.items:
            raise KeyError(f"unknown item id {item_id}")
        seen: list[ItemRecord] = []
        frontier = [item_id]
        visited: set[int] = set()
        while frontier:
            current = frontier.pop(0)
            if current in visited:
                continue
            visited.add(current)
            record = self.items[current]
            seen.append(record)
            inv = self.invocation_of(record.invocation_id)
            frontier.extend(inv.consumed)
        return seen

    def items_produced_by(self, pe_name: str) -> list[ItemRecord]:
        """Every item a given PE emitted, in creation order."""
        return [rec for rec in self.items.values() if rec.pe_name == pe_name]

    def describe(self, item_id: int) -> str:
        """Human-readable lineage report for one item."""
        lines = []
        for depth, record in enumerate(self.lineage(item_id)):
            indent = "  " * depth
            lines.append(
                f"{indent}{record.pe_name}.{record.port} "
                f"#{record.item_id}: {record.preview}"
            )
        return "\n".join(lines)
