"""Data-partitioning (grouping) strategies between replicated PE instances.

When a destination PE runs as *n* parallel instances, a grouping decides
which instance(s) receive each data item:

* ``shuffle`` — round-robin across instances (the default).
* ``group_by`` — hash of selected tuple elements; items with equal keys
  always land on the same instance (stateful aggregation).
* ``global`` — every item goes to instance 0 (all-to-one).
* ``all`` — every item is broadcast to all instances (one-to-all).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Sequence


def _stable_hash(value: Any) -> int:
    """Deterministic cross-process hash (``hash()`` is salted per process)."""
    return zlib.adler32(repr(value).encode("utf-8", "backslashreplace"))


@dataclass(frozen=True)
class Grouping:
    """A routing policy from one upstream edge to a replicated PE's inputs."""

    kind: str = "shuffle"
    keys: tuple[int, ...] = field(default_factory=tuple)

    VALID = ("shuffle", "group_by", "global", "all")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID:
            raise ValueError(
                f"unknown grouping {self.kind!r}; expected one of {self.VALID}"
            )
        if self.kind == "group_by" and not self.keys:
            raise ValueError("group_by grouping requires at least one key index")

    @classmethod
    def of(cls, spec: "Grouping | str | Sequence[int] | None") -> "Grouping":
        """Coerce a user-facing grouping spec into a :class:`Grouping`.

        Accepts an existing :class:`Grouping`, the strings ``shuffle`` /
        ``global`` / ``all``, or a sequence of integer indices (dispel4py's
        group-by syntax).  ``None`` means shuffle.
        """
        if spec is None:
            return cls("shuffle")
        if isinstance(spec, Grouping):
            return spec
        if isinstance(spec, str):
            return cls(spec)
        return cls("group_by", tuple(int(i) for i in spec))

    def route(self, data: Any, n_instances: int, counter: int) -> list[int]:
        """Return the destination instance indices for one data item.

        ``counter`` is a per-edge monotone counter used by shuffle routing.
        """
        if n_instances <= 1:
            return [0]
        if self.kind == "shuffle":
            return [counter % n_instances]
        if self.kind == "global":
            return [0]
        if self.kind == "all":
            return list(range(n_instances))
        # group_by
        key = self.extract_key(data)
        return [_stable_hash(key) % n_instances]

    def extract_key(self, data: Any) -> Any:
        """Extract the group-by key tuple from a data item.

        Items are expected to be indexable (tuple/list); scalar items group
        on their own value.
        """
        if self.kind != "group_by":
            raise ValueError("extract_key is only meaningful for group_by")
        if isinstance(data, (tuple, list)):
            return tuple(data[i] for i in self.keys)
        return (data,)
