"""repro.d4py — a from-scratch reimplementation of the dispel4py stream engine.

dispel4py (Filgueira et al., 2014) is a parallel stream-based dataflow
framework: workflows are DAGs whose nodes are Processing Elements (PEs) and
whose edges carry data items.  Users describe an *abstract* workflow; a
*mapping* (sequential, multiprocessing, or dynamic/Redis) turns it into a
*concrete* workflow executed on the chosen substrate.

This package provides:

* :mod:`repro.d4py.core` — PE base classes (:class:`GenericPE`,
  :class:`IterativePE`, :class:`ProducerPE`, :class:`ConsumerPE`,
  :class:`CompositePE`).
* :mod:`repro.d4py.workflow` — :class:`WorkflowGraph`, the abstract DAG.
* :mod:`repro.d4py.grouping` — data-partitioning strategies between PE
  instances (shuffle, group-by, global, all-to-all broadcast).
* :mod:`repro.d4py.mappings` — execution backends: ``simple`` (sequential),
  ``multi`` (static multiprocessing), ``dynamic`` (work-queue autoscaling
  over the simulated Redis broker in :mod:`repro.d4py.redisim`).
"""

from repro.d4py.core import (
    ConsumerPE,
    GenericPE,
    IterativePE,
    ProducerPE,
    CompositePE,
)
from repro.d4py.workflow import WorkflowGraph
from repro.d4py.grouping import Grouping
from repro.d4py.mappings import run_graph
from repro.d4py.functional import SimpleFunctionPE, chain, create_iterative, producer_from
from repro.d4py.realtime import StreamSession

__all__ = [
    "GenericPE",
    "IterativePE",
    "ProducerPE",
    "ConsumerPE",
    "CompositePE",
    "WorkflowGraph",
    "Grouping",
    "run_graph",
    "SimpleFunctionPE",
    "chain",
    "create_iterative",
    "producer_from",
    "StreamSession",
]
