"""Functional helpers: build PEs from plain Python callables.

dispel4py ships ``SimpleFunctionPE`` and ``create_iterative`` so users
can lift ordinary functions into workflow nodes without writing classes;
these are their equivalents, plus a ``chain`` helper that wires a list of
callables/PEs into a linear :class:`~repro.d4py.workflow.WorkflowGraph`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.d4py.core import GenericPE, IterativePE, ProducerPE
from repro.d4py.workflow import WorkflowGraph

__all__ = ["SimpleFunctionPE", "create_iterative", "producer_from", "chain"]


class SimpleFunctionPE(IterativePE):
    """A one-in/one-out PE applying ``fn`` to every data item.

    ``None`` results are dropped (filter semantics), matching
    :meth:`IterativePE._process`.  Extra positional/keyword arguments are
    partially applied: ``SimpleFunctionPE(round, 2)`` rounds to 2 places.
    """

    def __init__(
        self,
        fn: Callable,
        *args: Any,
        name: str | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(name or f"{getattr(fn, '__name__', 'fn')}_pe")
        self.fn = fn
        self.args = args
        self.kwargs = kwargs

    def _process(self, data: Any) -> Any:
        return self.fn(data, *self.args, **self.kwargs)


def create_iterative(fn: Callable, name: str | None = None) -> type[IterativePE]:
    """Create an :class:`IterativePE` *subclass* whose ``_process`` is ``fn``.

    Useful when a reusable, registrable class is wanted rather than an
    instance — the class carries the function's name and docstring, so
    the describer and structural search see meaningful metadata.
    """

    def _process(self, data):
        return fn(data)

    cls_name = name or "".join(
        part.capitalize() for part in getattr(fn, "__name__", "fn").split("_")
    ) + "PE"
    return type(
        cls_name,
        (IterativePE,),
        {"_process": _process, "__doc__": fn.__doc__ or f"PE applying {fn.__name__}."},
    )


def producer_from(iterable: Iterable, name: str = "producer") -> ProducerPE:
    """A producer replaying ``iterable``, one item per iteration."""

    class _Producer(ProducerPE):
        def __init__(self) -> None:
            super().__init__(name)
            self._iter = iter(iterable)

        def _process(self, inputs):
            try:
                return next(self._iter)
            except StopIteration:
                return None

    return _Producer()


def chain(*stages: GenericPE | Callable, names: list[str] | None = None) -> WorkflowGraph:
    """Wire stages into a linear workflow; callables are lifted to PEs.

    ``chain(source_pe, str.upper, lambda s: s[:3])`` builds a three-node
    graph.  Returns the graph; fetch nodes by name for inspection.
    """
    if not stages:
        raise ValueError("chain requires at least one stage")
    pes: list[GenericPE] = []
    for i, stage in enumerate(stages):
        if isinstance(stage, GenericPE):
            pes.append(stage)
        elif callable(stage):
            label = names[i] if names and i < len(names) else None
            pes.append(SimpleFunctionPE(stage, name=label or f"stage{i}"))
        else:
            raise TypeError(f"stage {i} is neither a PE nor callable: {stage!r}")
    graph = WorkflowGraph()
    if len(pes) == 1:
        graph.add(pes[0])
    for up, down in zip(pes, pes[1:]):
        graph.connect(up, "output", down, "input")
    return graph
