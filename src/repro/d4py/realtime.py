"""Real-time stream ingestion: push data into a *live* workflow.

One of Laminar 2.0's listed contributions is "support for dynamic process
allocation and real-time data streams within serverless environments".
The batch-style ``run_graph`` drives producers a fixed number of times;
:class:`StreamSession` instead keeps a workflow *running* on the dynamic
(work-queue) engine and lets external code push items as they arrive —
a socket reader, a message-bus consumer, a simulation loop:

    session = StreamSession(graph).start()
    session.push({"sensor": "s1", "value": 21.5})   # any thread
    ...
    result = session.stop()                          # drain + RunResult

Pushed items are delivered to the workflow's *entry* PEs (roots with an
input port), honouring their groupings; the elastic worker pool and
per-instance state semantics are exactly those of the dynamic mapping.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.d4py.core import ProducerPE
from repro.d4py.mappings.base import RunResult
from repro.d4py.mappings.dynamic import _DynamicEngine
from repro.d4py.redisim import RedisSim
from repro.d4py.workflow import WorkflowGraph

__all__ = ["StreamSession"]


class StreamSession:
    """A live workflow accepting pushed items until stopped."""

    def __init__(
        self,
        graph: WorkflowGraph,
        min_workers: int = 1,
        max_workers: int = 4,
        instances_per_pe: int = 4,
        autoscale: bool = True,
        broker: RedisSim | None = None,
        batch_max_items: "int | str | None" = None,
        batch_max_delay: float = 0.002,
        fuse: bool = True,
    ) -> None:
        self._engine = _DynamicEngine(
            graph,
            broker or RedisSim(),
            instances_per_pe=instances_per_pe,
            min_workers=min_workers,
            max_workers=max_workers,
            autoscale=autoscale,
            batch_max_items=batch_max_items,
            batch_max_delay=batch_max_delay,
            fuse=fuse,
        )
        self._entries = []
        for pe in self._engine.flat.roots():
            if isinstance(pe, ProducerPE) or not pe.inputconnections:
                raise ValueError(
                    f"root PE {pe.name!r} is a producer; StreamSession needs "
                    "consumable entry PEs (roots with an input port)"
                )
            self._entries.append((pe, next(iter(pe.inputconnections))))
        if not self._entries:
            raise ValueError("workflow has no entry PEs to push into")
        self._started = False
        self._stopped = False
        self._pushed = 0
        self._push_counters: dict[str, int] = {}
        self._lock = threading.Lock()
        self._scaler: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "StreamSession":
        """Spin up the worker pool (and autoscaler); idempotent."""
        with self._lock:
            if self._started:
                return self
            self._started = True
        for _ in range(self._engine.min_workers):
            self._engine._spawn_worker()
        if self._engine.autoscale:
            self._scaler = threading.Thread(
                target=self._engine._autoscaler_loop, daemon=True
            )
            self._scaler.start()
        return self

    def push(self, item: Any) -> None:
        """Deliver one item to every entry PE (thread-safe)."""
        if not self._started or self._stopped:
            raise RuntimeError("push() requires a started, unstopped session")
        with self._lock:
            self._pushed += 1
        for pe, input_name in self._entries:
            grouping = pe.inputconnections[input_name]
            n = self._engine.n_instances[pe.name]
            with self._lock:
                counter = self._push_counters.get(pe.name, 0)
                self._push_counters[pe.name] = counter + 1
            for idx in grouping.route(item, n, counter):
                self._engine.push_task(pe.name, idx, input_name, item)

    def push_many(self, items) -> int:
        """Push an iterable of items; returns how many were pushed."""
        count = 0
        for item in items:
            self.push(item)
            count += 1
        return count

    @property
    def pushed(self) -> int:
        """How many items have been pushed into the session."""
        return self._pushed

    def pending(self) -> int:
        """Tasks currently queued or executing."""
        value = self._engine.broker.get(self._engine.ns + "pending")
        return int(value or 0)

    def results_so_far(self) -> dict[str, list]:
        """Snapshot of leaf outputs collected so far (copy)."""
        with self._engine.result_lock:
            return {
                f"{pe}.{port}": list(values)
                for (pe, port), values in self._engine.result.outputs.items()
            }

    def stop(self, timeout: float = 60.0) -> RunResult:
        """Drain in-flight work, retire workers, return the final result."""
        with self._lock:
            if self._stopped:
                return self._engine.result
            self._stopped = True
        if not self._engine.broker.wait_for_zero(
            self._engine.ns + "pending", timeout=timeout
        ):
            raise TimeoutError("stream session did not drain in time")
        self._engine.stop_event.set()
        self._engine._wake_workers()
        with self._engine.workers_lock:
            workers = list(self._engine.workers)
        for worker in workers:
            worker.join(timeout=5.0)
        if self._scaler is not None:
            self._scaler.join(timeout=5.0)
        leaked = sum(1 for worker in workers if worker.is_alive())
        if leaked:
            from repro.obs.events import format_event

            with self._engine.result_lock:
                self._engine.result.logs.append(
                    format_event(
                        "worker_leak",
                        component="stream",
                        leaked_threads=leaked,
                        join_timeout=5.0,
                        queue=self._engine.ns + "tasks",
                    )
                )

        # Like the dynamic mapping's final sweep: postprocess emissions
        # reach leaves but are not dispatched onward through fused edges.
        self._engine._postprocessing = True
        state = self._engine._frame_state()  # emitters need this thread's state
        for (pe_name, idx), (pe, lock, stats) in sorted(
            self._engine.instances.items()
        ):
            with lock:
                pe.postprocess()
            self._engine.result.iterations[f"{pe_name}{idx}"] = stats[0]
            self._engine.result.timings[f"{pe_name}{idx}"] = stats[1]
        state.buffers.clear()
        state.births.clear()
        self._engine._merge_frame_results(state)
        self._engine.broker.delete_prefix(self._engine.ns)
        if self._engine.errors:
            raise RuntimeError(
                "stream session failures: " + "; ".join(self._engine.errors)
            )
        return self._engine.result

    def __enter__(self) -> "StreamSession":
        return self.start()

    def __exit__(self, *exc) -> None:
        if not self._stopped:
            self.stop()
