"""Feature extraction from simplified parse trees (Aroma §3.2).

Four feature families are extracted for every non-keyword leaf token, with
local variable names abstracted to ``#VAR`` so that structure, not naming,
drives similarity:

* **Token features** — the token itself.
* **Parent features** — ``(token, child-index, ancestor-label)`` for the
  three nearest ancestors, encoding *where* in a construct the token sits
  (e.g. "`i` is the condition of an `if`").
* **Sibling features** — ``(token, next-token)`` for adjacent non-keyword
  leaves, encoding local ordering.
* **Variable-usage features** — for consecutive uses of the same local
  variable, the pair of enclosing labels, encoding dataflow context (e.g.
  "assigned under `=`, then used inside a `call`").

Features are returned as a multiset (collections.Counter) of strings;
:mod:`repro.aroma.vocab` turns them into sparse vectors.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.aroma.spt import SPTLeaf, SPTNode

__all__ = ["extract_features", "feature_set", "FeatureConfig"]

#: Abstract stand-in for local variable names.
VAR = "#VAR"

#: How many ancestors contribute parent features (Aroma uses 3).
N_ANCESTORS = 3


@dataclass(frozen=True)
class FeatureConfig:
    """Which Aroma feature families to extract (all on by default).

    Exists so the feature families can be ablated individually — the
    original Aroma paper studies exactly this, and
    ``benchmarks/bench_ablate_aroma_features.py`` reproduces the study on
    the synthetic corpus.
    """

    token: bool = True
    parent: bool = True
    sibling: bool = True
    variable_usage: bool = True
    n_ancestors: int = N_ANCESTORS
    abstract_variables: bool = True


DEFAULT_CONFIG = FeatureConfig()


def _walk(
    node: SPTNode,
    ancestors: list[tuple[str, int]],
    leaves: list[tuple[SPTLeaf, list[tuple[str, int]]]],
) -> None:
    for idx, child in enumerate(node.children):
        if isinstance(child, SPTLeaf):
            leaves.append((child, ancestors + [(node.label, idx)]))
        else:
            _walk(child, ancestors + [(node.label, idx)], leaves)


def extract_features(
    spt: SPTNode, config: FeatureConfig = DEFAULT_CONFIG
) -> Counter:
    """Extract Aroma's four feature families from one SPT.

    ``config`` selects which families contribute (default: all four, the
    behaviour of the original system).
    """
    leaves: list[tuple[SPTLeaf, list[tuple[str, int]]]] = []
    _walk(spt, [], leaves)

    features: Counter = Counter()
    last_context_for_var: dict[str, str] = {}

    tokens_abstract: list[str] = []
    for leaf, chain in leaves:
        token = (
            VAR if (leaf.is_variable and config.abstract_variables) else leaf.token
        )
        tokens_abstract.append(token)

        if config.token:
            features[token] += 1

        if config.parent:
            # Parent features: nearest n_ancestors ancestors, nearest first.
            for depth, (label, idx) in enumerate(
                reversed(chain[-config.n_ancestors :])
            ):
                features[f"{token}>{depth}>{idx}>{label}"] += 1

        if config.variable_usage and leaf.is_variable:
            enclosing = chain[-1][0] if chain else ""
            prev = last_context_for_var.get(leaf.token)
            if prev is not None:
                features[f"{prev}-->{enclosing}"] += 1
            last_context_for_var[leaf.token] = enclosing

    if config.sibling:
        # Sibling features: adjacent non-keyword leaves in DFS order.
        for a, b in zip(tokens_abstract, tokens_abstract[1:]):
            features[f"{a}~{b}"] += 1

    return features


def feature_set(
    spt: SPTNode, config: FeatureConfig = DEFAULT_CONFIG
) -> frozenset[str]:
    """The feature *set* (ignoring multiplicity) — used by LSH and overlap
    scoring, where Aroma treats features as a set."""
    return frozenset(extract_features(spt, config))
