"""Aroma structural code search, adapted to Python for Laminar 2.0.

Aroma (Luan et al., OOPSLA 2019) recommends code by *structural*
similarity: snippets are parsed into **simplified parse trees (SPTs)**,
featurised into sparse vectors capturing local structure with variable
names abstracted away, and searched with sparse matrix multiplication.
The original uses ANTLR-generated Java parse trees; offline we derive SPTs
from the stdlib ``ast`` module instead (see DESIGN.md substitution S13) —
the SPT shape (keyword-token labels, abstracted variables) is preserved.

Pipeline stages (paper Fig 3):

* :mod:`repro.aroma.spt` — SPT generation, including a best-effort repair
  loop so *partial* snippets still parse (essential for Figs 12/13).
* :mod:`repro.aroma.features` — token / parent / sibling / variable-usage
  feature extraction.
* :mod:`repro.aroma.vocab` — feature vocabulary + sparse vectorisation.
* :mod:`repro.aroma.index` — the searchable corpus index (overlap scores
  via one CSR matrix–vector product).
* :mod:`repro.aroma.prune` — prune-and-rerank against the query.
* :mod:`repro.aroma.cluster` — iterative clustering of reranked results.
* :mod:`repro.aroma.recommend` — the full recommender plus Laminar 2.0's
  simplified cosine/dot-product variant (§VI-A, default threshold 6.0).
* :mod:`repro.aroma.lsh` — MinHash-LSH acceleration (the paper's stated
  future work, after Senatus).
"""

from repro.aroma.spt import SPTLeaf, SPTNode, python_to_spt
from repro.aroma.features import extract_features
from repro.aroma.vocab import FeatureVocabulary
from repro.aroma.index import AromaIndex
from repro.aroma.recommend import AromaRecommender, LaminarSPTSearch
from repro.aroma.lsh import MinHashLSHIndex

__all__ = [
    "SPTNode",
    "SPTLeaf",
    "python_to_spt",
    "extract_features",
    "FeatureVocabulary",
    "AromaIndex",
    "AromaRecommender",
    "LaminarSPTSearch",
    "MinHashLSHIndex",
]
