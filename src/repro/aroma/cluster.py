"""Iterative clustering of reranked candidates (Aroma §3.5).

Similar candidates are grouped so the final recommendation list shows one
entry per *coding pattern* instead of five near-duplicates.  Clustering is
greedy and iterative: candidates are visited in rank order; each joins the
first existing cluster whose representative it resembles (feature-set
Jaccard above ``tau``), otherwise it founds a new cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Cluster", "cluster_candidates", "jaccard"]


def jaccard(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity of two feature sets (0 when both empty)."""
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


@dataclass
class Cluster:
    """A group of structurally similar candidates.

    The first (highest-ranked) member is the representative; ``common``
    holds the feature intersection of all members — the shared pattern the
    final recommendation is built from.
    """

    representative: Any
    members: list[Any] = field(default_factory=list)
    common: frozenset = frozenset()

    def __len__(self) -> int:
        return len(self.members)


def cluster_candidates(
    candidates: list[Any],
    features_of,
    tau: float = 0.4,
) -> list[Cluster]:
    """Greedy iterative clustering in rank order.

    Parameters
    ----------
    candidates:
        Items in descending rank order.
    features_of:
        Callable mapping a candidate to its ``frozenset`` of features.
    tau:
        Jaccard threshold for joining an existing cluster.
    """
    clusters: list[Cluster] = []
    for cand in candidates:
        fs = frozenset(features_of(cand))
        for cluster in clusters:
            if jaccard(fs, features_of(cluster.representative)) >= tau:
                cluster.members.append(cand)
                cluster.common = cluster.common & fs
                break
        else:
            clusters.append(Cluster(representative=cand, members=[cand], common=fs))
    return clusters
