"""Prune-and-rerank: trim candidate snippets against the query (Aroma §3.4).

After the fast overlap search, each candidate's SPT is *pruned*: subtrees
contributing nothing toward the query are dropped, so the remaining code
is the part that actually resembles the query.  Candidates are then
reranked by the similarity of the **pruned** snippet to the query, which
demotes large snippets that matched only incidentally.

The greedy objective follows the paper: keep a subtree iff its features
gain more intersection with the query than they add unmatched mass,
``gain = |F(sub) ∩ F(q)| − γ·|F(sub) − F(q)|``.
"""

from __future__ import annotations

from collections import Counter

from repro.aroma.features import extract_features
from repro.aroma.spt import SPTLeaf, SPTNode

__all__ = ["prune_spt", "rerank_score"]

#: Placeholder leaf standing in for pruned-away code in rendered output.
_ELLIPSIS = "..."


def _gain(sub_features: Counter, query: Counter, gamma: float) -> float:
    inter = sum(min(c, query[f]) for f, c in sub_features.items() if f in query)
    extra = sum(c for f, c in sub_features.items() if f not in query)
    return inter - gamma * extra


def prune_spt(spt: SPTNode, query_features: Counter, gamma: float = 0.25) -> SPTNode:
    """Return a copy of ``spt`` with unhelpful subtrees pruned.

    Child subtrees whose gain against the query is non-positive are
    replaced by an ``...`` placeholder leaf (keeping the label's child
    slots aligned for rendering).  Kept subtrees are pruned recursively.
    Leaves are never dropped — they are cheap and carry token features.
    """
    new_children: list[SPTNode | SPTLeaf] = []
    for child in spt.children:
        if isinstance(child, SPTLeaf):
            new_children.append(child)
            continue
        child_features = extract_features(child)
        if _gain(child_features, query_features, gamma) > 0:
            new_children.append(prune_spt(child, query_features, gamma))
        else:
            new_children.append(SPTLeaf(_ELLIPSIS))
    return SPTNode(spt.label, new_children)


def rerank_score(pruned: SPTNode, query_features: Counter) -> float:
    """Similarity of the pruned candidate to the query: feature-set F1.

    ``2·|Fp ∩ Fq| / (|Fp| + |Fq|)`` over feature *sets* — 1.0 when the
    pruned snippet matches the query exactly, falling as either side has
    unmatched structure.
    """
    fp = set(extract_features(pruned))
    fp.discard(_ELLIPSIS)
    fq = set(query_features)
    if not fp or not fq:
        return 0.0
    inter = len(fp & fq)
    return 2.0 * inter / (len(fp) + len(fq))
