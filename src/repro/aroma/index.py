"""The searchable Aroma corpus index.

Snippets are featurised once at indexing time; search is a single sparse
matrix–vector product over the whole corpus (``D @ q``), per the paper's
"Feature Extraction and Search" stage.  Three score modes are supported:

* ``overlap`` — ``|F(query) ∩ F(snippet)|``, Aroma's phase-1 score and the
  score Laminar 2.0 thresholds at 6.0 (Fig 9 shows raw scores like 8.0);
* ``cosine`` — normalised count vectors (scale-free variant);
* ``containment`` — overlap divided by query feature count, in [0, 1].
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from scipy import sparse

from repro.aroma.features import extract_features
from repro.aroma.spt import ParseFailure, SPTNode, python_to_spt
from repro.aroma.vocab import FeatureVocabulary

__all__ = ["AromaIndex", "SearchHit", "IndexedSnippet"]

SCORE_MODES = ("overlap", "cosine", "containment")


@dataclass
class IndexedSnippet:
    """One corpus entry with its parsed and featurised forms."""

    snippet_id: Any
    source: str
    spt: SPTNode
    features: Counter
    metadata: dict = field(default_factory=dict)


@dataclass
class SearchHit:
    """One search result."""

    snippet_id: Any
    score: float
    source: str
    metadata: dict
    features: Counter
    spt: SPTNode


class AromaIndex:
    """Index of code snippets searchable by structural similarity.

    Parameters
    ----------
    max_df:
        Optional document-frequency cutoff in (0, 1]: features present in
        more than this fraction of snippets are dropped at build time.
        Registry corpora share heavy boilerplate (class/``_process``
        scaffolding); pruning it stops ubiquitous features from dominating
        overlap scores for short or truncated queries.  ``None`` keeps
        every feature (Aroma's original behaviour).
    """

    def __init__(self, max_df: float | None = None) -> None:
        if max_df is not None and not 0.0 < max_df <= 1.0:
            raise ValueError(f"max_df must be in (0, 1], got {max_df}")
        self.max_df = max_df
        self.vocab = FeatureVocabulary()
        self.snippets: list[IndexedSnippet] = []
        self._matrix: sparse.csr_matrix | None = None
        self._norms: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.snippets)

    def add(
        self, snippet_id: Any, source: str, metadata: dict | None = None
    ) -> IndexedSnippet:
        """Parse, featurise and store one snippet (invalidates the matrix)."""
        spt = python_to_spt(source)
        entry = IndexedSnippet(
            snippet_id=snippet_id,
            source=source,
            spt=spt,
            features=extract_features(spt),
            metadata=dict(metadata or {}),
        )
        self.snippets.append(entry)
        self._matrix = None
        return entry

    def _apply_max_df(self) -> None:
        """Drop features exceeding the document-frequency cutoff in place."""
        if self.max_df is None or not self.snippets:
            return
        df: Counter = Counter()
        for snippet in self.snippets:
            df.update(set(snippet.features))
        cutoff = self.max_df * len(self.snippets)
        too_common = {feature for feature, n in df.items() if n > cutoff}
        if not too_common:
            return
        for snippet in self.snippets:
            for feature in too_common & set(snippet.features):
                del snippet.features[feature]

    def build(self) -> None:
        """Materialise the corpus matrix and freeze the vocabulary."""
        if not self.snippets:
            raise ValueError("cannot build an empty index")
        self._apply_max_df()
        self._matrix = self.vocab.matrix(
            [s.features for s in self.snippets], binary=True
        )
        self.vocab.freeze()
        counts = self.vocab.matrix(
            [s.features for s in self.snippets], binary=False
        )
        self._norms = np.sqrt(counts.multiply(counts).sum(axis=1)).A1
        np.maximum(self._norms, 1e-12, out=self._norms)
        self._count_matrix = counts

    @property
    def built(self) -> bool:
        """True once :meth:`build` has materialised the corpus matrix."""
        return self._matrix is not None

    def scores(self, query_source: str, mode: str = "overlap") -> np.ndarray:
        """Score every snippet against a query; vectorised over the corpus."""
        if mode not in SCORE_MODES:
            raise ValueError(f"unknown score mode {mode!r}; expected {SCORE_MODES}")
        if not self.built:
            self.build()
        try:
            spt = python_to_spt(query_source)
        except ParseFailure:
            return np.zeros(len(self.snippets))
        qf = extract_features(spt)

        if mode == "cosine":
            q = self.vocab.vectorize(qf, binary=False)
            qn = float(np.sqrt(q.multiply(q).sum())) or 1e-12
            raw = self._count_matrix @ q.T
            return raw.toarray().ravel() / (self._norms * qn)

        q = self.vocab.vectorize(qf, binary=True)
        overlap = (self._matrix @ q.T).toarray().ravel()
        if mode == "containment":
            denom = max(float(q.sum()), 1e-12)
            return overlap / denom
        return overlap

    def search(
        self,
        query_source: str,
        top_n: int = 5,
        mode: str = "overlap",
        min_score: float = 0.0,
    ) -> list[SearchHit]:
        """Top-``top_n`` snippets by similarity to ``query_source``."""
        scores = self.scores(query_source, mode=mode)
        if not len(scores):
            return []
        order = np.argsort(-scores, kind="stable")[: max(top_n, 0)]
        hits = []
        for i in order:
            if scores[i] < min_score:
                break
            s = self.snippets[i]
            hits.append(
                SearchHit(
                    snippet_id=s.snippet_id,
                    score=float(scores[i]),
                    source=s.source,
                    metadata=s.metadata,
                    features=s.features,
                    spt=s.spt,
                )
            )
        return hits
