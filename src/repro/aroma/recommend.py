"""End-to-end code recommendation: full Aroma and Laminar's simplified cut.

:class:`AromaRecommender` runs the complete pipeline of the original paper
(search → prune → rerank → cluster → recommend).  :class:`LaminarSPTSearch`
is what Laminar 2.0 actually ships (§VI-A): SPT featurisation plus a plain
similarity ranking — "for efficiency, simplicity, and scalability, without
the need for complex clustering or reranking steps" — returning up to five
results whose score clears a configurable threshold (default 6.0, the
value in the paper's Fig 9).  The ablation bench ``bench_ablate_aroma_
variants`` quantifies what the simplification trades away.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.aroma.cluster import Cluster, cluster_candidates
from repro.aroma.features import extract_features
from repro.aroma.index import AromaIndex, SearchHit
from repro.aroma.prune import prune_spt, rerank_score
from repro.aroma.spt import ParseFailure, python_to_spt

__all__ = ["AromaRecommender", "LaminarSPTSearch", "Recommendation", "spt_embedding"]


def spt_embedding(source: str) -> dict[str, int]:
    """JSON-able SPT feature multiset — the registry's ``sptEmbedding``.

    This is exactly what Laminar stores per PE (paper Fig 6): the feature
    counter serialised as a JSON object, computed once at registration.
    """
    return dict(extract_features(python_to_spt(source)))


def embedding_to_counter(embedding: dict[str, int] | str) -> Counter:
    """Inverse of :func:`spt_embedding`; accepts the JSON string form too."""
    if isinstance(embedding, str):
        embedding = json.loads(embedding)
    return Counter(embedding)


@dataclass
class Recommendation:
    """One recommended coding pattern."""

    snippet_id: Any
    score: float
    source: str
    pruned_code: str
    metadata: dict
    cluster_size: int = 1
    cluster_member_ids: list = field(default_factory=list)


class AromaRecommender:
    """The full Aroma pipeline over an :class:`AromaIndex`.

    Parameters
    ----------
    search_width:
        Candidates taken from the fast overlap search before pruning
        (Aroma retrieves a generous list, then reranks).
    gamma:
        Pruning penalty for unmatched features.
    tau:
        Clustering Jaccard threshold.
    """

    def __init__(
        self,
        search_width: int = 50,
        gamma: float = 0.25,
        tau: float = 0.4,
    ) -> None:
        self.index = AromaIndex()
        self.search_width = search_width
        self.gamma = gamma
        self.tau = tau

    def add(self, snippet_id: Any, source: str, metadata: dict | None = None) -> None:
        """Index one snippet (call :meth:`fit` or build the index after)."""
        self.index.add(snippet_id, source, metadata)

    def fit(self, corpus: list[tuple[Any, str]] | list[tuple[Any, str, dict]]) -> "AromaRecommender":
        """Index a corpus of ``(id, source)`` or ``(id, source, metadata)``."""
        for entry in corpus:
            self.add(*entry)
        self.index.build()
        return self

    def recommend(self, query_source: str, top_n: int = 5) -> list[Recommendation]:
        """Recommend up to ``top_n`` coding patterns for a (partial) query."""
        try:
            query_spt = python_to_spt(query_source)
        except ParseFailure:
            return []
        query_features = extract_features(query_spt)

        # 1. Fast overlap search.
        hits = self.index.search(
            query_source, top_n=self.search_width, mode="overlap", min_score=1.0
        )
        if not hits:
            return []

        # 2–3. Prune each candidate against the query, rerank by the
        # similarity of the pruned snippet.
        pruned_hits: list[tuple[SearchHit, Any, float]] = []
        for hit in hits:
            pruned = prune_spt(hit.spt, query_features, gamma=self.gamma)
            pruned_hits.append((hit, pruned, rerank_score(pruned, query_features)))
        pruned_hits.sort(key=lambda t: -t[2])

        # 4. Iterative clustering of the reranked list.
        clusters: list[Cluster] = cluster_candidates(
            pruned_hits,
            features_of=lambda t: frozenset(t[0].features),
            tau=self.tau,
        )

        # 5. One recommendation per cluster: the representative, rendered
        # after pruning against the query-shared pattern.
        recs = []
        for cluster in clusters[:top_n]:
            hit, pruned, score = cluster.representative
            recs.append(
                Recommendation(
                    snippet_id=hit.snippet_id,
                    score=score,
                    source=hit.source,
                    pruned_code=pruned.render(),
                    metadata=hit.metadata,
                    cluster_size=len(cluster),
                    cluster_member_ids=[m[0].snippet_id for m in cluster.members],
                )
            )
        return recs


class LaminarSPTSearch:
    """Laminar 2.0's simplified structural search (§VI-A).

    Ranks registered snippets by raw SPT-feature overlap with the query
    and returns up to ``top_k`` whose score is at least ``threshold``
    (defaults 5 and 6.0, the paper's values).  No pruning, reranking or
    clustering — one sparse matrix product per query.
    """

    def __init__(self, top_k: int = 5, threshold: float = 6.0) -> None:
        self.index = AromaIndex()
        self.top_k = top_k
        self.threshold = threshold

    def add(self, snippet_id: Any, source: str, metadata: dict | None = None) -> None:
        """Register one snippet in the searchable index."""
        self.index.add(snippet_id, source, metadata)

    def build(self) -> "LaminarSPTSearch":
        """Freeze the index; must be called before :meth:`search`."""
        self.index.build()
        return self

    def search(
        self,
        query_source: str,
        top_k: int | None = None,
        threshold: float | None = None,
    ) -> list[SearchHit]:
        """Structural hits above threshold, best first."""
        return self.index.search(
            query_source,
            top_n=top_k if top_k is not None else self.top_k,
            mode="overlap",
            min_score=threshold if threshold is not None else self.threshold,
        )
