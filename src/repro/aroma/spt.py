"""Simplified parse tree (SPT) generation for Python code.

An SPT is Aroma's code representation: a tree whose internal nodes carry a
*label* made of the node's keyword tokens with ``#`` marking non-keyword
child slots (e.g. ``if#:#else#``), and whose leaves are the non-keyword
tokens themselves.  Variable leaves are flagged so featurisation can
abstract their names.

The paper generates SPTs with ANTLR; here they are derived from the stdlib
``ast``.  Each supported AST node has a label schema; unsupported nodes
fall back to a generic label from the node class name, so *every* valid
Python program produces an SPT.

Partial snippets — the whole point of structural search — often do not
parse.  :func:`python_to_spt` therefore runs a repair loop: dedent, strip
trailing incomplete lines, and close dangling blocks with ``pass`` until
the fragment parses (paper §VI: "even from incomplete code").
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = ["SPTLeaf", "SPTNode", "python_to_spt", "ParseFailure"]


class ParseFailure(ValueError):
    """Raised when a snippet cannot be parsed even after repair attempts."""


@dataclass
class SPTLeaf:
    """A non-keyword token: identifier, literal marker or operator."""

    token: str
    is_variable: bool = False

    def render(self) -> str:
        """A leaf renders as its own token."""
        return self.token


@dataclass
class SPTNode:
    """An internal SPT node: keyword-token label plus ordered children."""

    label: str
    children: list[Union["SPTNode", SPTLeaf]] = field(default_factory=list)

    def leaves(self) -> Iterator[SPTLeaf]:
        """Yield every leaf of the subtree in DFS order."""
        for child in self.children:
            if isinstance(child, SPTLeaf):
                yield child
            else:
                yield from child.leaves()

    def size(self) -> int:
        """Total number of nodes and leaves in the subtree."""
        return 1 + sum(
            1 if isinstance(c, SPTLeaf) else c.size() for c in self.children
        )

    def render(self) -> str:
        """A compact, lossy linearisation (for debugging and pruned output)."""
        parts: list[str] = []
        slot = iter(c for c in self.children)
        for piece in self.label.split("#"):
            if piece:
                parts.append(piece)
            try:
                child = next(slot)
            except StopIteration:
                continue
            parts.append(child.render())
        # Any children beyond the label's slots.
        for child in slot:
            parts.append(child.render())
        return " ".join(p for p in parts if p)


_OP_TOKENS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**", ast.LShift: "<<",
    ast.RShift: ">>", ast.BitOr: "|", ast.BitXor: "^", ast.BitAnd: "&",
    ast.MatMult: "@", ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<",
    ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=", ast.Is: "is",
    ast.IsNot: "is not", ast.In: "in", ast.NotIn: "not in",
    ast.And: "and", ast.Or: "or", ast.Not: "not", ast.USub: "-",
    ast.UAdd: "+", ast.Invert: "~",
}


class _VariableScan(ast.NodeVisitor):
    """Collect names bound in the snippet: parameters, assignments, loops.

    These are the names featurisation abstracts to ``#VAR``; unbound names
    (builtins, imported helpers like ``len`` or ``randint``) stay concrete
    because they carry structural meaning across codebases.
    """

    def __init__(self) -> None:
        self.bound: set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.bound.add(node.id)

    def visit_arg(self, node: ast.arg) -> None:
        self.bound.add(node.arg)

    def _visit_func(self, node) -> None:
        for a in list(node.args.args) + list(node.args.kwonlyargs) + list(
            node.args.posonlyargs
        ):
            self.bound.add(a.arg)
        if node.args.vararg:
            self.bound.add(node.args.vararg.arg)
        if node.args.kwarg:
            self.bound.add(node.args.kwarg.arg)
        self.generic_visit(node)

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func


class _SPTBuilder:
    def __init__(self, variables: set[str]) -> None:
        self.variables = variables

    # -- helpers -----------------------------------------------------------

    def _leaf(self, token: str, variable: bool = False) -> SPTLeaf:
        return SPTLeaf(token, is_variable=variable)

    def build(self, node: ast.AST) -> SPTNode | SPTLeaf:
        """Dispatch one AST node to its label schema (generic fallback)."""
        method = getattr(self, f"_build_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self._generic(node)

    def _body(self, stmts: list[ast.stmt]) -> list[SPTNode | SPTLeaf]:
        return [self.build(s) for s in stmts]

    def _generic(self, node: ast.AST) -> SPTNode | SPTLeaf:
        label = type(node).__name__.lower()
        children: list[SPTNode | SPTLeaf] = []
        for _name, value in ast.iter_fields(node):
            if isinstance(value, ast.AST):
                children.append(self.build(value))
            elif isinstance(value, list):
                children.extend(
                    self.build(v) for v in value if isinstance(v, ast.AST)
                )
        return SPTNode(label + "#" * len(children), children)

    # -- modules / definitions ------------------------------------------------

    def _build_Module(self, node: ast.Module) -> SPTNode:
        return SPTNode("#" * len(node.body), self._body(node.body))

    def _build_FunctionDef(self, node) -> SPTNode:
        params: list[SPTNode | SPTLeaf] = []
        for a in list(node.args.posonlyargs) + list(node.args.args):
            params.append(self._leaf(a.arg, variable=True))
        body = self._body(node.body)
        children = [self._leaf(node.name)] + params + body
        return SPTNode(
            "def#(" + "#" * len(params) + "):" + "#" * len(body), children
        )

    _build_AsyncFunctionDef = _build_FunctionDef

    def _build_ClassDef(self, node: ast.ClassDef) -> SPTNode:
        bases = [self.build(b) for b in node.bases]
        body = self._body(node.body)
        children = [self._leaf(node.name)] + bases + body
        return SPTNode(
            "class#(" + "#" * len(bases) + "):" + "#" * len(body), children
        )

    def _build_Lambda(self, node: ast.Lambda) -> SPTNode:
        params = [
            self._leaf(a.arg, variable=True)
            for a in list(node.args.posonlyargs) + list(node.args.args)
        ]
        children = params + [self.build(node.body)]
        return SPTNode("lambda" + "#" * len(params) + ":#", children)

    # -- statements ---------------------------------------------------------------

    def _build_If(self, node: ast.If) -> SPTNode:
        children = [self.build(node.test)] + self._body(node.body)
        label = "if#:" + "#" * len(node.body)
        if node.orelse:
            label += "else:" + "#" * len(node.orelse)
            children += self._body(node.orelse)
        return SPTNode(label, children)

    def _build_For(self, node: ast.For) -> SPTNode:
        children = [self.build(node.target), self.build(node.iter)]
        children += self._body(node.body)
        label = "for#in#:" + "#" * len(node.body)
        if node.orelse:
            label += "else:" + "#" * len(node.orelse)
            children += self._body(node.orelse)
        return SPTNode(label, children)

    def _build_While(self, node: ast.While) -> SPTNode:
        children = [self.build(node.test)] + self._body(node.body)
        return SPTNode("while#:" + "#" * len(node.body), children)

    def _build_Return(self, node: ast.Return) -> SPTNode:
        if node.value is None:
            return SPTNode("return", [])
        return SPTNode("return#", [self.build(node.value)])

    def _build_Assign(self, node: ast.Assign) -> SPTNode:
        children = [self.build(t) for t in node.targets] + [self.build(node.value)]
        return SPTNode("#" * len(node.targets) + "=#", children)

    def _build_AugAssign(self, node: ast.AugAssign) -> SPTNode:
        op = _OP_TOKENS.get(type(node.op), "?")
        return SPTNode(
            f"#{op}=#", [self.build(node.target), self.build(node.value)]
        )

    def _build_Expr(self, node: ast.Expr) -> SPTNode | SPTLeaf:
        return self.build(node.value)

    def _build_Try(self, node: ast.Try) -> SPTNode:
        body = self._body(node.body)
        label = "try:" + "#" * len(body)
        children = list(body)
        for handler in node.handlers:
            hbody = self._body(handler.body)
            label += "except:" + "#" * (len(hbody) + (1 if handler.type else 0))
            if handler.type:
                children.append(self.build(handler.type))
            children += hbody
        if node.finalbody:
            fin = self._body(node.finalbody)
            label += "finally:" + "#" * len(fin)
            children += fin
        return SPTNode(label, children)

    def _build_With(self, node: ast.With) -> SPTNode:
        items: list[SPTNode | SPTLeaf] = []
        for item in node.items:
            items.append(self.build(item.context_expr))
            if item.optional_vars is not None:
                items.append(self.build(item.optional_vars))
        body = self._body(node.body)
        return SPTNode(
            "with" + "#" * len(items) + ":" + "#" * len(body), items + body
        )

    def _build_Raise(self, node: ast.Raise) -> SPTNode:
        children = [self.build(node.exc)] if node.exc else []
        return SPTNode("raise" + "#" * len(children), children)

    def _build_Import(self, node: ast.Import) -> SPTNode:
        names = [self._leaf(a.name) for a in node.names]
        return SPTNode("import" + "#" * len(names), names)

    def _build_ImportFrom(self, node: ast.ImportFrom) -> SPTNode:
        names = [self._leaf(a.name) for a in node.names]
        children = [self._leaf(node.module or ".")] + names
        return SPTNode("from#import" + "#" * len(names), children)

    def _build_Pass(self, node: ast.Pass) -> SPTNode:
        return SPTNode("pass", [])

    def _build_Break(self, node: ast.Break) -> SPTNode:
        return SPTNode("break", [])

    def _build_Continue(self, node: ast.Continue) -> SPTNode:
        return SPTNode("continue", [])

    # -- expressions -----------------------------------------------------------------

    def _build_Name(self, node: ast.Name) -> SPTLeaf:
        return self._leaf(node.id, variable=node.id in self.variables)

    def _build_Attribute(self, node: ast.Attribute) -> SPTNode:
        return SPTNode("#.#", [self.build(node.value), self._leaf(node.attr)])

    def _build_Call(self, node: ast.Call) -> SPTNode:
        args = [self.build(a) for a in node.args]
        args += [self.build(kw.value) for kw in node.keywords]
        return SPTNode(
            "#(" + "#" * len(args) + ")", [self.build(node.func)] + args
        )

    def _build_BinOp(self, node: ast.BinOp) -> SPTNode:
        op = _OP_TOKENS.get(type(node.op), "?")
        return SPTNode(f"#{op}#", [self.build(node.left), self.build(node.right)])

    def _build_UnaryOp(self, node: ast.UnaryOp) -> SPTNode:
        op = _OP_TOKENS.get(type(node.op), "?")
        return SPTNode(f"{op}#", [self.build(node.operand)])

    def _build_BoolOp(self, node: ast.BoolOp) -> SPTNode:
        op = _OP_TOKENS.get(type(node.op), "?")
        label = ("#" + op) * (len(node.values) - 1) + "#"
        return SPTNode(label, [self.build(v) for v in node.values])

    def _build_Compare(self, node: ast.Compare) -> SPTNode:
        label = "#"
        children = [self.build(node.left)]
        for op, comp in zip(node.ops, node.comparators):
            label += _OP_TOKENS.get(type(op), "?") + "#"
            children.append(self.build(comp))
        return SPTNode(label, children)

    def _build_Subscript(self, node: ast.Subscript) -> SPTNode:
        return SPTNode("#[#]", [self.build(node.value), self.build(node.slice)])

    def _build_Slice(self, node: ast.Slice) -> SPTNode:
        children = [
            self.build(part)
            for part in (node.lower, node.upper, node.step)
            if part is not None
        ]
        return SPTNode(":" + "#" * len(children), children)

    def _build_Constant(self, node: ast.Constant) -> SPTLeaf:
        value = node.value
        if isinstance(value, str):
            return self._leaf("<str>")
        if isinstance(value, bool):
            return self._leaf(str(value))
        if isinstance(value, (int, float, complex)):
            return self._leaf("<num>")
        return self._leaf(repr(value))

    def _build_List(self, node: ast.List) -> SPTNode:
        return SPTNode(
            "[" + "#" * len(node.elts) + "]", [self.build(e) for e in node.elts]
        )

    def _build_Tuple(self, node: ast.Tuple) -> SPTNode:
        return SPTNode(
            "(" + "#" * len(node.elts) + ")", [self.build(e) for e in node.elts]
        )

    def _build_Set(self, node: ast.Set) -> SPTNode:
        return SPTNode(
            "{" + "#" * len(node.elts) + "}", [self.build(e) for e in node.elts]
        )

    def _build_Dict(self, node: ast.Dict) -> SPTNode:
        children: list[SPTNode | SPTLeaf] = []
        for k, v in zip(node.keys, node.values):
            if k is not None:
                children.append(self.build(k))
            children.append(self.build(v))
        return SPTNode("{" + "#:#" * len(node.values) + "}", children)

    def _comprehension(self, node, kind: str) -> SPTNode:
        children = [self.build(node.elt if hasattr(node, "elt") else node.key)]
        if isinstance(node, ast.DictComp):
            children.append(self.build(node.value))
        label = kind + "#"
        for gen in node.generators:
            label += "for#in#"
            children.append(self.build(gen.target))
            children.append(self.build(gen.iter))
            for cond in gen.ifs:
                label += "if#"
                children.append(self.build(cond))
        closer = {"[": "]", "(": ")", "{": "}"}.get(kind, "")
        return SPTNode(label + closer, children)

    def _build_ListComp(self, node: ast.ListComp) -> SPTNode:
        return self._comprehension(node, "[")

    def _build_SetComp(self, node: ast.SetComp) -> SPTNode:
        return self._comprehension(node, "{")

    def _build_GeneratorExp(self, node: ast.GeneratorExp) -> SPTNode:
        return self._comprehension(node, "(")

    def _build_DictComp(self, node: ast.DictComp) -> SPTNode:
        return self._comprehension(node, "{")

    def _build_IfExp(self, node: ast.IfExp) -> SPTNode:
        return SPTNode(
            "#if#else#",
            [self.build(node.body), self.build(node.test), self.build(node.orelse)],
        )

    def _build_JoinedStr(self, node: ast.JoinedStr) -> SPTLeaf:
        return self._leaf("<fstr>")

    def _build_Starred(self, node: ast.Starred) -> SPTNode:
        return SPTNode("*#", [self.build(node.value)])

    def _build_Yield(self, node: ast.Yield) -> SPTNode:
        children = [self.build(node.value)] if node.value else []
        return SPTNode("yield" + "#" * len(children), children)

    def _build_Await(self, node: ast.Await) -> SPTNode:
        return SPTNode("await#", [self.build(node.value)])


def _repair_candidates(source: str) -> Iterator[str]:
    """Yield progressively more aggressive repairs of a partial snippet."""
    yield source
    dedented = textwrap.dedent(source)
    if dedented != source:
        yield dedented
    # Close dangling blocks: a snippet ending in ':' or mid-expression.
    for base in (source, dedented):
        lines = base.rstrip().splitlines()
        while lines:
            candidate = "\n".join(lines)
            yield candidate + "\n    pass"
            yield textwrap.dedent(candidate)
            lines = lines[:-1]


def python_to_spt(source: str) -> SPTNode:
    """Parse Python ``source`` into an SPT, repairing partial snippets.

    Raises :class:`ParseFailure` only when no repair produces parseable
    code (e.g. binary garbage).
    """
    from repro import pyast

    last_error: SyntaxError | None = None
    for candidate in _repair_candidates(source):
        try:
            tree = pyast.parse(candidate)
        except (SyntaxError, ValueError) as exc:
            last_error = exc if isinstance(exc, SyntaxError) else last_error
            continue
        scan = _VariableScan()
        scan.visit(tree)
        built = _SPTBuilder(scan.bound).build(tree)
        if isinstance(built, SPTLeaf):  # single-token snippet
            return SPTNode("#", [built])
        return built
    raise ParseFailure(f"could not parse snippet: {last_error}")
