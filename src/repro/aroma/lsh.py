"""MinHash-LSH acceleration for structural search (paper §IX future work).

The paper's conclusion names locality-sensitive hashing (after Senatus,
Silavong et al. 2021) as the planned scaling path for structural code
search.  This module implements it: each snippet's SPT feature *set* is
summarised by a MinHash signature; signatures are cut into bands and
hashed into buckets, so querying touches only snippets sharing at least
one band with the query instead of the whole corpus.

MinHash signatures estimate Jaccard similarity; band/row parameters trade
recall against candidate-set size in the standard way (probability of a
pair colliding is ``1 − (1 − s^rows)^bands`` at Jaccard ``s``).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Any, Iterable

import numpy as np

__all__ = ["MinHashLSHIndex", "minhash_signature"]

_PRIME = (1 << 61) - 1  # Mersenne prime for universal hashing


def _feature_hash(feature: str) -> int:
    digest = hashlib.md5(feature.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def minhash_signature(
    features: Iterable[str], coeffs: np.ndarray
) -> np.ndarray:
    """MinHash signature of a feature set under ``coeffs`` ((k, 2) array).

    Each of the k rows ``(a, b)`` defines the universal hash
    ``h(x) = (a·x + b) mod PRIME``; the signature entry is the minimum
    over the set.  An empty set yields an all-PRIME signature that never
    collides with real sets by chance.
    """
    hashes = np.fromiter(
        (_feature_hash(f) for f in features), dtype=np.uint64
    )
    k = coeffs.shape[0]
    if hashes.size == 0:
        return np.full(k, _PRIME, dtype=np.uint64)
    # (k, n) = (a ⊗ hashes + b) mod PRIME — vectorised over both axes.
    a = coeffs[:, 0][:, None].astype(np.object_)
    b = coeffs[:, 1][:, None].astype(np.object_)
    grid = (a * hashes[None, :].astype(np.object_) + b) % _PRIME
    return np.array(grid.min(axis=1).tolist(), dtype=np.uint64)


class MinHashLSHIndex:
    """Banded MinHash index over feature sets.

    Parameters
    ----------
    num_perm:
        Signature length (``bands * rows`` must equal it).
    bands, rows:
        LSH banding; defaults (16 bands × 4 rows) target ~0.5 Jaccard.
    seed:
        Seed for the universal hash coefficients.
    """

    def __init__(
        self, num_perm: int = 64, bands: int = 16, rows: int = 4, seed: int = 7
    ) -> None:
        if bands * rows != num_perm:
            raise ValueError(
                f"bands*rows must equal num_perm ({bands}*{rows} != {num_perm})"
            )
        self.num_perm = num_perm
        self.bands = bands
        self.rows = rows
        rng = np.random.default_rng(seed)
        self._coeffs = np.stack(
            [
                rng.integers(1, _PRIME, size=num_perm, dtype=np.int64),
                rng.integers(0, _PRIME, size=num_perm, dtype=np.int64),
            ],
            axis=1,
        )
        self._buckets: list[dict[bytes, list[Any]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._signatures: dict[Any, np.ndarray] = {}
        self._features: dict[Any, frozenset] = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def add(self, item_id: Any, features: Iterable[str]) -> None:
        """Index (or re-index) one item by its feature set.

        Re-adding an already-indexed id first removes its old band
        entries, so changed features never leave stale buckets behind
        and buckets never hold duplicate ids.
        """
        if item_id in self._signatures:
            self.remove(item_id)
        fs = frozenset(features)
        sig = minhash_signature(fs, self._coeffs)
        self._signatures[item_id] = sig
        self._features[item_id] = fs
        for band in range(self.bands):
            key = sig[band * self.rows : (band + 1) * self.rows].tobytes()
            self._buckets[band][key].append(item_id)

    def remove(self, item_id: Any) -> bool:
        """Drop one item from every band bucket; False when absent."""
        sig = self._signatures.pop(item_id, None)
        if sig is None:
            return False
        del self._features[item_id]
        for band in range(self.bands):
            key = sig[band * self.rows : (band + 1) * self.rows].tobytes()
            bucket = self._buckets[band].get(key)
            if bucket is not None:
                bucket.remove(item_id)
                if not bucket:
                    del self._buckets[band][key]
        return True

    def candidates(self, features: Iterable[str]) -> set[Any]:
        """Items sharing at least one LSH band with the query."""
        sig = minhash_signature(frozenset(features), self._coeffs)
        found: set[Any] = set()
        for band in range(self.bands):
            key = sig[band * self.rows : (band + 1) * self.rows].tobytes()
            found.update(self._buckets[band].get(key, ()))
        return found

    def query(
        self, features: Iterable[str], top_n: int = 5
    ) -> list[tuple[Any, float]]:
        """Top candidates with *exact* Jaccard computed only on collisions."""
        fs = frozenset(features)
        scored = []
        for item_id in self.candidates(fs):
            other = self._features[item_id]
            union = len(fs | other)
            score = len(fs & other) / union if union else 0.0
            scored.append((item_id, score))
        scored.sort(key=lambda t: -t[1])
        return scored[:top_n]

    def estimated_jaccard(self, a: Any, b: Any) -> float:
        """Signature-based Jaccard estimate between two indexed items."""
        sa, sb = self._signatures[a], self._signatures[b]
        return float(np.mean(sa == sb))
