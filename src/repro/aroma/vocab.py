"""Feature vocabulary and sparse vectorisation for Aroma search.

Aroma scores candidates by the size of the overlap between feature sets,
computed for the whole corpus at once as a sparse matrix–vector product —
the "matrix multiplication for quick snippet identification" of the
paper's §II-E.  :class:`FeatureVocabulary` maps feature strings to column
indices and builds ``scipy.sparse`` CSR matrices.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np
from scipy import sparse

__all__ = ["FeatureVocabulary"]


class FeatureVocabulary:
    """Bidirectional mapping between feature strings and column indices."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._frozen = False

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, feature: str) -> bool:
        return feature in self._index

    def freeze(self) -> None:
        """Stop admitting new features (queries must not grow the vocab)."""
        self._frozen = True

    def index_of(self, feature: str) -> int | None:
        """Column of a feature; grows the vocabulary unless frozen."""
        idx = self._index.get(feature)
        if idx is None and not self._frozen:
            idx = len(self._index)
            self._index[feature] = idx
        return idx

    def vectorize(
        self, features: Counter | Iterable[str], binary: bool = True
    ) -> sparse.csr_matrix:
        """One sparse row over the current vocabulary.

        Out-of-vocabulary features are dropped when frozen (a query can
        only match what the corpus contains).  With ``binary`` each known
        feature contributes 1 regardless of multiplicity — Aroma's overlap
        score ``|F(q) ∩ F(m)|``; otherwise counts are kept.
        """
        if not isinstance(features, Counter):
            features = Counter(features)
        cols, vals = [], []
        for feature, count in features.items():
            idx = self.index_of(feature)
            if idx is None:
                continue
            cols.append(idx)
            vals.append(1.0 if binary else float(count))
        n_cols = max(len(self._index), 1)
        return sparse.csr_matrix(
            (vals, (np.zeros(len(cols), dtype=np.int32), cols)),
            shape=(1, n_cols),
        )

    def matrix(
        self, feature_counters: list[Counter], binary: bool = True
    ) -> sparse.csr_matrix:
        """Stack rows for a corpus, growing the vocabulary as needed.

        Build the matrix *before* freezing, then freeze and vectorise
        queries against it.
        """
        rows: list[tuple[list[int], list[float]]] = []
        for counter in feature_counters:
            cols, vals = [], []
            for feature, count in counter.items():
                idx = self.index_of(feature)
                if idx is None:
                    continue
                cols.append(idx)
                vals.append(1.0 if binary else float(count))
            rows.append((cols, vals))

        n_cols = max(len(self._index), 1)
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for cols, vals in rows:
            indices.extend(cols)
            data.extend(vals)
            indptr.append(len(indices))
        return sparse.csr_matrix(
            (data, indices, indptr), shape=(len(rows), n_cols)
        )
