"""Evaluation machinery for the paper's figures (E1–E4 in DESIGN.md).

* :mod:`repro.eval.metrics` — precision/recall/F1, averaged PR curves,
  and the token-overlap F1 used for description quality.
* :mod:`repro.eval.dropper` — progressive code truncation ("X% dropped"
  in Figs 12/13).
* :mod:`repro.eval.harness` — end-to-end experiment drivers that build a
  corpus, run a search model over every query, and return PR curves in
  the exact shape the paper plots.
"""

from repro.eval.dropper import drop_suffix
from repro.eval.metrics import (
    PRCurve,
    best_f1,
    f1_score,
    precision_recall_at_k,
    token_f1,
)
from repro.eval.harness import (
    CodeSearchResult,
    TextToCodeResult,
    run_code_to_code_eval,
    run_description_eval,
    run_text_to_code_eval,
)

__all__ = [
    "PRCurve",
    "best_f1",
    "f1_score",
    "precision_recall_at_k",
    "token_f1",
    "drop_suffix",
    "CodeSearchResult",
    "TextToCodeResult",
    "run_code_to_code_eval",
    "run_description_eval",
    "run_text_to_code_eval",
]
