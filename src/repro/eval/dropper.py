"""Progressive code truncation for the partial-snippet experiments.

Figs 12/13 evaluate code-to-code search with "0%, 50%, 75% and 90% of the
code dropped" to simulate a developer who has only written the beginning
of a PE.  :func:`drop_suffix` keeps the leading fraction of source lines,
which is exactly the in-progress-code scenario (the top of a class exists,
the body trails off).
"""

from __future__ import annotations

import math

__all__ = ["drop_suffix", "DROP_LEVELS"]

#: The drop fractions evaluated in the paper's Figs 12 and 13.
DROP_LEVELS = (0.0, 0.5, 0.75, 0.9)


def drop_suffix(source: str, fraction: float) -> str:
    """Drop the trailing ``fraction`` of non-empty source lines.

    Always keeps at least one line.  ``fraction`` of 0 returns the source
    unchanged; values outside [0, 1) raise ``ValueError``.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    if fraction == 0.0:
        return source
    lines = [line for line in source.splitlines() if line.strip()]
    keep = max(1, math.ceil(len(lines) * (1.0 - fraction)))
    return "\n".join(lines[:keep])
