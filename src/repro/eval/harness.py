"""End-to-end experiment drivers for the paper's evaluation section.

Each driver builds the synthetic CodeSearchNet-PE corpus, runs one search
model over every query, and returns the averaged PR curve(s) — the same
series the paper plots:

* :func:`run_text_to_code_eval` — Fig 11 (CodeT5 descriptions +
  UniXcoder embeddings + cosine ranking; best F1 ≈ 0.61 in the paper).
* :func:`run_code_to_code_eval` — Figs 12/13 (Aroma vs ReACC at 0/50/75/
  90 % of the query code dropped; paper: Aroma max F1 ≈ 0.63 vs ReACC
  ≈ 0.24).
* :func:`run_description_eval` — Fig 10 (full-class vs ``_process``-only
  description contexts, scored by token F1 against references).

Ranking follows the paper's protocol: the query item itself is excluded
from the candidate ranking (retrieving yourself is not a recommendation),
and the relevant set is the query's semantic family.  Code-to-code
queries are the PE's *inner function logic* (what a developer has typed
while authoring a new PE), truncated to the requested drop level; the
candidates are full registered PE classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aroma.index import AromaIndex
from repro.datasets.codesearchnet import CorpusItem, generate_corpus
from repro.eval.dropper import DROP_LEVELS, drop_suffix
from repro.eval.metrics import PRCurve, average_pr_curve, token_f1
from repro.models.describer import CodeT5Describer, DescriptionContext
from repro.models.embedder import UniXcoderEmbedder
from repro.models.reacc import ReACCRetriever

__all__ = [
    "TextToCodeResult",
    "CodeSearchResult",
    "run_text_to_code_eval",
    "run_code_to_code_eval",
    "run_description_eval",
]


@dataclass
class TextToCodeResult:
    """Fig 11 output: one PR curve plus its best F1."""

    curve: PRCurve
    best_f1: float
    n_queries: int
    n_corpus: int


@dataclass
class CodeSearchResult:
    """Figs 12/13 output: one PR curve per drop level."""

    model: str
    curves: dict[float, PRCurve] = field(default_factory=dict)

    def best_f1(self) -> float:
        """Maximum F1 over every drop level (the paper's headline)."""
        return max((c.best_f1() for c in self.curves.values()), default=0.0)


def _relevant_sets(corpus: list[CorpusItem]) -> dict[str, set[str]]:
    by_family: dict[str, set[str]] = {}
    for item in corpus:
        by_family.setdefault(item.family, set()).add(item.uid)
    return by_family


def run_text_to_code_eval(
    corpus_size: int = 160,
    max_k: int = 20,
    corpus: list[CorpusItem] | None = None,
    context: DescriptionContext = DescriptionContext.FULL_CLASS,
) -> TextToCodeResult:
    """Reproduce Fig 11: text-to-code search over generated descriptions.

    For every PE the describer generates a description under ``context``
    (full-class by default — the Laminar 2.0 improvement; pass
    ``PROCESS_ONLY`` for the 1.0 behaviour, which the A8 ablation uses to
    show description quality propagating into search accuracy);
    descriptions are embedded with the UniXcoder substitute.  Each
    family's natural-language query is run once; relevant = that family's
    members.
    """
    corpus = corpus if corpus is not None else generate_corpus(corpus_size)
    describer = CodeT5Describer()
    descriptions = [describer.describe(item.pe_source, context) for item in corpus]
    embedder = UniXcoderEmbedder().fit(descriptions)
    doc_vectors = embedder.encode(descriptions)
    uids = [item.uid for item in corpus]
    relevant = _relevant_sets(corpus)

    queries = sorted({(item.query, item.family) for item in corpus})

    def rankings():
        for query, family in queries:
            sims = (embedder.encode(query) @ doc_vectors.T)[0]
            order = np.argsort(-sims, kind="stable")
            yield [uids[i] for i in order], relevant[family]

    curve = average_pr_curve(rankings(), max_k=max_k)
    return TextToCodeResult(
        curve=curve,
        best_f1=curve.best_f1(),
        n_queries=len(queries),
        n_corpus=len(corpus),
    )


def _aroma_rankings(
    corpus: list[CorpusItem], drop: float, max_k: int, max_queries: int | None = None
):
    index = AromaIndex()
    for item in corpus:
        index.add(item.uid, item.pe_source)
    index.build()
    relevant = _relevant_sets(corpus)
    for item in corpus[: max_queries or len(corpus)]:
        query = drop_suffix(item.function_source, drop)
        scores = index.scores(query, mode="overlap")
        order = np.argsort(-scores, kind="stable")
        ranked = [corpus[i].uid for i in order if corpus[i].uid != item.uid]
        yield ranked, relevant[item.family] - {item.uid}


def _reacc_rankings(
    corpus: list[CorpusItem], drop: float, max_k: int, max_queries: int | None = None
):
    retriever = ReACCRetriever()
    doc_vectors = retriever.encode([item.pe_source for item in corpus])
    relevant = _relevant_sets(corpus)
    for item in corpus[: max_queries or len(corpus)]:
        query = drop_suffix(item.function_source, drop)
        sims = (retriever.encode(query) @ doc_vectors.T)[0]
        order = np.argsort(-sims, kind="stable")
        ranked = [corpus[i].uid for i in order if corpus[i].uid != item.uid]
        yield ranked, relevant[item.family] - {item.uid}


def run_code_to_code_eval(
    model: str = "aroma",
    corpus_size: int = 720,
    drops: tuple[float, ...] = DROP_LEVELS,
    max_k: int = 20,
    corpus: list[CorpusItem] | None = None,
    max_queries: int | None = 160,
) -> CodeSearchResult:
    """Reproduce Fig 12 (``model='aroma'``) or Fig 13 (``model='reacc'``).

    PEs serve as queries at each drop level (capped at ``max_queries``
    for tractable runtimes; the corpus ordering interleaves families so
    any prefix is a stratified sample).  The query item is excluded from
    its own candidate ranking.
    """
    if model not in ("aroma", "reacc"):
        raise ValueError(f"unknown model {model!r}; expected 'aroma' or 'reacc'")
    corpus = corpus if corpus is not None else generate_corpus(corpus_size)
    ranking_fn = _aroma_rankings if model == "aroma" else _reacc_rankings

    result = CodeSearchResult(model=model)
    for drop in drops:
        result.curves[drop] = average_pr_curve(
            ranking_fn(corpus, drop, max_k, max_queries), max_k=max_k
        )
    return result


def run_description_eval(
    corpus_size: int = 120,
    corpus: list[CorpusItem] | None = None,
) -> dict[str, float]:
    """Reproduce Fig 10: description quality by generation context.

    Returns the mean token-F1 of generated descriptions against the
    reference descriptions, for both contexts.  The paper's claim is the
    *ordering*: full-class > ``_process``-only.
    """
    corpus = corpus if corpus is not None else generate_corpus(corpus_size)
    describer = CodeT5Describer()
    scores = {"full_class": [], "process_only": []}
    for item in corpus:
        for key, context in (
            ("full_class", DescriptionContext.FULL_CLASS),
            ("process_only", DescriptionContext.PROCESS_ONLY),
        ):
            generated = describer.describe(item.pe_source, context)
            scores[key].append(token_f1(generated, item.description))
    return {key: float(np.mean(vals)) for key, vals in scores.items()}
