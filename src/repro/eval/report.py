"""Programmatic experiment report: regenerate the paper's numbers as text.

``python -m repro.eval.report`` runs the four evaluation experiments
(Figs 10–13) at a configurable scale and renders a markdown report with
the paper's reference values alongside — the machine-written counterpart
of EXPERIMENTS.md.  Useful for checking that code changes keep the
reproduced shapes intact:

    python -m repro.eval.report --corpus 240 --queries 80 --out report.md
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets import generate_corpus
from repro.eval.dropper import DROP_LEVELS
from repro.eval.harness import (
    run_code_to_code_eval,
    run_description_eval,
    run_text_to_code_eval,
)

__all__ = ["build_report", "main"]

#: The paper's headline values for side-by-side display.
PAPER = {
    "fig11_best_f1": 0.61,
    "fig12_best_f1": 0.63,
    "fig13_best_f1": 0.24,
}


def build_report(corpus_size: int = 240, max_queries: int = 80) -> str:
    """Run Figs 10–13 and render a markdown report."""
    corpus = generate_corpus(corpus_size)
    lines: list[str] = [
        "# Laminar 2.0 reproduction — experiment report",
        "",
        f"corpus: {len(corpus)} synthetic CodeSearchNet PEs, "
        f"{len({c.family for c in corpus})} semantic families; "
        f"{max_queries} code-search queries per condition",
        "",
    ]

    t2c = run_text_to_code_eval(corpus=corpus)
    lines += [
        "## Fig 11 — text-to-code search",
        "",
        f"best F1 **{t2c.best_f1:.3f}** at k={t2c.curve.best_k()} "
        f"(paper ≈ {PAPER['fig11_best_f1']})",
        "",
        "| k | precision | recall | F1 |",
        "|---|---|---|---|",
    ]
    for k, p, r, f1 in t2c.curve.rows():
        if k in (1, 3, 5, 10, 20):
            lines.append(f"| {k} | {p:.3f} | {r:.3f} | {f1:.3f} |")
    lines.append("")

    results = {}
    for model, paper_key in (("aroma", "fig12_best_f1"), ("reacc", "fig13_best_f1")):
        res = run_code_to_code_eval(model, corpus=corpus, max_queries=max_queries)
        results[model] = res
        fig = "Fig 12" if model == "aroma" else "Fig 13"
        lines += [
            f"## {fig} — {model} code-to-code search",
            "",
            f"max F1 **{res.best_f1():.3f}** (paper ≈ {PAPER[paper_key]})",
            "",
            "| % dropped | best F1 | best k |",
            "|---|---|---|",
        ]
        for drop in DROP_LEVELS:
            curve = res.curves[drop]
            lines.append(
                f"| {int(drop * 100)} | {curve.best_f1():.3f} | {curve.best_k()} |"
            )
        lines.append("")

    aroma, reacc = results["aroma"], results["reacc"]
    ordering_ok = all(
        aroma.curves[d].best_f1() > reacc.curves[d].best_f1() for d in DROP_LEVELS
    )
    lines += [
        "## Cross-model claims",
        "",
        f"- Aroma > ReACC at every drop level: "
        f"{'**holds**' if ordering_ok else '**VIOLATED**'}",
        f"- overall: {aroma.best_f1():.3f} vs {reacc.best_f1():.3f} "
        f"(paper: 0.63 vs 0.24)",
        "",
    ]

    desc = run_description_eval(corpus=corpus[: min(120, corpus_size)])
    better = desc["full_class"] > desc["process_only"]
    lines += [
        "## Fig 10 — description generation context",
        "",
        f"- `_process`-only (Laminar 1.0): token-F1 {desc['process_only']:.3f}",
        f"- full class (Laminar 2.0): token-F1 {desc['full_class']:.3f}",
        f"- full-class context wins: {'**holds**' if better else '**VIOLATED**'}",
        "",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: build the report and write it out."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--corpus", type=int, default=240, help="corpus size")
    parser.add_argument("--queries", type=int, default=80, help="queries per condition")
    parser.add_argument("--out", default="-", help="output path ('-' = stdout)")
    ns = parser.parse_args(argv)
    report = build_report(corpus_size=ns.corpus, max_queries=ns.queries)
    if ns.out == "-":
        sys.stdout.write(report)
    else:
        with open(ns.out, "w") as fh:
            fh.write(report)
        print(f"wrote {ns.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
