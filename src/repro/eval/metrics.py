"""Retrieval and text-overlap metrics.

The paper reports precision, recall and F1 for its search evaluations
(§VII-C/D): *"precision reflects the proportion of relevant PEs
retrieved, and recall indicates how many relevant PEs were successfully
identified"*.  PR curves are produced by sweeping the retrieval depth k
and averaging per-query precision/recall at each depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.models.tokenize import subtokens

__all__ = [
    "precision_recall_at_k",
    "f1_score",
    "PRCurve",
    "average_pr_curve",
    "best_f1",
    "token_f1",
]


def precision_recall_at_k(
    ranked: Sequence, relevant: set, k: int
) -> tuple[float, float]:
    """Precision and recall of the top-``k`` of one ranked result list."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant:
        return 0.0, 0.0
    top = ranked[:k]
    hits = sum(1 for item in top if item in relevant)
    return hits / k, hits / len(relevant)


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


@dataclass
class PRCurve:
    """An averaged precision–recall curve over a query set.

    ``ks[i]`` is the retrieval depth, ``precision[i]`` / ``recall[i]``
    the query-averaged metrics at that depth — the series the paper's
    Figs 11–13 plot.
    """

    ks: list[int] = field(default_factory=list)
    precision: list[float] = field(default_factory=list)
    recall: list[float] = field(default_factory=list)

    def f1(self) -> list[float]:
        """Per-depth F1 series along the curve."""
        return [f1_score(p, r) for p, r in zip(self.precision, self.recall)]

    def best_f1(self) -> float:
        """Maximum F1 along the curve (the paper's headline number)."""
        scores = self.f1()
        return max(scores) if scores else 0.0

    def best_k(self) -> int:
        """Retrieval depth at which F1 peaks."""
        scores = self.f1()
        if not scores:
            return 0
        return self.ks[int(np.argmax(scores))]

    def rows(self) -> list[tuple[int, float, float, float]]:
        """``(k, precision, recall, f1)`` rows for printing/plotting."""
        return [
            (k, p, r, f1_score(p, r))
            for k, p, r in zip(self.ks, self.precision, self.recall)
        ]


def average_pr_curve(
    per_query_rankings: Iterable[tuple[Sequence, set]],
    max_k: int = 20,
) -> PRCurve:
    """Average per-query precision/recall over k = 1..max_k.

    ``per_query_rankings`` yields ``(ranked_ids, relevant_id_set)`` pairs.
    Queries with empty relevant sets are skipped (no defined recall).
    """
    ks = list(range(1, max_k + 1))
    p_sum = np.zeros(len(ks))
    r_sum = np.zeros(len(ks))
    n = 0
    for ranked, relevant in per_query_rankings:
        if not relevant:
            continue
        n += 1
        for i, k in enumerate(ks):
            p, r = precision_recall_at_k(ranked, relevant, k)
            p_sum[i] += p
            r_sum[i] += r
    if n == 0:
        return PRCurve(ks=ks, precision=[0.0] * len(ks), recall=[0.0] * len(ks))
    return PRCurve(
        ks=ks,
        precision=list(p_sum / n),
        recall=list(r_sum / n),
    )


def best_f1(curve: PRCurve) -> float:
    """Convenience alias for ``curve.best_f1()``."""
    return curve.best_f1()


def token_f1(generated: str, reference: str) -> float:
    """Token-overlap F1 between a generated and a reference description.

    A ROUGE-1-style measure over stemmed, stopword-filtered subtokens —
    used to score description quality in the Fig 10 reproduction.
    """
    gen = set(subtokens(generated, drop_stopwords=True, stem_words=True))
    ref = set(subtokens(reference, drop_stopwords=True, stem_words=True))
    if not gen or not ref:
        return 0.0
    inter = len(gen & ref)
    precision = inter / len(gen)
    recall = inter / len(ref)
    return f1_score(precision, recall)
