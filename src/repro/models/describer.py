"""CodeT5 substitute: automatic description generation for PEs and workflows.

Laminar generates a natural-language description for every PE that lacks
one; Laminar 1.0 fed CodeT5 only the ``_process`` method, Laminar 2.0 the
full class definition (paper §IV-C, evaluated in Fig 10).  Offline we
substitute an extractive, AST-driven generator that honours the same
context distinction:

* :attr:`DescriptionContext.PROCESS_ONLY` sees just the ``_process`` body —
  no class name, no docstrings — and therefore produces vaguer text.
* :attr:`DescriptionContext.FULL_CLASS` sees the class name, docstrings,
  every method and the identifiers they use.

The output is deterministic and composed of real sentences, so it is
usable both for display (Figs 7–9 show descriptions in search results)
and as input to the description embedder for text-to-code search.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field

from repro.models.tokenize import STOPWORDS, split_identifier

__all__ = ["CodeT5Describer", "DescriptionContext"]


class DescriptionContext(enum.Enum):
    """Which slice of the source the generator may look at."""

    PROCESS_ONLY = "process_only"  # Laminar 1.0 behaviour
    FULL_CLASS = "full_class"  # Laminar 2.0 behaviour


#: Leading identifier words treated as verbs when building sentences.
_VERBS = {
    "add": "adds", "aggregate": "aggregates", "append": "appends",
    "apply": "applies", "build": "builds", "calc": "calculates",
    "calculate": "calculates", "check": "checks", "clean": "cleans",
    "collect": "collects", "compute": "computes", "convert": "converts",
    "count": "counts", "create": "creates", "decode": "decodes",
    "detect": "detects", "drop": "drops", "emit": "emits",
    "encode": "encodes", "extract": "extracts", "fetch": "fetches",
    "filter": "filters", "find": "finds", "format": "formats",
    "generate": "generates", "get": "gets", "group": "groups",
    "is": "checks whether the input is", "join": "joins", "load": "loads",
    "make": "makes", "merge": "merges", "normalize": "normalizes",
    "parse": "parses", "print": "prints", "process": "processes",
    "produce": "produces", "read": "reads", "remove": "removes",
    "render": "renders", "resolve": "resolves", "return": "returns",
    "reverse": "reverses", "save": "saves", "select": "selects",
    "send": "sends", "sort": "sorts", "split": "splits", "sum": "sums",
    "to": "converts to", "transform": "transforms", "update": "updates",
    "validate": "validates", "write": "writes",
}

_GENERIC_METHODS = {"__init__", "process", "_process", "preprocess", "postprocess"}


@dataclass
class _Extracted:
    """Everything the generator pulled out of the AST."""

    class_name: str | None = None
    docstrings: list[str] = field(default_factory=list)
    method_names: list[str] = field(default_factory=list)
    identifiers: list[str] = field(default_factory=list)
    calls: list[str] = field(default_factory=list)
    returns_value: bool = False


class _Collector(ast.NodeVisitor):
    def __init__(self) -> None:
        self.out = _Extracted()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.out.class_name is None:
            self.out.class_name = node.name
            doc = ast.get_docstring(node)
            if doc:
                self.out.docstrings.append(doc)
        self.generic_visit(node)

    def _visit_func(self, node) -> None:
        self.out.method_names.append(node.name)
        doc = ast.get_docstring(node)
        if doc:
            self.out.docstrings.append(doc)
        self.generic_visit(node)

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Name(self, node: ast.Name) -> None:
        self.out.identifiers.append(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.out.identifiers.append(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self.out.calls.append(func.id)
        elif isinstance(func, ast.Attribute):
            self.out.calls.append(func.attr)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.out.returns_value = True
        self.generic_visit(node)


def _words(name: str) -> list[str]:
    return [w for w in split_identifier(name) if w not in STOPWORDS and len(w) > 1]


def _salient_terms(extracted: _Extracted, limit: int = 6) -> list[str]:
    """Most frequent meaningful identifier words, most frequent first."""
    freq: dict[str, int] = {}
    order: dict[str, int] = {}
    for i, ident in enumerate(extracted.identifiers + extracted.calls):
        for word in _words(ident):
            freq[word] = freq.get(word, 0) + 1
            order.setdefault(word, i)
    ranked = sorted(freq, key=lambda w: (-freq[w], order[w]))
    return ranked[:limit]


def _method_phrase(name: str) -> str | None:
    """Turn a method name like ``check_anomaly`` into "checks anomaly"."""
    parts = split_identifier(name.strip("_"))
    if not parts:
        return None
    head, *rest = parts
    verb = _VERBS.get(head)
    if verb is None:
        return None
    obj = " ".join(w for w in rest if w not in STOPWORDS)
    return f"{verb} {obj}".strip()


class CodeT5Describer:
    """Extractive description generator standing in for CodeT5.

    ``describe`` works on a PE class (or a bare function); workflow-level
    descriptions follow the paper's recipe — synthesise a class named
    after the workflow whose methods are the member PEs' functions, and
    describe that (§IV-C).
    """

    def __init__(self, max_sentences: int = 3) -> None:
        self.max_sentences = max_sentences

    # -- public API ---------------------------------------------------------

    def describe(
        self,
        source: str,
        context: DescriptionContext = DescriptionContext.FULL_CLASS,
    ) -> str:
        """Generate a description of one PE / function source string."""
        if context is DescriptionContext.PROCESS_ONLY:
            source = self._extract_process_source(source)
        try:
            from repro import pyast

            tree = pyast.parse(source)
        except SyntaxError:
            return "A processing element."
        collector = _Collector()
        collector.visit(tree)
        return self._compose(collector.out, context)

    def describe_workflow(self, name: str, pe_sources: list[str]) -> str:
        """Describe a workflow from its member PEs (paper §IV-C).

        Builds the summary from the workflow's name plus one clause per
        member PE, mirroring the synthetic-class trick the paper uses.
        """
        name_words = " ".join(_words(name)) or name
        clauses = []
        for src in pe_sources:
            desc = self.describe(src, DescriptionContext.FULL_CLASS)
            clauses.append(desc.rstrip(". ").rstrip(".").lower())
        body = "; ".join(dict.fromkeys(clauses))  # dedupe, keep order
        if body:
            return f"Workflow {name_words}: {body}."
        return f"Workflow {name_words}."

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _extract_process_source(source: str) -> str:
        """Return only the ``_process``/``process`` method, dedented.

        This reproduces Laminar 1.0's limited context.  If no such method
        exists the whole source is used unchanged.
        """
        try:
            from repro import pyast

            tree = pyast.parse(source)
        except SyntaxError:
            return source
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                node.name in ("_process", "process")
            ):
                segment = ast.get_source_segment(source, node)
                if segment:
                    import textwrap

                    # Strip the docstring: Laminar 1.0 saw only the logic.
                    lines = textwrap.dedent(segment).splitlines()
                    return "\n".join(lines)
        return source

    def _compose(self, x: _Extracted, context: DescriptionContext) -> str:
        sentences: list[str] = []

        # 1. A docstring is the best description available — lead with it.
        if x.docstrings and context is DescriptionContext.FULL_CLASS:
            first = x.docstrings[0].strip().splitlines()[0].rstrip(".")
            sentences.append(first + ".")

        # 2. Class identity (only visible with full-class context).
        if x.class_name and context is DescriptionContext.FULL_CLASS:
            pretty = " ".join(split_identifier(x.class_name))
            sentences.append(f"The {pretty} class.")

        # 3. Behavioural clause from method names.
        phrases = []
        for name in x.method_names:
            if name in _GENERIC_METHODS and context is DescriptionContext.FULL_CLASS:
                continue
            phrase = _method_phrase(name)
            if phrase:
                phrases.append(phrase)
        if phrases:
            joined = "; ".join(dict.fromkeys(phrases))
            sentences.append(f"It {joined}.")

        # 4. Salient vocabulary clause.
        terms = _salient_terms(x)
        if terms:
            sentences.append("Works with " + ", ".join(terms) + ".")
        if x.returns_value:
            sentences.append("Returns a value for each input.")

        if not sentences:
            return "A processing element."
        return " ".join(sentences[: self.max_sentences])
