"""Deterministic substitutes for the language models Laminar 2.0 uses.

The paper relies on three pretrained transformers, none of which can be
downloaded in this offline environment:

* **CodeT5** — generates natural-language descriptions of PEs.  Substituted
  by :class:`repro.models.describer.CodeT5Describer`, an extractive,
  AST-driven description generator that (like the paper) supports both the
  Laminar 1.0 context (``_process`` method only) and the Laminar 2.0
  context (full class definition).
* **UniXcoder** — embeds descriptions/queries for text-to-code search.
  Substituted by :class:`repro.models.embedder.UniXcoderEmbedder`, a hashed
  TF-IDF bag-of-subtokens with a seeded Gaussian random projection into a
  dense, L2-normalised vector space; cosine search is an exact matrix
  multiply.
* **ReACC-py-retriever** — dense code-to-code retriever used by Laminar 1.0.
  Substituted by :class:`repro.models.reacc.ReACCRetriever`, a token
  *sequence* (n-gram) embedder that is deliberately surface-form sensitive:
  excellent at clone detection on full snippets, degrading sharply on
  partial ones — the qualitative behaviour the paper's Fig 13 reports.

All substitutes are deterministic (fixed seeds), so evaluation results are
reproducible bit-for-bit.
"""

from repro.models.describer import CodeT5Describer, DescriptionContext
from repro.models.embedder import UniXcoderEmbedder, cosine_similarity_matrix
from repro.models.reacc import ReACCRetriever
from repro.models.tokenize import (
    code_tokens,
    split_identifier,
    subtokens,
)

__all__ = [
    "CodeT5Describer",
    "DescriptionContext",
    "UniXcoderEmbedder",
    "ReACCRetriever",
    "cosine_similarity_matrix",
    "code_tokens",
    "split_identifier",
    "subtokens",
]
