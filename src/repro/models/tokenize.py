"""Code-aware tokenisation shared by the model substitutes.

Both the embedder and the describer need to see *subtokens*: Python
identifiers split on ``snake_case`` and ``camelCase`` boundaries, lowered,
with punctuation stripped — the same normalisation the paper's transformer
tokenisers effectively perform on code.
"""

from __future__ import annotations

import io
import keyword
import re
import tokenize as _pytokenize

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+")

#: Words too generic to carry meaning in descriptions or embeddings.
STOPWORDS = frozenset(
    """a an and are as at be by for from has have in is it its of on or
    that the this to was were will with self def class return none true
    false arg args kwargs obj value data item elem pe""".split()
)


def split_identifier(identifier: str) -> list[str]:
    """Split an identifier into lowercase word parts.

    ``parseHTTPResponse`` -> ``['parse', 'http', 'response']``;
    ``num_events_2`` -> ``['num', 'events', '2']``.
    """
    parts: list[str] = []
    for chunk in identifier.split("_"):
        if not chunk:
            continue
        for piece in _CAMEL_RE.split(chunk):
            if piece:
                parts.append(piece.lower())
    return parts


def stem(word: str) -> str:
    """Crude suffix-stripping stemmer (Porter-lite).

    Collapses common inflections so that e.g. ``anomalies``, ``anomaly``
    and ``detection``/``detects`` share a stem — enough for bag-of-words
    semantic search without a full morphological analyser.
    """
    if len(word) <= 3:
        return word
    for suffix, replacement in (
        ("ies", "y"),
        ("sses", "ss"),
        ("ation", "ate"),
        ("tion", "t"),
        ("ing", ""),
        ("ers", "er"),
        ("ed", ""),
        ("es", ""),
        ("s", ""),
    ):
        if word.endswith(suffix) and len(word) - len(suffix) >= 3:
            return word[: -len(suffix)] + replacement
    return word


def subtokens(
    text: str, drop_stopwords: bool = False, stem_words: bool = False
) -> list[str]:
    """Extract lowercase subtokens from arbitrary text or code.

    Identifiers are split on case/underscore boundaries; punctuation is
    discarded.  With ``drop_stopwords`` the generic filler words in
    :data:`STOPWORDS` are removed; with ``stem_words`` each subtoken is
    reduced with :func:`stem` (both useful for description embeddings).
    """
    out: list[str] = []
    for match in _WORD_RE.finditer(text):
        for part in split_identifier(match.group()):
            if drop_stopwords and part in STOPWORDS:
                continue
            out.append(stem(part) if stem_words else part)
    return out


def code_tokens(source: str) -> list[str]:
    """Tokenise Python source into a lexical token stream.

    Uses the stdlib tokenizer when the source parses; falls back to a
    regex scan for incomplete fragments (partial snippets are first-class
    citizens in the code-to-code evaluation).  Comments, newlines and
    indentation tokens are dropped; string literals are collapsed to the
    marker ``"<str>"`` so formatting noise does not dominate similarity.
    """
    tokens: list[str] = []
    try:
        for tok in _pytokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type in (
                _pytokenize.COMMENT,
                _pytokenize.NL,
                _pytokenize.NEWLINE,
                _pytokenize.INDENT,
                _pytokenize.DEDENT,
                _pytokenize.ENCODING,
                _pytokenize.ENDMARKER,
            ):
                continue
            if tok.type == _pytokenize.STRING:
                tokens.append("<str>")
            elif tok.type == _pytokenize.NUMBER:
                tokens.append("<num>")
            else:
                tokens.append(tok.string)
    except (_pytokenize.TokenError, IndentationError, SyntaxError, ValueError):
        tokens = _regex_scan(source)
    return tokens


def _regex_scan(source: str) -> list[str]:
    """Permissive lexical scan for code that the strict tokenizer rejects."""
    pattern = re.compile(
        r"""
        (?P<str>(['"]).*?\2)      # naive string literal
      | (?P<num>\d+(?:\.\d+)?)
      | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<op>[+\-*/%=<>!&|^~@]+|[()\[\]{}:.,;])
        """,
        re.VERBOSE,
    )
    tokens: list[str] = []
    for match in pattern.finditer(source):
        if match.lastgroup == "str":
            tokens.append("<str>")
        elif match.lastgroup == "num":
            tokens.append("<num>")
        else:
            tokens.append(match.group())
    return tokens


def is_keyword(token: str) -> bool:
    """True for Python keywords and soft keywords."""
    return keyword.iskeyword(token) or keyword.issoftkeyword(token)
