"""ReACC-py-retriever substitute: surface-form-sensitive code embeddings.

Laminar 1.0's code-to-code search used the ReACC-py dense retriever, which
the paper characterises as excellent at recalling *identical or
semantically equivalent* code but poor on partial, structurally diverse
snippets (Fig 13).  Our substitute reproduces that profile with a token
*sequence* model: the code's lexical token stream is hashed as overlapping
n-grams into a sparse space and projected to a dense, L2-normalised
vector.  Because n-grams encode exact local token order — including
concrete identifier names — full snippets of a clone family score near 1.0
while truncated snippets lose most shared n-grams and the score collapses,
exactly the failure mode the paper observed.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.models.tokenize import code_tokens

__all__ = ["ReACCRetriever"]


def _bucket(term: str, n_buckets: int) -> int:
    digest = hashlib.md5(term.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % n_buckets


class ReACCRetriever:
    """Dense code retriever over hashed token n-grams.

    Parameters
    ----------
    dim:
        Dense embedding dimensionality.
    n_buckets:
        Sparse hashing dimensionality before projection.
    ngram:
        N-gram order over the lexical token stream; 4 keeps enough exact
        context to behave like a clone detector while staying brittle to
        renames and truncation, matching the profile in the paper's Fig 13.
    seed:
        Seed of the Gaussian projection.
    """

    def __init__(
        self,
        dim: int = 256,
        n_buckets: int = 8192,
        ngram: int = 4,
        seed: int = 1337,
    ) -> None:
        self.dim = dim
        self.n_buckets = n_buckets
        self.ngram = ngram
        rng = np.random.default_rng(seed)
        self._projection = rng.standard_normal((n_buckets, dim)) / np.sqrt(dim)

    def _terms(self, source: str) -> list[str]:
        tokens = code_tokens(source)
        if len(tokens) < self.ngram:
            return ["⊔".join(tokens)] if tokens else []
        return [
            "⊔".join(tokens[i : i + self.ngram])
            for i in range(len(tokens) - self.ngram + 1)
        ]

    def encode(self, sources: str | list[str]) -> np.ndarray:
        """Embed one snippet or a batch; returns ``(n, dim)`` unit rows."""
        if isinstance(sources, str):
            sources = [sources]
        sparse = np.zeros((len(sources), self.n_buckets))
        for i, src in enumerate(sources):
            for term in self._terms(src):
                sparse[i, _bucket(term, self.n_buckets)] += 1.0
            nz = sparse[i] > 0
            sparse[i, nz] = 1.0 + np.log(sparse[i, nz])
        dense = sparse @ self._projection
        norms = np.linalg.norm(dense, axis=1, keepdims=True)
        np.maximum(norms, 1e-12, out=norms)
        return dense / norms

    def similarity(self, query: str, documents: list[str]) -> np.ndarray:
        """Cosine similarity of a query snippet against document snippets."""
        q = self.encode(query)
        d = self.encode(documents)
        return (q @ d.T)[0]
