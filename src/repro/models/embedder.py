"""UniXcoder substitute: deterministic dense text embeddings.

The paper embeds PE/workflow descriptions and user queries with UniXcoder
and ranks by cosine similarity.  Offline we substitute a classical but
fully deterministic pipeline with the same interface and the same geometry:

1. **Hashed bag-of-subtokens** — each subtoken (and each bigram, to keep a
   little word order) is hashed into one of ``n_buckets`` sparse
   dimensions; counts are sublinearly damped (``1 + log tf``).
2. **IDF weighting** — fitted on a corpus when available, so corpus-wide
   filler words stop dominating similarity.
3. **Seeded Gaussian random projection** into ``dim`` dense dimensions
   (Johnson–Lindenstrauss: cosine distances are approximately preserved),
   then L2 normalisation.

Cosine similarity over the resulting matrix is a single ``A @ B.T`` — the
vectorised hot path the HPC guides prescribe.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.models.tokenize import subtokens

__all__ = ["UniXcoderEmbedder", "cosine_similarity_matrix"]


def _bucket(token: str, n_buckets: int) -> int:
    """Stable hash bucket for a token (md5-based, process-independent)."""
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % n_buckets


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cosine similarity between every row of ``a`` and every row of ``b``.

    Rows are normalised defensively (zero rows stay zero), so callers may
    pass unnormalised vectors.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    a_norm = np.linalg.norm(a, axis=1, keepdims=True)
    b_norm = np.linalg.norm(b, axis=1, keepdims=True)
    np.maximum(a_norm, 1e-12, out=a_norm)
    np.maximum(b_norm, 1e-12, out=b_norm)
    return (a / a_norm) @ (b / b_norm).T


class UniXcoderEmbedder:
    """Deterministic dense embedder for descriptions and queries.

    Parameters
    ----------
    dim:
        Dense embedding dimensionality (the real UniXcoder uses 768; 256
        is ample for the corpus sizes evaluated here).
    n_buckets:
        Sparse hashing dimensionality before projection.
    seed:
        Seed for the Gaussian projection matrix; two embedders with equal
        ``(dim, n_buckets, seed)`` produce identical vectors.
    use_bigrams:
        Also hash adjacent subtoken pairs, preserving some word order.
    """

    def __init__(
        self,
        dim: int = 256,
        n_buckets: int = 4096,
        seed: int = 2024,
        use_bigrams: bool = True,
    ) -> None:
        self.dim = dim
        self.n_buckets = n_buckets
        self.use_bigrams = use_bigrams
        rng = np.random.default_rng(seed)
        # (n_buckets, dim) Gaussian projection, scaled for unit variance.
        self._projection = rng.standard_normal((n_buckets, dim)) / np.sqrt(dim)
        self._idf = np.ones(n_buckets)
        self._fitted = False

    # -- corpus statistics ------------------------------------------------------

    def fit(self, corpus: list[str]) -> "UniXcoderEmbedder":
        """Fit IDF weights on a document corpus (optional but recommended)."""
        if not corpus:
            raise ValueError("cannot fit on an empty corpus")
        df = np.zeros(self.n_buckets)
        for text in corpus:
            seen = {_bucket(t, self.n_buckets) for t in self._terms(text)}
            for b in seen:
                df[b] += 1
        n = len(corpus)
        self._idf = np.log((1 + n) / (1 + df)) + 1.0
        self._fitted = True
        return self

    # -- encoding ------------------------------------------------------------------

    def _terms(self, text: str) -> list[str]:
        toks = subtokens(text, drop_stopwords=True, stem_words=True)
        if not self.use_bigrams:
            return toks
        return toks + [f"{a}_{b}" for a, b in zip(toks, toks[1:])]

    def _sparse_counts(self, text: str) -> np.ndarray:
        counts = np.zeros(self.n_buckets)
        for term in self._terms(text):
            counts[_bucket(term, self.n_buckets)] += 1.0
        # Sublinear tf damping.
        nz = counts > 0
        counts[nz] = 1.0 + np.log(counts[nz])
        return counts * self._idf

    def encode(self, texts: str | list[str]) -> np.ndarray:
        """Embed one string or a batch; returns ``(n, dim)`` normalised rows."""
        if isinstance(texts, str):
            texts = [texts]
        sparse = np.stack([self._sparse_counts(t) for t in texts])
        dense = sparse @ self._projection
        norms = np.linalg.norm(dense, axis=1, keepdims=True)
        np.maximum(norms, 1e-12, out=norms)
        return dense / norms

    def similarity(self, query: str, documents: list[str]) -> np.ndarray:
        """Cosine similarity of ``query`` against each document."""
        q = self.encode(query)
        d = self.encode(documents)
        return (q @ d.T)[0]
