"""Legacy setup shim: the offline environment lacks the `wheel` package, so
PEP 660 editable installs can't build; `python setup.py develop` still works."""
from setuptools import setup

setup()
