"""E6 — Table II / Fig 6: the registry's database schema.

Conformance bench: the registry database exposes exactly the entities
and relationships of Table II, the CLOB columns of §IV-D, and the Fig 6
indexes.  Timed body: one PE registration write (the registry's hottest
insert path).
"""

from repro.laminar.registry import RegistryDatabase, schema_summary
from repro.laminar.server.dataaccess import PERepository, UserRepository


def test_table2_schema_conformance(report, benchmark):
    db = RegistryDatabase()
    rows = []
    for entry in schema_summary():
        rows.append(f"{entry['table']:<18} {entry['description']}")
    rows.append("")
    rows.append(f"tables : {sorted(db.table_names())}")
    rows.append(f"indexes: {sorted(db.index_names())}")
    rows.append(
        "CLOB columns: ProcessingElement(peCode, descEmbedding, sptEmbedding), "
        "Workflow(workflowCode, descEmbedding, sptEmbedding), Response(output, logLines)"
    )
    report("Table II — registry schema", rows)

    assert {
        "User",
        "Workflow",
        "ProcessingElement",
        "WorkflowPE",
        "Execution",
        "Response",
    } <= db.table_names()
    for column in ("peCode", "descEmbedding", "sptEmbedding"):
        assert column in db.columns("ProcessingElement")
    assert len(db.index_names()) >= 8

    users = UserRepository(db)
    pes = PERepository(db)
    user = users.create("bench", "h")
    counter = iter(range(10_000_000))

    def insert():
        pes.create(
            user_id=user.userId,
            name=f"PE{next(counter)}",
            code="class X(IterativePE):\n    pass\n" * 10,
            description="a benchmark PE",
            desc_embedding="[0.0]" * 1,
            spt_embedding='{"f": 1}',
        )

    benchmark(insert)
    db.close()
