"""A1 — §IV-E ablation: batch (HTTP/1.1-style) vs streaming (HTTP/2-style).

Laminar 1.0 ran the whole workflow and returned stdout as one body;
Laminar 2.0 streams each line as it is produced.  Both modes exist in
this codebase (``transport.request`` drains, ``transport.stream`` frames
live), so the ablation measures the user-visible difference:
time-to-first-output-line for a workflow that emits N lines with a
per-item delay.  Streaming should deliver the first line after ~1/N of
the batch latency.
"""

import time

from repro.laminar import LaminarClient
from repro.laminar.server.app import LaminarServer
from repro.laminar.transport.frames import FrameType
from repro.laminar.transport.inprocess import InProcessTransport

SLOW_WF = """
import time

class Ticker(ProducerPE):
    def _process(self, inputs):
        time.sleep(0.02)
        print("tick")
        return 1

t = Ticker("Ticker")
graph = WorkflowGraph()
graph.add(t)
"""

N_TICKS = 10


def test_streaming_vs_batch_first_output(report, benchmark):
    server = LaminarServer()
    transport = InProcessTransport(server)
    client = LaminarClient(transport=transport)
    client.register_Workflow(SLOW_WF, name="slow_wf")
    payload = {"action": "run", "id": "slow_wf", "input": N_TICKS}

    # Batch mode (Laminar 1.0): the unary request drains the stream.
    start = time.perf_counter()
    response = transport.request(dict(payload))
    batch_total = time.perf_counter() - start
    assert len(response["body"]["lines"]) == N_TICKS

    # Streaming mode (Laminar 2.0): time to the first DATA frame.
    start = time.perf_counter()
    first_line_at = None
    for frame in transport.stream(dict(payload)):
        if frame.type is FrameType.DATA and first_line_at is None:
            first_line_at = time.perf_counter() - start
    stream_total = time.perf_counter() - start

    speedup = batch_total / first_line_at
    report(
        "A1 — batch vs streaming (time to first output line)",
        [
            f"workflow: {N_TICKS} outputs, 20 ms apart",
            f"batch     (L1.0): first output after {batch_total * 1e3:7.1f} ms "
            f"(= full run)",
            f"streaming (L2.0): first output after {first_line_at * 1e3:7.1f} ms "
            f"(run total {stream_total * 1e3:7.1f} ms)",
            f"first-output speedup: {speedup:.1f}x (ideal ~{N_TICKS}x)",
        ],
    )
    # The paper's claim: streaming minimises latency to first output.
    assert first_line_at < batch_total / 3

    def first_frame():
        for frame in transport.stream({"action": "run", "id": "slow_wf", "input": 2}):
            if frame.type is FrameType.DATA:
                return frame
        return None

    benchmark.pedantic(first_frame, rounds=5, iterations=1)
