"""A11 — fair-share queue overhead: DRR lanes vs the old single heap.

The multi-tenant queue replaced one global priority heap with per-tenant
lanes drained by deficit round-robin.  A single-tenant deployment — the
common case for a dev server — must not pay materially for machinery it
does not use, so this bench drives the same put/get workload through the
production :class:`~repro.laminar.jobs.queue.JobQueue` and through an
inlined replica of the pre-tenancy single-heap queue, and bounds the
single-tenant throughput cost at 10%.

Methodology: interleave the two arms round-by-round so clock drift and
cache effects hit both equally, then compare medians.  The result is
committed to ``BENCH_fairshare.json`` at the repo root.
"""

import heapq
import itertools
import json
import statistics
import threading
import time
from pathlib import Path

from repro.laminar.jobs import Job, JobQueue, JobSpec

#: Jobs per round — large enough that one round takes a few ms, so the
#: per-op delta is resolved well below the 10% bar.
BATCH = 4000
ROUNDS = 15

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fairshare.json"


class LegacyHeapQueue:
    """Faithful replica of the pre-tenancy queue: one global priority
    heap under a condvar, with the same admission and peak accounting."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._heap: list = []
        self._cancelled: set = set()
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self.submitted = 0
        self.rejected = 0
        self.peak_depth = 0

    def put(self, job: Job) -> None:
        with self._cond:
            if len(self._heap) - len(self._cancelled) >= self.capacity:
                self.rejected += 1
                raise RuntimeError("full")
            heapq.heappush(self._heap, (-job.spec.priority, next(self._seq), job))
            self.submitted += 1
            self.peak_depth = max(
                self.peak_depth, len(self._heap) - len(self._cancelled)
            )
            self._cond.notify()

    def get(self, timeout=None) -> Job | None:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.job_id in self._cancelled:
                        self._cancelled.discard(job.job_id)
                        continue
                    return job
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)


def _jobs() -> list[Job]:
    return [
        Job(
            job_id=i,
            spec=JobSpec(workflow_code="", user_name="solo", priority=i % 3),
        )
        for i in range(BATCH)
    ]


def _time_queue(make_queue) -> float:
    queue = make_queue()
    jobs = _jobs()
    started = time.perf_counter()
    for job in jobs:
        queue.put(job)
    for _ in jobs:
        assert queue.get(timeout=1.0) is not None
    return time.perf_counter() - started


def test_fairshare_single_tenant_overhead(report):
    legacy_times: list[float] = []
    fairshare_times: list[float] = []
    for _ in range(ROUNDS):
        legacy_times.append(
            _time_queue(lambda: LegacyHeapQueue(capacity=BATCH + 1))
        )
        fairshare_times.append(
            _time_queue(lambda: JobQueue(capacity=BATCH + 1))
        )
    legacy = statistics.median(legacy_times)
    fairshare = statistics.median(fairshare_times)
    overhead_pct = 100.0 * (fairshare - legacy) / legacy

    payload = {
        "benchmark": "fairshare_single_tenant_overhead",
        "batch_jobs": BATCH,
        "rounds": ROUNDS,
        "legacy_heap_median_ms": round(1e3 * legacy, 4),
        "fairshare_median_ms": round(1e3 * fairshare, 4),
        "overhead_pct": round(overhead_pct, 3),
        "threshold_pct": 10.0,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        "A11 — fair-share queue overhead (single tenant)",
        [
            f"workload: {BATCH} put+get pairs, median of {ROUNDS} rounds",
            f"legacy heap:  {1e3 * legacy:8.3f} ms/round",
            f"DRR lanes:    {1e3 * fairshare:8.3f} ms/round",
            f"overhead: {overhead_pct:+.2f}% (bar: 10%)",
        ],
    )
    assert overhead_pct < 10.0, (
        f"single-tenant fair-share overhead {overhead_pct:.2f}% exceeds 10%"
    )
