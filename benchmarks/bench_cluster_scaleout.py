#!/usr/bin/env python
"""Cluster scale-out benchmark: aggregate job throughput at 1/2/4 shards.

Boots a :class:`ClusterSupervisor` at each shard count with identical
per-shard resources (2 job workers), registers the same sleep-bound
workflow under many names so the consistent-hash ring spreads ownership
across shards, then submits one batch of jobs round-robin over those
names through a :class:`ShardedClient` and measures completed jobs/sec
for the whole batch.

The workload is sleep-bound (each enactment parks in ``time.sleep``) so
the in-process shards do not fight over the GIL — the measured scaling
is the cluster topology's, not the interpreter's.  The acceptance bar
(ISSUE 8) is >= 2.5x aggregate jobs/sec at 4 shards vs 1; the full run
commits its result to ``BENCH_cluster_scaleout.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster_scaleout.py          # full
    PYTHONPATH=src python benchmarks/bench_cluster_scaleout.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

try:
    from repro.laminar.cluster import ClusterSupervisor, ShardedClient
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.laminar.cluster import ClusterSupervisor, ShardedClient

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_cluster_scaleout.json"
)
THRESHOLD = 2.5
JOB_WORKERS = 2  # per shard — fixed so scaling comes from shard count alone

SLEEP_WF = """
import time

class Sleeper(ProducerPE):
    def _process(self, inputs):
        time.sleep({sleep})
        return 1

graph = WorkflowGraph()
graph.add(Sleeper("S"))
"""


def _run_arm(shards: int, names: int, jobs: int, sleep: float, rounds: int):
    """Median jobs/sec over ``rounds`` batches on a ``shards``-shard cluster."""
    code = SLEEP_WF.format(sleep=sleep)
    with ClusterSupervisor(
        shards=shards,
        health_interval=5.0,
        job_workers=JOB_WORKERS,
        job_queue_capacity=jobs * 2,
    ) as sup:
        client = ShardedClient(sup.config)
        try:
            owners: dict[str, int] = {}
            for i in range(names):
                body = client.register_Workflow(code, name=f"sleep-{i}")
                owners[body["shards"][0]] = owners.get(body["shards"][0], 0) + 1
            walls = []
            for _ in range(rounds):
                started = time.perf_counter()
                job_ids = [
                    client.submit_Job(f"sleep-{i % names}")["jobId"]
                    for i in range(jobs)
                ]
                for job_id in job_ids:
                    result = client.wait_For_Job(
                        job_id, timeout=120, interval=0.01
                    )
                    if result["state"] != "SUCCEEDED":
                        raise AssertionError(
                            f"job {job_id} ended {result['state']}: "
                            f"{result.get('error')}"
                        )
                walls.append(time.perf_counter() - started)
            wall = statistics.median(walls)
            return {
                "shards": shards,
                "job_workers_per_shard": JOB_WORKERS,
                "jobs": jobs,
                "wall_s": round(wall, 3),
                "jobs_per_s": round(jobs / wall, 1),
                # primary-owner spread of the workflow names, so a skewed
                # ring would be visible right in the committed result
                "name_owners": dict(sorted(owners.items())),
            }
        finally:
            client.close()


def run_bench(shard_counts, names: int, jobs: int, sleep: float, rounds: int):
    arms = [
        _run_arm(shards, names, jobs, sleep, rounds) for shards in shard_counts
    ]
    base = arms[0]["jobs_per_s"]
    return {
        "benchmark": "cluster_scaleout",
        "workload": (
            f"{jobs} jobs x {int(sleep * 1e3)} ms sleep-bound enactment, "
            f"round-robin over {names} workflow names"
        ),
        "cluster": (
            f"in-process TCP shards, {JOB_WORKERS} job workers each, "
            "replication=2"
        ),
        "rounds": rounds,
        "arms": arms,
        "speedup_max_shards": round(arms[-1]["jobs_per_s"] / base, 2),
        "threshold_speedup": THRESHOLD,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness + direction only; no JSON committed",
    )
    parser.add_argument("--jobs", type=int, default=None, help="jobs per batch")
    parser.add_argument(
        "--rounds", type=int, default=None, help="timed batches per shard count"
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)

    shard_counts = (1, 2) if args.smoke else (1, 2, 4)
    jobs = args.jobs or (12 if args.smoke else 96)
    rounds = args.rounds or (1 if args.smoke else 3)
    sleep = 0.02 if args.smoke else 0.03
    names = 12 if args.smoke else 48
    payload = run_bench(shard_counts, names, jobs, sleep, rounds)

    for arm in payload["arms"]:
        print(
            f"shards={arm['shards']}: {arm['jobs_per_s']:>6.1f} jobs/s "
            f"({arm['wall_s']:.2f} s/batch)"
        )
    print(
        f"speedup at {shard_counts[-1]} shards: "
        f"{payload['speedup_max_shards']}x (bar: >= {THRESHOLD}x full run)"
    )

    if args.smoke:
        # CI smoke: every job already asserted SUCCEEDED; adding a shard
        # must at least not slow the batch down on a tiny workload.
        if payload["speedup_max_shards"] < 1.0:
            print("FAIL: 2 shards slower than 1 on smoke workload")
            return 1
        print("smoke OK")
        return 0

    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"result written to {args.out}")
    if payload["speedup_max_shards"] < THRESHOLD:
        print(f"FAIL: speedup below the {THRESHOLD}x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
