#!/usr/bin/env python
"""Search-at-scale benchmark: exact vs two-stage ANN, warm start vs rebuild.

Builds synthetic snippet corpora at 10k / 100k (and 1M with ``--full``)
vectors derived from the :mod:`repro.datasets.templates` families: the 48
family descriptions are embedded once with :class:`UniXcoderEmbedder`,
then scaled to corpus size by seeded Gaussian perturbation — the SlsReuse
function-reuse workload, where near-duplicate snippets cluster around a
shared intent.  Queries are held-out perturbations of the same bases.

Per scale it measures:

* ``build_s`` — bulk :class:`VectorIndex` build from raw vectors.
* ``rebuild_s`` — rebuild-from-registry simulation: parse each stored
  JSON embedding (exactly what ``RegistryService`` does on a cold start)
  and bulk-add.  The warm-start acceptance bar compares against this.
* ``warm_start_s`` — ``save_index`` + checksum-verified ``load_index``
  (memmap), the persisted-index path.
* QPS for exact single-query, exact batched, and two-stage batched
  search, plus two-stage recall@10 against the exact ranking.

Acceptance bars (ISSUE 7): at 100k, two-stage batched >= 10x exact
single-query QPS with recall@10 >= 0.9, and warm start >= 5x faster than
rebuild.  The full run commits ``BENCH_search_scale.json`` at the repo
root.

Usage::

    PYTHONPATH=src python benchmarks/bench_search_scale.py          # 10k+100k
    PYTHONPATH=src python benchmarks/bench_search_scale.py --full   # +1M
    PYTHONPATH=src python benchmarks/bench_search_scale.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

try:
    from repro.search.index import TwoStageIndex, VectorIndex, load_index, save_index
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.search.index import TwoStageIndex, VectorIndex, load_index, save_index

from repro.datasets.templates import FAMILIES
from repro.models.embedder import UniXcoderEmbedder

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_search_scale.json"
QPS_BAR = 10.0
RECALL_BAR = 0.9
WARM_BAR = 5.0
_CHUNK = 50_000


_INTENT_BASES = 1024
_INTENT_SPREAD = 0.8  # intra-topic intent separation (relative norm)


def _base_vectors(embedder: UniXcoderEmbedder) -> np.ndarray:
    """Two-level intent space: 1024 snippet intents in 48 template topics.

    Each of the 48 :data:`FAMILIES` descriptions is a topic centroid;
    1024 intent bases are spread around them so the corpus has the shape
    of a real registry — thousands of distinct intents, each with many
    near-duplicate reuse copies — rather than 48 giant clusters.
    """
    texts = [
        f"{family.description} Processing element for streaming data."
        for family in sorted(FAMILIES, key=lambda f: f.key)
    ]
    topics = embedder.encode(texts).astype(np.float32)
    rng = np.random.default_rng(7)
    noise = rng.standard_normal((_INTENT_BASES, topics.shape[1]), dtype=np.float32)
    noise /= np.linalg.norm(noise, axis=1, keepdims=True)
    base = topics[np.arange(_INTENT_BASES) % len(texts)] + _INTENT_SPREAD * noise
    return base / np.linalg.norm(base, axis=1, keepdims=True)


def _corpus(base: np.ndarray, n: int, spread: float, seed: int) -> np.ndarray:
    """n seeded perturbations of the base embeddings, L2-normalized.

    ``spread`` is the perturbation norm relative to the (unit) base
    vector — 0.2 puts near-duplicates ~11 degrees apart — so the knob is
    dimension-independent (per-dim sigma is ``spread / sqrt(dim)``).
    """
    rng = np.random.default_rng(seed)
    sigma = spread / np.sqrt(base.shape[1])
    reps = -(-n // base.shape[0])
    vecs = np.repeat(base, reps, axis=0)[:n]
    out = np.empty_like(vecs)
    for lo in range(0, n, _CHUNK):  # chunked: 1M x 256 floats at once is 1GB
        hi = min(lo + _CHUNK, n)
        chunk = vecs[lo:hi] + sigma * rng.standard_normal(
            (hi - lo, vecs.shape[1]), dtype=np.float32
        )
        out[lo:hi] = chunk / np.linalg.norm(chunk, axis=1, keepdims=True)
    return out


def _rebuild_from_json(vectors: np.ndarray) -> float:
    """Seconds to rebuild a VectorIndex from JSON-stored embeddings.

    Mirrors the registry cold path: every record's ``descEmbedding`` is a
    JSON array string that must be parsed before the bulk add.  Chunked so
    the 1M tier never holds all the strings at once.
    """
    n, dim = vectors.shape
    index = VectorIndex(dim)
    total = 0.0
    for lo in range(0, n, _CHUNK):
        hi = min(lo + _CHUNK, n)
        stored = [
            json.dumps(np.round(row, 8).tolist()) for row in vectors[lo:hi]
        ]
        ids = list(range(lo, hi))
        started = time.perf_counter()
        parsed = np.asarray(
            [json.loads(text) for text in stored], dtype=np.float32
        )
        index.add_batch(ids, parsed)
        total += time.perf_counter() - started
    assert len(index) == n
    return total


def _recall_at_10(approx, exact) -> float:
    hits = total = 0
    for a, e in zip(approx, exact):
        truth = {i for i, _ in e}
        hits += len({i for i, _ in a} & truth)
        total += len(truth)
    return hits / total if total else 0.0


def run_scale(
    base: np.ndarray, n: int, num_queries: int, spread: float
) -> dict:
    dim = base.shape[1]
    vectors = _corpus(base, n, spread=spread, seed=100 + n % 97)
    rng = np.random.default_rng(2024)
    picks = rng.choice(n, size=num_queries, replace=False)
    queries = vectors[picks] + (spread / np.sqrt(dim)) * rng.standard_normal(
        (num_queries, dim), dtype=np.float32
    )
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)

    started = time.perf_counter()
    exact = VectorIndex(dim)
    exact.add_batch(list(range(n)), vectors)
    build_s = time.perf_counter() - started

    rebuild_s = _rebuild_from_json(vectors)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "index"
        save_index(exact, path)
        started = time.perf_counter()
        warm = load_index(path, mmap=True, verify=True)
        warm_start_s = time.perf_counter() - started
        warm_top = warm.search_vector(queries[0], top_k=10)
        assert [i for i, _ in warm_top] == [
            i for i, _ in exact.search_vector(queries[0], top_k=10)
        ], "warm-started index must rank identically"

    started = time.perf_counter()
    exact_single = [exact.search_vector(q, top_k=10) for q in queries]
    exact_single_s = time.perf_counter() - started

    started = time.perf_counter()
    exact_batch = exact.search_batch(queries, top_k=10)
    exact_batch_s = time.perf_counter() - started

    started = time.perf_counter()
    # Scale-tuned banding: the service default (12x10) optimizes recall on
    # small registries; at 100k+ rows, 24 bands x 16 rows cuts candidate
    # sets ~8x while keeping recall@10 above 0.99 (see docs/guide.md).
    two_stage = TwoStageIndex(dim, bands=24, rows=16)
    two_stage.add_batch(list(range(n)), vectors)
    ts_build_s = time.perf_counter() - started

    started = time.perf_counter()
    ts_batch = two_stage.search_batch(queries, top_k=10)
    ts_batch_s = time.perf_counter() - started

    stats = two_stage.stats()
    return {
        "n": n,
        "dim": dim,
        "queries": num_queries,
        "build_s": round(build_s, 3),
        "rebuild_from_json_s": round(rebuild_s, 3),
        "warm_start_s": round(warm_start_s, 4),
        "warm_vs_rebuild": round(rebuild_s / warm_start_s, 1),
        "qps_exact_single": round(num_queries / exact_single_s, 1),
        "qps_exact_batch": round(num_queries / exact_batch_s, 1),
        "qps_two_stage_batch": round(num_queries / ts_batch_s, 1),
        "two_stage_speedup": round(exact_single_s / ts_batch_s, 1),
        "two_stage_build_s": round(ts_build_s, 3),
        "recall_at_10": round(_recall_at_10(ts_batch, exact_single), 4),
        "mean_candidates": stats["mean_candidates"],
        "fallbacks": stats["fallbacks"],
        "candidate_fraction": round(stats["mean_candidates"] / n, 4)
        if stats["mean_candidates"]
        else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2k corpus, correctness + recall only; no JSON committed",
    )
    parser.add_argument(
        "--full", action="store_true", help="add the 1M-vector tier"
    )
    parser.add_argument(
        "--spread", type=float, default=0.2, help="relative perturbation norm"
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)

    embedder = UniXcoderEmbedder()
    base = _base_vectors(embedder)

    if args.smoke:
        tier = run_scale(base, 2_000, num_queries=20, spread=args.spread)
        print(json.dumps(tier, indent=2))
        if tier["recall_at_10"] < RECALL_BAR:
            print(f"FAIL: smoke recall@10 {tier['recall_at_10']} < {RECALL_BAR}")
            return 1
        print("smoke OK")
        return 0

    scales = [(10_000, 200), (100_000, 100)]
    if args.full:
        scales.append((1_000_000, 50))

    tiers = []
    for n, num_queries in scales:
        print(f"--- n={n:,} ---", flush=True)
        tier = run_scale(base, n, num_queries=num_queries, spread=args.spread)
        tiers.append(tier)
        print(
            f"build {tier['build_s']}s | rebuild(json) {tier['rebuild_from_json_s']}s"
            f" | warm {tier['warm_start_s']}s ({tier['warm_vs_rebuild']}x)\n"
            f"QPS exact-single {tier['qps_exact_single']}, exact-batch "
            f"{tier['qps_exact_batch']}, two-stage-batch "
            f"{tier['qps_two_stage_batch']} ({tier['two_stage_speedup']}x)\n"
            f"recall@10 {tier['recall_at_10']} | candidates/query "
            f"{tier['mean_candidates']} ({tier['candidate_fraction']:.2%})",
            flush=True,
        )

    at_100k = next(t for t in tiers if t["n"] == 100_000)
    payload = {
        "benchmark": "search_scale",
        "corpus": f"{_INTENT_BASES} intents in {len(FAMILIES)} "
        "datasets.templates topics + seeded Gaussian reuse copies "
        f"(relative spread {args.spread})",
        "embedder": f"UniXcoderEmbedder(dim={embedder.dim})",
        "two_stage": "RandomHyperplaneLSH(bands=24, rows=16) + exact rerank",
        "tiers": tiers,
        "speedup_two_stage_100k": at_100k["two_stage_speedup"],
        "recall_at_10_100k": at_100k["recall_at_10"],
        "warm_vs_rebuild_100k": at_100k["warm_vs_rebuild"],
        "threshold_speedup": QPS_BAR,
        "threshold_recall": RECALL_BAR,
        "threshold_warm": WARM_BAR,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"result written to {args.out}")

    failed = False
    if at_100k["two_stage_speedup"] < QPS_BAR:
        print(f"FAIL: two-stage speedup below the {QPS_BAR}x bar")
        failed = True
    if at_100k["recall_at_10"] < RECALL_BAR:
        print(f"FAIL: recall@10 below the {RECALL_BAR} bar")
        failed = True
    if at_100k["warm_vs_rebuild"] < WARM_BAR:
        print(f"FAIL: warm start below the {WARM_BAR}x bar")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
