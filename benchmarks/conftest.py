"""Shared fixtures for the benchmark harness.

Every bench file regenerates one table or figure of the paper (see
DESIGN.md §2) and *prints the same rows/series the paper reports* through
the ``report`` fixture, which bypasses pytest's capture so the series are
always visible in ``bench_output.txt``.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_corpus


def pytest_addoption(parser):
    """``--profile`` makes profiling-aware benches dump a metrics snapshot."""
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="dump the observability registry (Prometheus text) after "
        "benches that collect one",
    )


@pytest.fixture()
def profile_dump(request, capsys):
    """Callable dumping a registry snapshot when ``--profile`` was given.

    Returns ``None`` without the flag so benches can guard with
    ``if profile_dump:`` and skip snapshot collection entirely.
    """
    if not request.config.getoption("--profile"):
        return None

    def _dump(title: str, snapshot: dict) -> None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.merge(snapshot)
        with capsys.disabled():
            print(f"\n─── {title} (metrics profile) " + "─" * 20)
            print(registry.render_text().rstrip())

    return _dump


@pytest.fixture()
def report(capsys):
    """Print experiment rows uncaptured, prefixed for greppability."""

    def _report(title: str, rows: list[str]) -> None:
        with capsys.disabled():
            print(f"\n─── {title} " + "─" * max(0, 60 - len(title)))
            for row in rows:
                print(f"  {row}")

    return _report


@pytest.fixture(scope="session")
def corpus_small():
    """A compact stratified corpus for latency-focused benches."""
    return generate_corpus(120)


@pytest.fixture(scope="session")
def corpus_eval():
    """The evaluation-scale corpus used by the figure reproductions."""
    return generate_corpus(720)
