"""Shared fixtures for the benchmark harness.

Every bench file regenerates one table or figure of the paper (see
DESIGN.md §2) and *prints the same rows/series the paper reports* through
the ``report`` fixture, which bypasses pytest's capture so the series are
always visible in ``bench_output.txt``.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_corpus


@pytest.fixture()
def report(capsys):
    """Print experiment rows uncaptured, prefixed for greppability."""

    def _report(title: str, rows: list[str]) -> None:
        with capsys.disabled():
            print(f"\n─── {title} " + "─" * max(0, 60 - len(title)))
            for row in rows:
                print(f"  {row}")

    return _report


@pytest.fixture(scope="session")
def corpus_small():
    """A compact stratified corpus for latency-focused benches."""
    return generate_corpus(120)


@pytest.fixture(scope="session")
def corpus_eval():
    """The evaluation-scale corpus used by the figure reproductions."""
    return generate_corpus(720)
