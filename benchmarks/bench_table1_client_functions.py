"""E5 — Table I: the client function surface, exercised end to end.

Conformance bench: every function of the paper's Table I exists, is
documented, and round-trips against a live server.  The timed body is a
representative interactive call (``get_Registry``).
"""

import pytest

from repro.laminar import LaminarClient

TABLE_I = [
    ("register", "Registers a new user"),
    ("login", "Logs in an existing user"),
    ("register_PE", "Registers a new PE (*new*)"),
    ("register_Workflow", "Registers a new workflow (**improved**)"),
    ("get_PE", "Retrieves a PE by name or ID"),
    ("get_Workflow", "Retrieves a workflow by name or ID"),
    ("get_PEs_By_Workflow", "Retrieves all PEs associated with a workflow"),
    ("get_Registry", "Retrieves all items in the registry"),
    ("describe", "Provides a description of a PE or workflow"),
    ("update_PE_Description", "Updates a PE's description (*new*)"),
    ("update_Workflow_Description", "Updates a workflow's description (*new*)"),
    ("remove_PE", "Removes an existing PE"),
    ("remove_Workflow", "Removes an existing workflow"),
    ("remove_All", "Removes all PEs and workflows (*new*)"),
    ("search_Registry_Literal", "Performs a literal search (**improved**)"),
    ("search_Registry_Semantic", "Performs a semantic search (**improved**)"),
    ("code_Recommendation", "Performs a code recommendation (*new*)"),
    ("run", "Executes a workflow sequentially (**improved**)"),
    ("run_multiprocess", "Executes a workflow in parallel (*new*)"),
    ("run_dynamic", "Executes a workflow using REDIS (*new*)"),
]

WF = '''
class Producer(ProducerPE):
    """Produces consecutive integers."""
    def __init__(self):
        super().__init__("Producer")
        self.n = 0
    def _process(self, inputs):
        self.n += 1
        return self.n

class Double(IterativePE):
    """Doubles each number it receives."""
    def _process(self, x):
        return x * 2

p = Producer()
d = Double("Double")
graph = WorkflowGraph()
graph.connect(p, "output", d, "input")
'''


@pytest.fixture(scope="module")
def exercised():
    """Run the complete Table I surface once; return (client, trace)."""
    client = LaminarClient()
    trace: list[str] = []

    client.register("bench_user", "pw")
    client.login("bench_user", "pw")
    trace.append("register/login ✓")

    pe = client.register_PE(
        'class Inc(IterativePE):\n    """Adds one."""\n'
        "    def _process(self, x):\n        return x + 1\n"
    )
    wf = client.register_Workflow(WF, name="bench_wf")
    trace.append("register_PE/register_Workflow ✓")

    assert client.get_PE(pe["peId"])["peName"] == "Inc"
    assert client.get_Workflow("bench_wf")["workflowName"] == "bench_wf"
    assert len(client.get_PEs_By_Workflow(wf["workflow"]["workflowId"])) == 2
    assert len(client.get_Registry()["pes"]) == 3
    assert "class Inc" in client.describe("Inc")["peCode"]
    trace.append("get_PE/get_Workflow/get_PEs_By_Workflow/get_Registry/describe ✓")

    client.update_PE_Description("Inc", "increments integers")
    client.update_Workflow_Description("bench_wf", "doubling pipeline")
    trace.append("update_*_Description ✓")

    assert client.search_Registry_Literal("doubling")["workflows"]
    assert client.search_Registry_Semantic("doubles numbers")
    assert client.code_Recommendation("x + 1", threshold=1.0) is not None
    trace.append("search_Registry_Literal/Semantic + code_Recommendation ✓")

    assert client.run("bench_wf", input=3).ok
    assert client.run_multiprocess("bench_wf", input=3, num_processes=3).ok
    assert client.run_dynamic("bench_wf", input=3).ok
    trace.append("run/run_multiprocess/run_dynamic ✓")

    client.remove_PE("Inc")
    trace.append("remove_PE ✓ (remove_Workflow/remove_All exercised last)")
    return client, trace


def test_table1_all_functions(report, exercised, benchmark):
    client, trace = exercised
    missing = [name for name, _ in TABLE_I if not callable(getattr(client, name, None))]
    rows = [f"{name:<28} {desc}" for name, desc in TABLE_I]
    rows += ["", *trace, f"functions present: {len(TABLE_I) - len(missing)}/{len(TABLE_I)}"]
    report("Table I — client functions", rows)
    assert not missing

    benchmark(client.get_Registry)

    client.remove_Workflow("bench_wf")
    client.remove_All()
