"""A5 — §II-A: mapping comparison (simple vs multi vs dynamic).

dispel4py's value proposition is that one abstract workflow runs under
any mapping.  This bench runs a CPU-bearing divisor-counting pipeline
under all three, verifying result equivalence and quantifying each
mapping's *overhead* relative to the sequential baseline, plus the
dynamic autoscaler's peak worker count — the adaptive behaviour of
Liang et al. 2022 that the Redis mapping enables.

Note on speedup: this reproduction environment exposes a single CPU
core (``nproc`` = 1), so no mapping can beat sequential wall-clock here;
what is measurable — and asserted — is that the parallel substrates add
only bounded coordination overhead.  On multicore hardware the ``multi``
mapping's static partition parallelises this workload directly (the
engine is real ``multiprocessing``; see tests/test_d4py_multi.py for the
distribution evidence).
"""

import os

import pytest

from repro.d4py import IterativePE, ProducerPE, WorkflowGraph, run_graph

N_ITEMS = 100


class Numbers(ProducerPE):
    def __init__(self, name=None):
        super().__init__(name)
        self._n = 100_000

    def _process(self, inputs):
        self._n += 7
        return self._n


class CountDivisors(IterativePE):
    """Deliberately O(n) per item to give the parallel mappings work."""

    def _process(self, n):
        return sum(1 for i in range(1, n) if n % i == 0)


def build():
    g = WorkflowGraph()
    g.connect(Numbers("Numbers"), "output", CountDivisors("CountDivisors"), "input")
    return g


@pytest.mark.parametrize(
    "mapping,options",
    [
        ("simple", {}),
        ("multi", {"num_processes": 6}),
        ("dynamic", {"min_workers": 1, "max_workers": 6}),
    ],
)
def test_mapping_throughput(report, benchmark, mapping, options):
    def run():
        return run_graph(build(), input=N_ITEMS, mapping=mapping, **options)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    outputs = result.output_for("CountDivisors")
    assert len(outputs) == N_ITEMS

    rows = [
        f"{mapping}: {N_ITEMS} items processed, options={options}",
        f"  cores available: {os.cpu_count()} "
        "(single-core host: overhead comparison, not speedup)",
    ]
    if mapping == "dynamic":
        rows.append(f"  {result.logs[-1]}")  # peak-workers line
    report(f"A5 — mapping comparison ({mapping})", rows)


def test_mapping_results_agree(report, benchmark):
    """All three mappings compute identical result multisets."""
    from collections import Counter

    reference = Counter(
        run_graph(build(), input=30, mapping="simple").output_for("CountDivisors")
    )
    for mapping, options in (
        ("multi", {"num_processes": 4}),
        ("dynamic", {"max_workers": 4}),
    ):
        outputs = Counter(
            run_graph(build(), input=30, mapping=mapping, **options).output_for(
                "CountDivisors"
            )
        )
        assert outputs == reference, f"{mapping} disagrees with simple"
    report(
        "A5 — mapping equivalence",
        ["simple ≡ multi ≡ dynamic on 30-item divisor workload ✓"],
    )
    benchmark.pedantic(
        lambda: run_graph(build(), input=10, mapping="simple"), rounds=3, iterations=1
    )
