"""A2 — §IV-F ablation: resource caching vs re-transmission.

Laminar 1.0 serialised the resources directory into *every* request;
Laminar 2.0 uploads each file once (content-addressed) and the server
caches it.  The bench runs the same file-consuming workflow repeatedly
and reports bytes uploaded per run with and without the cache (the
no-cache condition clears the cache between runs, reproducing 1.0's
behaviour).
"""

from pathlib import Path

from repro.laminar import LaminarClient
from repro.laminar.server.app import LaminarServer

CSV_WF = """
class CsvSum(ProducerPE):
    def _process(self, inputs):
        with open(RESOURCES["payload.bin"], "rb") as fh:
            return len(fh.read())

g = WorkflowGraph()
g.add(CsvSum("CsvSum"))
"""

PAYLOAD_SIZE = 256 * 1024
RUNS = 5


def test_resource_cache_transfer_bytes(report, tmp_path, benchmark):
    payload = tmp_path / "payload.bin"
    payload.write_bytes(b"\x42" * PAYLOAD_SIZE)

    # With cache (Laminar 2.0).
    server = LaminarServer()
    client = LaminarClient(server=server)
    client.register_Workflow(CSV_WF, name="csv_wf")
    cached_per_run = []
    for _ in range(RUNS):
        before = server.engine.cache.stats.bytes_uploaded
        summary = client.run("csv_wf", input=1, resources=[payload])
        assert summary.ok
        cached_per_run.append(server.engine.cache.stats.bytes_uploaded - before)

    # Without cache (Laminar 1.0 behaviour): cache cleared between runs.
    server2 = LaminarServer()
    client2 = LaminarClient(server=server2)
    client2.register_Workflow(CSV_WF, name="csv_wf")
    uncached_per_run = []
    for _ in range(RUNS):
        server2.engine.cache.clear()
        before = server2.engine.cache.stats.bytes_uploaded
        summary = client2.run("csv_wf", input=1, resources=[payload])
        assert summary.ok
        uncached_per_run.append(server2.engine.cache.stats.bytes_uploaded - before)

    total_cached = sum(cached_per_run)
    total_uncached = sum(uncached_per_run)
    report(
        "A2 — resource cache: bytes uploaded per run",
        [
            f"payload: {PAYLOAD_SIZE // 1024} KiB, {RUNS} runs",
            f"no cache (L1.0): {uncached_per_run} -> total {total_uncached // 1024} KiB",
            f"cache    (L2.0): {cached_per_run} -> total {total_cached // 1024} KiB",
            f"transfer reduction: {total_uncached / max(total_cached, 1):.1f}x",
        ],
    )
    assert cached_per_run[0] == PAYLOAD_SIZE  # first run must upload
    assert all(b == 0 for b in cached_per_run[1:])  # later runs must not
    assert all(b == PAYLOAD_SIZE for b in uncached_per_run)

    benchmark(lambda: client.run("csv_wf", input=1, resources=[payload]))
