"""E9 — Figs 7/8/9: the three search flows on the paper's own registry.

Seeds the registry with the PEs visible in the paper's screenshots
(IsPrime, NumberProducer, PrintPrime, AnomalyDetectionPE, AlertingPE,
NormalizeDataPE, AggregateDataPE, WordsSplit...) and replays:

* Fig 7 — literal search for 'words';
* Fig 8 — semantic search for 'a pe that is able to detect anomalies'
  (AnomalyDetectionPE must rank first);
* Fig 9 — code recommendation for 'random.randint(1, 1000)'
  (NumberProducer for PEs; isprime_wf for workflows).

Timed body: the semantic search call.
"""

import pytest

from repro.laminar import LaminarClient

PAPER_PES = {
    "IsPrime": '''
class IsPrime(IterativePE):
    """Checks whether a given number is prime and returns the number if it is."""
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num
''',
    "NumberProducer": '''
class NumberProducer(ProducerPE):
    """The number producer class."""
    def _process(self, inputs):
        return random.randint(1, 1000)
''',
    "PrintPrime": '''
class PrintPrime(ConsumerPE):
    """Prints prime numbers."""
    def _process(self, num):
        print(f"the num {num} is prime")
''',
    "AnomalyDetectionPE": '''
class AnomalyDetectionPE(IterativePE):
    """Anomaly detection PE."""
    def _process(self, record):
        if abs(record["value"] - self.mean) > self.threshold:
            return record
''',
    "AlertingPE": '''
class AlertingPE(ConsumerPE):
    """AlertingPE class."""
    def _process(self, alert):
        self.log(f"alerting: {alert}")
''',
    "NormalizeDataPE": '''
class NormalizeDataPE(IterativePE):
    """This pe normalizes the temperature of a record."""
    def _process(self, record):
        record["temperature"] = (record["temperature"] - 32) / 1.8
        return record
''',
    "AggregateDataPE": '''
class AggregateDataPE(IterativePE):
    """AggregateDataPE - Aggregate data from a sequence of records."""
    def _process(self, records):
        return sum(records) / len(records)
''',
    "SplitWords": '''
class SplitWords(IterativePE):
    """Splits text lines into words for counting."""
    def _process(self, line):
        for word in line.split():
            self.write("output", word)
''',
}

ISPRIME_WF = (
    "import random\n"
    + PAPER_PES["NumberProducer"]
    + PAPER_PES["IsPrime"]
    + PAPER_PES["PrintPrime"]
    + """
producer = NumberProducer("NumberProducer")
prime = IsPrime("IsPrime")
printer = PrintPrime("PrintPrime")
graph = WorkflowGraph()
graph.connect(producer, "output", prime, "input")
graph.connect(prime, "output", printer, "input")
"""
)


@pytest.fixture(scope="module")
def client():
    c = LaminarClient()
    c.register_Workflow(ISPRIME_WF, name="isprime_wf")
    for name, code in PAPER_PES.items():
        if name in ("NumberProducer", "IsPrime", "PrintPrime"):
            continue  # registered via the workflow already
        c.register_PE(code)
    return c


def test_fig7_literal_search(report, client, benchmark):
    hits = client.search_Registry_Literal("words")
    rows = [f"PE  {h['peId']:>3}  {h['peName']}: {h['description'][:55]}" for h in hits["pes"]]
    report("Fig 7 — literal search for 'words'", rows)
    assert any(h["peName"] == "SplitWords" for h in hits["pes"])
    benchmark(lambda: client.search_Registry_Literal("words"))


def test_fig8_semantic_search(report, client, benchmark):
    query = "a pe that is able to detect anomalies"
    results = client.search_Registry_Semantic(query)
    rows = [
        f"{h['peId']:>3}  {h['peName']:<22} {h['description'][:40]:<42} "
        f"{h['cosine_similarity']:.6f}"
        for h in results
    ]
    report(f"Fig 8 — semantic search: {query!r}", rows)
    assert results[0]["peName"] == "AnomalyDetectionPE"
    sims = [h["cosine_similarity"] for h in results]
    assert sims == sorted(sims, reverse=True)
    benchmark(lambda: client.search_Registry_Semantic(query))


def test_fig9_code_recommendation(report, client, benchmark):
    snippet = "random.randint(1, 1000)"
    pe_hits = client.code_Recommendation(snippet)
    wf_hits = client.code_Recommendation(snippet, kind="workflow")
    rows = [
        f"PE  {h['peId']:>3}  {h['peName']:<16} score {h['score']}"
        for h in pe_hits
    ] + [
        f"WF  {h['workflowId']:>3}  {h['workflowName']:<16} "
        f"occurrences {h['occurrences']}"
        for h in wf_hits
    ]
    report(f"Fig 9 — code recommendation: {snippet!r}", rows)
    assert pe_hits[0]["peName"] == "NumberProducer"
    assert pe_hits[0]["score"] >= 6.0  # the paper's threshold, Fig 9 shows 8.0
    assert wf_hits[0]["workflowName"] == "isprime_wf"
    benchmark(lambda: client.code_Recommendation(snippet))
