"""A9 — asynchronous job subsystem: sync run vs submit+poll throughput.

The synchronous ``run`` action holds the caller for the whole enactment;
the job subsystem trades that for a bounded queue and a worker pool, so
N concurrent runs cost the caller only N quick submits.  This bench
measures what the subsystem is for:

* submit latency — how fast the caller gets its ``jobId`` back;
* queue wait — how long jobs sit QUEUED before a worker picks them up;
* completed jobs/second at pool sizes 1, 2 and 4 for the same batch.
"""

import time

from repro.laminar.server.app import LaminarServer
from repro.laminar.transport.inprocess import InProcessTransport

WORK_WF = """
import time

class Worker(ProducerPE):
    def _process(self, inputs):
        time.sleep(0.02)
        return 1

graph = WorkflowGraph()
graph.add(Worker("W"))
"""

N_JOBS = 12
POOL_SIZES = (1, 2, 4)


def _run_batch(workers: int) -> dict:
    """Submit N_JOBS against a ``workers``-sized pool; measure the batch."""
    server = LaminarServer(job_workers=workers, job_queue_capacity=N_JOBS * 2)
    try:
        server.handle(
            {"action": "register_workflow", "code": WORK_WF, "name": "work"}
        )
        submit_latencies = []
        job_ids = []
        batch_start = time.perf_counter()
        for _ in range(N_JOBS):
            started = time.perf_counter()
            body = server.handle({"action": "submit_job", "id": "work"})["body"]
            submit_latencies.append(time.perf_counter() - started)
            job_ids.append(body["jobId"])
        for job_id in job_ids:
            server.job_manager.wait(job_id, timeout=60)
        elapsed = time.perf_counter() - batch_start
        stats = server.handle({"action": "stats"})["body"]["jobs"]
        assert stats["finished"] == {"SUCCEEDED": N_JOBS}
        return {
            "workers": workers,
            "submit_ms": 1e3 * sum(submit_latencies) / len(submit_latencies),
            "wait_ms": stats["mean_wait_ms"],
            "run_ms": stats["mean_run_ms"],
            "jobs_per_s": N_JOBS / elapsed,
            "elapsed_s": elapsed,
            # Full observability snapshot (requests, jobs, mapping runs) —
            # dumped when the bench runs under ``--profile``.
            "snapshot": server.obs_registry.snapshot(),
        }
    finally:
        server.close()


def test_jobs_async_vs_sync_throughput(report, benchmark, profile_dump):
    # Baseline: the same batch through the blocking ``run`` action (the
    # transport drains the stream, so each request holds the caller).
    server = LaminarServer()
    transport = InProcessTransport(server)
    try:
        server.handle(
            {"action": "register_workflow", "code": WORK_WF, "name": "work"}
        )
        sync_start = time.perf_counter()
        for _ in range(N_JOBS):
            response = transport.request({"action": "run", "id": "work", "input": 1})
            assert response["body"]["summary"]["status"] == "success"
        sync_elapsed = time.perf_counter() - sync_start
    finally:
        server.close()

    results = [_run_batch(workers) for workers in POOL_SIZES]

    rows = [
        f"workload: {N_JOBS} jobs x ~20 ms enactment",
        f"sync run loop: {sync_elapsed:6.2f} s total "
        f"({N_JOBS / sync_elapsed:5.1f} jobs/s, caller blocked throughout)",
    ]
    for r in results:
        rows.append(
            f"async pool={r['workers']}: submit {r['submit_ms']:5.2f} ms  "
            f"queue wait {r['wait_ms']:6.1f} ms  run {r['run_ms']:5.1f} ms  "
            f"{r['jobs_per_s']:5.1f} jobs/s ({r['elapsed_s']:.2f} s total)"
        )
    speedup = results[-1]["jobs_per_s"] / results[0]["jobs_per_s"]
    rows.append(f"pool 1 → 4 completed-jobs/s scaling: {speedup:.1f}x")
    report("A9 — job subsystem: sync vs async submit+poll", rows)
    if profile_dump:
        profile_dump(
            f"A9 pool={results[-1]['workers']}", results[-1]["snapshot"]
        )

    # Submits return immediately: far faster than one synchronous run.
    assert results[-1]["submit_ms"] / 1e3 < sync_elapsed / N_JOBS
    # More workers drain the same batch faster.
    assert results[-1]["elapsed_s"] < results[0]["elapsed_s"]

    def submit_and_wait():
        srv = LaminarServer(job_workers=2)
        try:
            srv.handle(
                {"action": "register_workflow", "code": WORK_WF, "name": "work"}
            )
            body = srv.handle({"action": "submit_job", "id": "work"})["body"]
            srv.job_manager.wait(body["jobId"], timeout=60)
        finally:
            srv.close()

    benchmark.pedantic(submit_and_wait, rounds=3, iterations=1)
