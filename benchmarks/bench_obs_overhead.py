"""A10 — observability overhead: instrumented vs disabled simple mapping.

The acceptance bar for the ``repro.obs`` subsystem is that the
always-on instrumentation (per-run metric recording — O(instances), not
O(items)) costs under 5% wall time on a simple-mapping enactment.
Tracing is opt-in (``trace=True``) and therefore excluded: the measured
configuration is what every ordinary run pays.

Methodology: interleave instrumented and ``repro.obs.disabled()`` runs
of the same workflow so clock drift and cache effects hit both arms
equally, then compare medians.  The result is committed to
``BENCH_obs_overhead.json`` at the repo root.
"""

import json
import random
import statistics
import time
from pathlib import Path

from repro.d4py import IterativePE, ProducerPE, WorkflowGraph
from repro.d4py.mappings import run_graph
from repro.obs import MetricsRegistry, disabled


class _RandomProducer(ProducerPE):
    def __init__(self, name=None, seed=7):
        super().__init__(name)
        self._rng = random.Random(seed)

    def _process(self, inputs):
        return self._rng.randint(1, 1000)


class _IsPrime(IterativePE):
    def _process(self, num):
        if num > 1 and all(num % i != 0 for i in range(2, int(num**0.5) + 1)):
            return num
        return None


def _isprime_graph() -> WorkflowGraph:
    graph = WorkflowGraph()
    producer = _RandomProducer("NumberProducer")
    graph.connect(producer, "output", _IsPrime("IsPrime"), "input")
    return graph


#: Items per enactment — large enough that one run takes several ms, so
#: the per-run recording cost is resolved well below the 5% bar.
ITEMS = 400
ROUNDS = 21

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"


def _time_run(**options) -> float:
    graph = _isprime_graph()
    started = time.perf_counter()
    run_graph(graph, input=ITEMS, mapping="simple", **options)
    return time.perf_counter() - started


def test_obs_overhead_simple_mapping(report):
    # Warm both paths before measuring.
    _time_run(registry=MetricsRegistry())
    with disabled():
        _time_run()

    instrumented, baseline = [], []
    for _ in range(ROUNDS):
        instrumented.append(_time_run(registry=MetricsRegistry()))
        with disabled():
            baseline.append(_time_run())

    base = statistics.median(baseline)
    inst = statistics.median(instrumented)
    overhead_pct = 1e2 * (inst - base) / base

    payload = {
        "benchmark": "obs_overhead_simple_mapping",
        "workflow": "isprime_wf",
        "items_per_run": ITEMS,
        "rounds": ROUNDS,
        "baseline_median_ms": round(1e3 * base, 4),
        "instrumented_median_ms": round(1e3 * inst, 4),
        "overhead_pct": round(overhead_pct, 3),
        "threshold_pct": 5.0,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        "A10 — observability overhead (simple mapping)",
        [
            f"workload: isprime_wf x {ITEMS} items, median of {ROUNDS} rounds",
            f"disabled:     {1e3 * base:8.3f} ms/run",
            f"instrumented: {1e3 * inst:8.3f} ms/run",
            f"overhead:     {overhead_pct:+7.2f}%  (bar: < 5%)",
            f"result committed to {RESULT_PATH.name}",
        ],
    )
    assert overhead_pct < 5.0, (
        f"instrumentation overhead {overhead_pct:.2f}% exceeds the 5% bar"
    )
