#!/usr/bin/env python
"""Dataflow hot-path benchmark: per-item dispatch vs micro-batching vs fusion.

Measures items/sec of the dynamic mapping on a 3-stage streaming pipeline
(``Source -> Scale -> Offset -> Tag``) under three configurations:

* ``per_item`` — ``batch_max_items=1, fuse=False``: one broker round-trip
  per item per edge (the pre-batching engine).
* ``batched`` — fixed 32-item task frames, no fusion.
* ``batched_fused`` — adaptive frame sizing plus operator fusion: the
  whole linear chain runs inline in the claiming worker.

Every arm is checked to produce the identical leaf output multiset before
its timing counts, so the speedup cannot come from dropped or duplicated
items.  The acceptance bar (ISSUE 6) is ``batched_fused`` at >= 5x the
``per_item`` items/sec; the full run commits its result to
``BENCH_dataflow_batching.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_dataflow_batching.py          # full
    PYTHONPATH=src python benchmarks/bench_dataflow_batching.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

try:
    from repro.d4py import IterativePE, ProducerPE, WorkflowGraph
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.d4py import IterativePE, ProducerPE, WorkflowGraph

from repro.d4py.mappings.dynamic import run_dynamic
from repro.obs import disabled

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_dataflow_batching.json"
)
THRESHOLD = 5.0


class _Source(ProducerPE):
    def __init__(self, name=None):
        super().__init__(name)
        self._n = 0

    def _process(self, inputs):
        self._n += 1
        return self._n

    def postprocess(self):
        self._n = 0  # instances are reused across rounds via deepcopy templates


class _Scale(IterativePE):
    def _process(self, value):
        return value * 3


class _Offset(IterativePE):
    def _process(self, value):
        return value + 7


class _Tag(IterativePE):
    def _process(self, value):
        return ("item", value)


def _pipeline() -> WorkflowGraph:
    graph = WorkflowGraph()
    source = _Source("Source")
    scale = _Scale("Scale")
    offset = _Offset("Offset")
    tag = _Tag("Tag")
    graph.connect(source, "output", scale, "input")
    graph.connect(scale, "output", offset, "input")
    graph.connect(offset, "output", tag, "input")
    return graph


ARMS = {
    "per_item": {"batch_max_items": 1, "fuse": False},
    "batched": {"batch_max_items": 32, "fuse": False},
    "batched_fused": {"batch_max_items": "adaptive", "fuse": True},
}


def _run_arm(items: int, **options):
    """One enactment; returns (wall_seconds, sorted leaf outputs)."""
    graph = _pipeline()
    started = time.perf_counter()
    result = run_dynamic(
        graph,
        input=items,
        min_workers=4,
        max_workers=4,
        autoscale=False,
        instances_per_pe=4,
        **options,
    )
    wall = time.perf_counter() - started
    return wall, sorted(result.output_for("Tag"))


def run_bench(items: int, rounds: int) -> dict:
    expected = sorted(("item", i * 3 + 7) for i in range(1, items + 1))
    arms: dict[str, dict] = {}
    with disabled():  # measure the engine, not the metrics registry
        for name, options in ARMS.items():
            _run_arm(min(items, 100), **options)  # warm-up
            walls = []
            for _ in range(rounds):
                wall, outputs = _run_arm(items, **options)
                if outputs != expected:
                    raise AssertionError(
                        f"arm {name!r} produced wrong outputs "
                        f"({len(outputs)} items, expected {len(expected)})"
                    )
                walls.append(wall)
            wall = statistics.median(walls)
            arms[name] = {
                "wall_ms": round(1e3 * wall, 3),
                "items_per_sec": round(items / wall, 1),
            }

    base = arms["per_item"]["items_per_sec"]
    return {
        "benchmark": "dataflow_batching",
        "workflow": "Source -> Scale -> Offset -> Tag (3-stage streaming)",
        "mapping": "dynamic (4 workers, no autoscale, 4 instances/PE)",
        "items": items,
        "rounds": rounds,
        "arms": arms,
        "speedup_batched": round(arms["batched"]["items_per_sec"] / base, 2),
        "speedup_batched_fused": round(
            arms["batched_fused"]["items_per_sec"] / base, 2
        ),
        "threshold_speedup": THRESHOLD,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness + direction only; no JSON committed",
    )
    parser.add_argument(
        "--items", type=int, default=None, help="items per enactment"
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="timed rounds per arm"
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)

    items = args.items or (300 if args.smoke else 6000)
    rounds = args.rounds or (1 if args.smoke else 3)
    payload = run_bench(items, rounds)

    for name, arm in payload["arms"].items():
        print(
            f"{name:>14}: {arm['items_per_sec']:>10.1f} items/s "
            f"({arm['wall_ms']:.1f} ms)"
        )
    print(
        f"speedup: batched {payload['speedup_batched']}x, "
        f"batched+fused {payload['speedup_batched_fused']}x "
        f"(bar: >= {THRESHOLD}x full run)"
    )

    if args.smoke:
        # CI smoke: outputs already validated per arm; batching must at
        # least not be slower than per-item dispatch on a tiny workload.
        if payload["speedup_batched_fused"] < 1.0:
            print("FAIL: batched+fused slower than per-item on smoke workload")
            return 1
        print("smoke OK")
        return 0

    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"result written to {args.out}")
    if payload["speedup_batched_fused"] < THRESHOLD:
        print(f"FAIL: speedup below the {THRESHOLD}x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
