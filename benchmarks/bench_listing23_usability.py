"""E7 — Listings 2 vs 3: usability of dynamic workflow execution.

Paper: Laminar 1.0 needed ``client.run(graph, input=5,
process=Process.DYNAMIC, args=edict({'num':5, 'iter':5, 'simple':False,
'redis_ip':'localhost', 'redis_port':'6379'}))`` (Listing 2); Laminar
2.0 needs ``client.run_dynamic(graph, input=5)`` (Listing 3).  This
bench executes the *same* dynamic workflow through both spellings —
the Listing 2 form still works for compatibility — and quantifies the
interface shrinkage.  Timed body: the Listing 3 call.
"""

from repro.d4py import IterativePE, ProducerPE, WorkflowGraph
from repro.laminar import LaminarClient, Process


class RangeProducer(ProducerPE):
    def __init__(self, name=None):
        super().__init__(name)
        self._next = 0

    def _process(self, inputs):
        value = self._next
        self._next += 1
        return value


class Double(IterativePE):
    def _process(self, value):
        return value * 2


def pipeline(*pes):
    graph = WorkflowGraph()
    for up, down in zip(pes, pes[1:]):
        graph.connect(up, "output", down, "input")
    return graph

LISTING_2 = (
    "client.run(graph, input=5, process=Process.DYNAMIC, "
    "args=edict({'num':5, 'iter':5, 'simple':False, "
    "'redis_ip':'localhost', 'redis_port':'6379'}))"
)
LISTING_3 = "client.run_dynamic(graph, input=5)"


def test_listing23_usability(report, benchmark):
    client = LaminarClient()

    def build():
        return pipeline(RangeProducer("src"), Double("dbl"))

    # Listing 2 spelling (Laminar 1.0): explicit process + broker knobs.
    summary_l1 = client.run(
        build(),
        input=5,
        process=Process.DYNAMIC,
        min_workers=1,
        max_workers=5,
        instances_per_pe=5,
    )
    # Listing 3 spelling (Laminar 2.0): everything managed automatically.
    summary_l2 = client.run_dynamic(build(), input=5)

    assert summary_l1.ok and summary_l2.ok
    assert sorted(summary_l1.outputs["dbl.output"]) == sorted(
        summary_l2.outputs["dbl.output"]
    )

    report(
        "Listings 2 vs 3 — dynamic run usability",
        [
            f"Laminar 1.0: {LISTING_2}",
            f"Laminar 2.0: {LISTING_3}",
            f"call length : {len(LISTING_2)} chars -> {len(LISTING_3)} chars "
            f"({len(LISTING_3) / len(LISTING_2):.0%})",
            f"parameters  : 8 (incl. 5 broker knobs) -> 2",
            "results identical under both spellings ✓",
        ],
    )

    benchmark(lambda: client.run_dynamic(build(), input=5))
