"""A3 — §VI-A ablation: Laminar's simplified SPT search vs full Aroma.

The paper replaced Aroma's prune/rerank/cluster stages with a plain
similarity ranking "for efficiency, simplicity, and scalability".  This
ablation quantifies the trade on the CodeSearchNet-PE corpus: retrieval
quality (precision@5 against family ground truth) and per-query latency
for both variants.
"""

import time

import numpy as np
import pytest

from repro.aroma import AromaRecommender, LaminarSPTSearch
from repro.eval.dropper import drop_suffix

N_QUERIES = 40


@pytest.fixture(scope="module")
def ablation_corpus(corpus_eval):
    # 240 items -> 6 members per family, so precision@5 can reach 1.0
    # (the 3-member corpus_small caps it at 0.4 and blurs the comparison).
    return corpus_eval[:240]


@pytest.fixture(scope="module")
def engines(ablation_corpus):
    laminar = LaminarSPTSearch()
    for item in ablation_corpus:
        laminar.add(item.uid, item.pe_source, metadata={"family": item.family})
    laminar.build()
    full = AromaRecommender(search_width=30).fit(
        [(item.uid, item.pe_source, {"family": item.family}) for item in ablation_corpus]
    )
    return laminar, full


def _precision_at_5(hits_families, query_family) -> float:
    if not hits_families:
        return 0.0
    return sum(1 for f in hits_families[:5] if f == query_family) / min(
        5, len(hits_families)
    )


def test_aroma_variants_quality_and_latency(report, engines, ablation_corpus, benchmark):
    laminar, full = engines
    family_of = {item.uid: item.family for item in ablation_corpus}
    queries = ablation_corpus[:N_QUERIES]

    stats = {"laminar": {"p5": [], "t": []}, "full": {"p5": [], "t": []}}
    for item in queries:
        query = drop_suffix(item.function_source, 0.5)

        start = time.perf_counter()
        hits = laminar.search(query, threshold=1.0)
        stats["laminar"]["t"].append(time.perf_counter() - start)
        stats["laminar"]["p5"].append(
            _precision_at_5(
                [family_of[h.snippet_id] for h in hits if h.snippet_id != item.uid],
                item.family,
            )
        )

        start = time.perf_counter()
        recs = full.recommend(query, top_n=5)
        stats["full"]["t"].append(time.perf_counter() - start)
        # A recommendation is one *cluster*; flatten members in rank order
        # so both variants are judged as ranked PE lists.
        flat = [
            member
            for rec in recs
            for member in rec.cluster_member_ids
            if member != item.uid
        ]
        stats["full"]["p5"].append(
            _precision_at_5([family_of[m] for m in flat], item.family)
        )

    rows = []
    for key, label in (("laminar", "cosine-SPT (shipped)"), ("full", "full Aroma")):
        p5 = float(np.mean(stats[key]["p5"]))
        ms = float(np.mean(stats[key]["t"])) * 1e3
        rows.append(f"{label:<22} precision@5 {p5:.3f}   latency {ms:7.2f} ms/query")
    ratio = np.mean(stats["full"]["t"]) / max(np.mean(stats["laminar"]["t"]), 1e-9)
    rows.append(
        f"full pipeline costs {ratio:.1f}x the latency of the simplified search "
        "— the §VI-A trade-off"
    )
    report("A3 — simplified SPT search vs full Aroma pipeline", rows)

    # The simplification must be substantially faster, and not catastrophically
    # worse: both halves of the paper's justification.
    assert np.mean(stats["laminar"]["t"]) < np.mean(stats["full"]["t"])
    assert np.mean(stats["laminar"]["p5"]) > 0.3

    query = drop_suffix(ablation_corpus[0].function_source, 0.5)
    benchmark(lambda: laminar.search(query, threshold=1.0))
