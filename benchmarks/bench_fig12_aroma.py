"""E2 — Fig 12: Aroma precision–recall at 0/50/75/90 % code dropped.

Paper: Aroma keeps high precision with full snippets, still performs
well at 50 % and 75 % dropped, max F1 ≈ 0.63.  The printed block is the
figure's four curves; the timed body is one structural search against
the built index.
"""

import pytest

from repro.aroma.index import AromaIndex
from repro.eval import run_code_to_code_eval
from repro.eval.dropper import DROP_LEVELS, drop_suffix


@pytest.fixture(scope="module")
def aroma_result(corpus_eval):
    return run_code_to_code_eval("aroma", corpus=corpus_eval, max_queries=160)


def test_fig12_aroma_pr_curves(report, aroma_result, benchmark, corpus_eval):
    rows = []
    for drop in DROP_LEVELS:
        curve = aroma_result.curves[drop]
        rows.append(
            f"drop {int(drop * 100):>2}%:  "
            + "  ".join(
                f"k={k}:P{p:.2f}/R{r:.2f}"
                for k, p, r, _ in curve.rows()
                if k in (1, 3, 5, 10, 20)
            )
            + f"   best F1 {curve.best_f1():.3f}"
        )
    rows.append(f"max F1 over all levels = {aroma_result.best_f1():.3f} (paper: 0.63)")
    report("Fig 12 — Aroma structural search PR vs code dropped", rows)

    # Shape gates from the paper's discussion.
    assert aroma_result.best_f1() > 0.45
    assert aroma_result.curves[0.5].best_f1() > 0.3, "Aroma must survive 50% drop"
    assert (
        aroma_result.curves[0.0].best_f1() >= aroma_result.curves[0.9].best_f1()
    )

    index = AromaIndex()
    for item in corpus_eval[:240]:
        index.add(item.uid, item.pe_source)
    index.build()
    query = drop_suffix(corpus_eval[0].function_source, 0.5)
    hits = benchmark(lambda: index.search(query, top_n=5))
    assert hits
