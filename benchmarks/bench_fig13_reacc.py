"""E3 — Fig 13: ReACC-py retriever PR at 0/50/75/90 % code dropped.

Paper: ReACC declines steeply as code is omitted; best F1 ≈ 0.24, far
below Aroma's 0.63.  This bench prints the four curves and asserts the
cross-model ordering of the paper's central claim.
"""

import pytest

from repro.eval import run_code_to_code_eval
from repro.eval.dropper import DROP_LEVELS
from repro.models.reacc import ReACCRetriever


@pytest.fixture(scope="module")
def reacc_result(corpus_eval):
    return run_code_to_code_eval("reacc", corpus=corpus_eval, max_queries=160)


@pytest.fixture(scope="module")
def aroma_result(corpus_eval):
    return run_code_to_code_eval("aroma", corpus=corpus_eval, max_queries=160)


def test_fig13_reacc_pr_curves(report, reacc_result, aroma_result, benchmark, corpus_eval):
    rows = []
    for drop in DROP_LEVELS:
        curve = reacc_result.curves[drop]
        rows.append(
            f"drop {int(drop * 100):>2}%:  "
            + "  ".join(
                f"k={k}:P{p:.2f}/R{r:.2f}"
                for k, p, r, _ in curve.rows()
                if k in (1, 3, 5, 10, 20)
            )
            + f"   best F1 {curve.best_f1():.3f}"
        )
    rows.append(f"max F1 over all levels = {reacc_result.best_f1():.3f} (paper: 0.24)")
    rows.append(
        f"Aroma vs ReACC: {aroma_result.best_f1():.3f} vs "
        f"{reacc_result.best_f1():.3f} (paper: 0.63 vs 0.24)"
    )
    report("Fig 13 — ReACC dense retriever PR vs code dropped", rows)

    # The paper's claims, as assertions:
    # 1. Aroma outperforms ReACC overall.
    assert aroma_result.best_f1() > reacc_result.best_f1()
    # 2. ReACC declines more steeply with omission than Aroma.
    for drop in (0.5, 0.75, 0.9):
        assert (
            aroma_result.curves[drop].best_f1()
            > reacc_result.curves[drop].best_f1()
        ), f"Aroma must beat ReACC at {drop:.0%} dropped"
    # 3. At 90% both struggle (absolute quality collapses).
    assert reacc_result.curves[0.9].best_f1() < reacc_result.curves[0.0].best_f1()

    retriever = ReACCRetriever()
    docs = retriever.encode([item.pe_source for item in corpus_eval[:240]])
    query = corpus_eval[0].function_source

    def search():
        sims = retriever.encode(query) @ docs.T
        return sims.argmax()

    benchmark(search)
