"""A6 — feature-family ablation for the Aroma adaptation.

The original Aroma paper motivates each of its feature families (token,
parent, sibling, variable-usage) and the abstraction of variable names.
This ablation re-runs the 50 %-dropped code-to-code retrieval with each
family switched off in turn, quantifying its contribution on the
synthetic CodeSearchNet-PE corpus — evidence that the Python adaptation
preserves the original design's rationale.
"""

import numpy as np
import pytest

from repro.aroma.features import FeatureConfig, extract_features
from repro.aroma.spt import python_to_spt
from repro.eval.dropper import drop_suffix
from repro.eval.metrics import average_pr_curve

N_QUERIES = 80

CONFIGS = {
    "all families (shipped)": FeatureConfig(),
    "no token features": FeatureConfig(token=False),
    "no parent features": FeatureConfig(parent=False),
    "no sibling features": FeatureConfig(sibling=False),
    "no variable-usage": FeatureConfig(variable_usage=False),
    "concrete variable names": FeatureConfig(abstract_variables=False),
    "1 ancestor (vs 3)": FeatureConfig(n_ancestors=1),
}


def _best_f1(corpus, config) -> float:
    features = [
        frozenset(extract_features(python_to_spt(item.pe_source), config))
        for item in corpus
    ]
    relevant: dict[str, set] = {}
    for item in corpus:
        relevant.setdefault(item.family, set()).add(item.uid)

    def rankings():
        for qi, item in enumerate(corpus[:N_QUERIES]):
            query = frozenset(
                extract_features(
                    python_to_spt(drop_suffix(item.function_source, 0.5)), config
                )
            )
            scores = np.fromiter(
                (len(query & fs) for fs in features), dtype=np.float64
            )
            order = np.argsort(-scores, kind="stable")
            ranked = [corpus[i].uid for i in order if corpus[i].uid != item.uid]
            yield ranked, relevant[item.family] - {item.uid}

    return average_pr_curve(rankings(), max_k=20).best_f1()


@pytest.fixture(scope="module")
def ablation_scores(corpus_eval):
    corpus = corpus_eval[:288]  # 6 members per family
    return {name: _best_f1(corpus, config) for name, config in CONFIGS.items()}


def test_feature_family_ablation(report, ablation_scores, corpus_eval, benchmark):
    full = ablation_scores["all families (shipped)"]
    rows = []
    for name, score in ablation_scores.items():
        delta = score - full
        rows.append(f"{name:<26} best F1 {score:.3f}  ({delta:+.3f} vs full)")
    report("A6 — Aroma feature-family ablation (50% dropped queries)", rows)

    # Gates on what generalises: token and sibling features are the
    # workhorses (dropping either must hurt), and no single family may be
    # so harmful that removing it beats the full configuration by a wide
    # margin (the shipped default stays near the Pareto front).
    assert full > ablation_scores["no token features"]
    assert full > ablation_scores["no sibling features"]
    assert full >= max(ablation_scores.values()) - 0.08

    config = FeatureConfig()
    snippet = corpus_eval[0].pe_source
    benchmark(lambda: extract_features(python_to_spt(snippet), config))
