"""A7 — §IV-D: registry scalability under growing content.

The paper motivates the schema rework with "stability and scalability
... efficiently store larger datasets" (String → CLOB columns, added
indexes).  This bench loads the registry at increasing sizes and
measures the operations a user feels: PE registration (with metadata
generation), literal search (index-backed LIKE), semantic search and
code recommendation — confirming search stays interactive as the
registry grows and registration cost is flat (no O(n) rebuild per
insert).
"""

import time

import pytest

from repro.laminar.server.app import LaminarServer

SIZES = (50, 200, 400)


@pytest.fixture(scope="module")
def loaded_servers(corpus_eval):
    servers = {}
    for size in SIZES:
        server = LaminarServer()
        guest = server.auth.resolve(None)
        t0 = time.perf_counter()
        for item in corpus_eval[:size]:
            server.registry.register_pe(
                guest, item.pe_source, name=item.pe_name, description=item.description
            )
        load_seconds = time.perf_counter() - t0
        servers[size] = (server, load_seconds)
    return servers


def test_registry_scalability(report, loaded_servers, benchmark):
    rows = [
        f"{'PEs':>5}  {'load/PE ms':>10}  {'literal ms':>10}  "
        f"{'semantic ms':>11}  {'recommend ms':>12}"
    ]
    measured = {}
    for size, (server, load_seconds) in loaded_servers.items():
        def timed(fn, repeats=5):
            t0 = time.perf_counter()
            for _ in range(repeats):
                fn()
            return (time.perf_counter() - t0) / repeats * 1e3

        literal = timed(lambda: server.registry.literal_search("average"))
        semantic = timed(
            lambda: server.registry.semantic_search("compute a moving average")
        )
        recommend = timed(
            lambda: server.registry.code_recommendation(
                "def f(values):\n    total = 0\n    for v in values:\n        total += v",
                threshold=1.0,
            )
        )
        measured[size] = (load_seconds / size * 1e3, literal, semantic, recommend)
        rows.append(
            f"{size:>5}  {measured[size][0]:>10.2f}  {literal:>10.2f}  "
            f"{semantic:>11.2f}  {recommend:>12.2f}"
        )
    report("A7 — registry scalability (§IV-D)", rows)

    # Registration cost must be ~flat (no per-insert O(n) rebuild): the
    # largest registry's per-PE load must stay within 3x of the smallest's.
    per_pe = [measured[size][0] for size in SIZES]
    assert per_pe[-1] < per_pe[0] * 3
    # Search stays interactive (sub-second) even at the largest size.
    assert measured[SIZES[-1]][2] < 1000.0
    assert measured[SIZES[-1]][3] < 1000.0

    server, _ = loaded_servers[SIZES[-1]]
    benchmark(lambda: server.registry.semantic_search("split text into chunks"))
