"""A4 — §IX future work: MinHash-LSH acceleration of structural search.

The paper's conclusion plans LSH (after Senatus) to scale structural
code search.  This ablation compares the exact overlap search against
the LSH index on recall@5 (vs the exact top-5 as ground truth) and on
candidate-set size — the quantity LSH shrinks from |corpus| to a bucket
collision set.
"""

import time

import numpy as np
import pytest

from repro.aroma import AromaIndex, MinHashLSHIndex
from repro.aroma.features import feature_set
from repro.aroma.spt import python_to_spt

N_QUERIES = 40


@pytest.fixture(scope="module")
def indexes(corpus_eval):
    corpus = corpus_eval[:480]
    exact = AromaIndex()
    lsh = MinHashLSHIndex(num_perm=64, bands=16, rows=4)
    features = {}
    for item in corpus:
        exact.add(item.uid, item.pe_source)
        fs = feature_set(python_to_spt(item.pe_source))
        features[item.uid] = fs
        lsh.add(item.uid, fs)
    exact.build()
    return corpus, exact, lsh, features


def test_lsh_vs_exact(report, indexes, benchmark):
    corpus, exact, lsh, features = indexes
    recalls, candidate_sizes, t_exact, t_lsh = [], [], [], []

    for item in corpus[:N_QUERIES]:
        start = time.perf_counter()
        exact_hits = [h.snippet_id for h in exact.search(item.pe_source, top_n=5)]
        t_exact.append(time.perf_counter() - start)

        start = time.perf_counter()
        lsh_hits = [i for i, _ in lsh.query(features[item.uid], top_n=5)]
        t_lsh.append(time.perf_counter() - start)

        candidate_sizes.append(len(lsh.candidates(features[item.uid])))
        overlap = len(set(exact_hits) & set(lsh_hits))
        recalls.append(overlap / len(exact_hits) if exact_hits else 1.0)

    recall = float(np.mean(recalls))
    mean_candidates = float(np.mean(candidate_sizes))
    report(
        "A4 — LSH-accelerated structural search (paper future work)",
        [
            f"corpus {len(corpus)} PEs, {N_QUERIES} queries, 64 permutations "
            f"(16 bands x 4 rows)",
            f"recall@5 vs exact top-5: {recall:.3f}",
            f"candidates touched: {mean_candidates:.0f} of {len(corpus)} "
            f"({mean_candidates / len(corpus):.0%})",
            f"latency: exact {np.mean(t_exact) * 1e3:6.2f} ms "
            f"vs lsh {np.mean(t_lsh) * 1e3:6.2f} ms per query",
        ],
    )
    assert recall >= 0.5  # LSH must retain most of the exact top-5
    assert mean_candidates < len(corpus)  # and prune the candidate space

    query_fs = features[corpus[0].uid]
    benchmark(lambda: lsh.query(query_fs, top_n=5))
