"""E1 — Fig 11: precision–recall of text-to-code semantic search.

Paper: PR curve with best F1 ≈ 0.61 at a balanced operating point.
Here: the same protocol over the synthetic CodeSearchNet-PE corpus —
CodeT5-substitute descriptions, UniXcoder-substitute embeddings, cosine
ranking, PR swept over retrieval depth k.  The printed series is the
figure; the timed body is one semantic query against the prepared index
(the interactive operation a Laminar user experiences).
"""

import numpy as np
import pytest

from repro.eval import run_text_to_code_eval
from repro.models.describer import CodeT5Describer
from repro.models.embedder import UniXcoderEmbedder


@pytest.fixture(scope="module")
def prepared(corpus_eval):
    corpus = corpus_eval[:320]
    describer = CodeT5Describer()
    descriptions = [describer.describe(item.pe_source) for item in corpus]
    embedder = UniXcoderEmbedder().fit(descriptions)
    matrix = embedder.encode(descriptions)
    return embedder, matrix


def test_fig11_pr_curve(report, corpus_eval, benchmark):
    result = run_text_to_code_eval(corpus=corpus_eval[:320])
    rows = [f"{'k':>3}  {'precision':>9}  {'recall':>7}  {'F1':>6}"]
    for k, p, r, f1 in result.curve.rows():
        if k in (1, 2, 3, 5, 8, 10, 15, 20):
            rows.append(f"{k:>3}  {p:9.3f}  {r:7.3f}  {f1:6.3f}")
    rows.append(
        f"best F1 = {result.best_f1:.3f} at k={result.curve.best_k()} "
        f"(paper: 0.61) over {result.n_queries} queries / "
        f"{result.n_corpus} PEs"
    )
    report("Fig 11 — text-to-code precision-recall", rows)

    # Sanity gates: the search is effective and balanced like the paper's.
    assert result.best_f1 > 0.5
    assert 1 < result.curve.best_k() <= 20

    # Timed: the full evaluation pipeline at reduced scale.
    benchmark.pedantic(
        lambda: run_text_to_code_eval(corpus=corpus_eval[:40]),
        rounds=3,
        iterations=1,
    )


def test_fig11_query_latency(prepared, benchmark):
    """Interactive latency of one semantic query (index already built)."""
    embedder, matrix = prepared

    def query():
        vec = embedder.encode("compute the moving average over a window")[0]
        sims = matrix @ vec
        return np.argsort(-sims)[:5]

    top = benchmark(query)
    assert len(top) == 5
