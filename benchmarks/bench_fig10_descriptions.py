"""E4 — Fig 10: description quality by generation context.

Paper: Laminar 1.0 generated descriptions from the ``_process`` method
only (Fig 10a, poor); Laminar 2.0 uses the full class (Fig 10b, much
better).  Reproduced as mean token-F1 of generated vs reference
descriptions under both contexts, plus example outputs mirroring the
figure's side-by-side.
"""

from repro.eval import run_description_eval
from repro.models.describer import CodeT5Describer, DescriptionContext


def test_fig10_description_contexts(report, corpus_small, benchmark):
    scores = run_description_eval(corpus=corpus_small)

    describer = CodeT5Describer()
    example = corpus_small[0]
    full = describer.describe(example.pe_source, DescriptionContext.FULL_CLASS)
    proc = describer.describe(example.pe_source, DescriptionContext.PROCESS_ONLY)

    report(
        "Fig 10 — description generation context",
        [
            f"mean token-F1, _process-only (Fig 10a / Laminar 1.0): "
            f"{scores['process_only']:.3f}",
            f"mean token-F1, full class    (Fig 10b / Laminar 2.0): "
            f"{scores['full_class']:.3f}",
            f"improvement factor: {scores['full_class'] / max(scores['process_only'], 1e-9):.1f}x",
            "",
            f"example PE: {example.pe_name}",
            f"  reference   : {example.description}",
            f"  process-only: {proc}",
            f"  full class  : {full}",
        ],
    )

    # The paper's claim: full-class context wins, decisively.
    assert scores["full_class"] > scores["process_only"] * 1.5

    benchmark(lambda: describer.describe(example.pe_source))
