"""E8 — Fig 5: the CLI register + parallel-run session.

Replays the paper's screenshots: ``register_workflow isprime_wf.py``
(Fig 5a — PE and workflow IDs echoed) and ``run <id> -i 10 --multi -v``
(Fig 5b — partition plus per-rank "Processed N iterations" lines).
Timed body: one CLI command dispatch end to end.
"""

import io

import pytest

from repro.laminar import LaminarClient
from repro.laminar.client.cli import LaminarCLI

ISPRIME_WF = '''
import random

class NumberProducer(ProducerPE):
    def _process(self, inputs):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    """Checks whether a given number is prime and returns the number."""
    def _process(self, num):
        if num > 1 and all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def _process(self, num):
        print(f"the num {num} is prime")

producer = NumberProducer("NumberProducer")
isprime = IsPrime("IsPrime")
printer = PrintPrime("PrintPrime")
graph = WorkflowGraph()
graph.connect(producer, "output", isprime, "input")
graph.connect(isprime, "output", printer, "input")
'''


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    wf_file = tmp_path_factory.mktemp("cli") / "isprime_wf.py"
    wf_file.write_text(ISPRIME_WF)
    out = io.StringIO()
    shell = LaminarCLI(LaminarClient(), stdout=out)
    return shell, out, wf_file


def run_cmd(shell, out, line: str) -> str:
    out.truncate(0)
    out.seek(0)
    shell.onecmd(line)
    return out.getvalue()


def test_fig5_cli_session(report, session, benchmark):
    shell, out, wf_file = session

    register_text = run_cmd(shell, out, f"register_workflow {wf_file}")
    wf_id = shell.client.get_Workflow("isprime_wf")["workflowId"]
    run_text = run_cmd(shell, out, f"run {wf_id} -i 10 --multi -v")

    rows = ["--- (laminar) register_workflow isprime_wf.py ---"]
    rows += [f"  {line}" for line in register_text.strip().splitlines()]
    rows += [f"--- (laminar) run {wf_id} -i 10 --multi -v ---"]
    rows += [f"  {line}" for line in run_text.strip().splitlines()[:8]]
    report("Fig 5 — CLI register + parallel run", rows)

    # Fig 5a: PEs and workflow echoed with IDs.
    for name in ("NumberProducer", "IsPrime", "PrintPrime"):
        assert name in register_text
    assert "Workflow (ID" in register_text
    # Fig 5b: partition + per-rank iteration accounting.
    assert "Partition" in run_text
    assert "Processed" in run_text and "iterations." in run_text

    benchmark(lambda: run_cmd(shell, out, "list"))
