"""A8 — contribution check: better descriptions boost search accuracy.

The paper lists "improved automated description generation for PEs and
workflows, **boosting search accuracy**" as a contribution — i.e. the
Fig 10 improvement (full-class context) should propagate into the Fig 11
search metric.  This ablation runs the text-to-code evaluation twice,
with descriptions generated under the Laminar 1.0 context
(``_process`` only) and the 2.0 context (full class), holding everything
else fixed.
"""

import pytest

from repro.eval import run_text_to_code_eval
from repro.models.describer import DescriptionContext


@pytest.fixture(scope="module")
def both_contexts(corpus_eval):
    corpus = corpus_eval[:288]
    return {
        "process_only": run_text_to_code_eval(
            corpus=corpus, context=DescriptionContext.PROCESS_ONLY
        ),
        "full_class": run_text_to_code_eval(
            corpus=corpus, context=DescriptionContext.FULL_CLASS
        ),
    }


def test_description_context_boosts_search(report, both_contexts, benchmark, corpus_eval):
    old = both_contexts["process_only"]
    new = both_contexts["full_class"]
    report(
        "A8 — description context -> search accuracy (Fig 10 ⇒ Fig 11)",
        [
            f"_process-only descriptions (L1.0): best F1 {old.best_f1:.3f} "
            f"at k={old.curve.best_k()}",
            f"full-class descriptions   (L2.0): best F1 {new.best_f1:.3f} "
            f"at k={new.curve.best_k()}",
            f"search-accuracy gain: {new.best_f1 - old.best_f1:+.3f} "
            f"({new.best_f1 / max(old.best_f1, 1e-9):.2f}x)",
        ],
    )
    # The paper's contribution claim, as an assertion.
    assert new.best_f1 > old.best_f1

    benchmark.pedantic(
        lambda: run_text_to_code_eval(
            corpus=corpus_eval[:48], context=DescriptionContext.FULL_CLASS
        ),
        rounds=3,
        iterations=1,
    )
