"""Cluster mode: hash ring, routing, broker partitioning, failover.

Covers the consistent-hash ring's core guarantees (balance,
determinism, minimal movement), the action→key→shard routing
convention, per-shard broker namespacing, the server-side 421
misdirection gate, and — through a real 3-shard TCP cluster — the
sharded client's keyed routing, scatter-gather merges, job execution
and shard-kill failover.
"""

from __future__ import annotations

import pytest

from repro.d4py.redisim import RedisSim
from repro.laminar.client.client import ClientError, LaminarClient
from repro.laminar.cluster import (
    ClusterConfig,
    ClusterSupervisor,
    HashRing,
    ShardedClient,
    ShardInfo,
    ShardRouter,
    qualify_job_id,
    routing_key,
    split_job_id,
)
from repro.laminar.transport.tcp import RetryPolicy

# -- workflow sources ---------------------------------------------------------

QUICK_WF = """
class Producer(ProducerPE):
    def _process(self, inputs):
        return 10
class AddOne(IterativePE):
    def _process(self, value):
        return value + 1
graph = WorkflowGraph()
graph.connect(Producer("P"), "output", AddOne("A"), "input")
"""

TRIPLER_PE = """
class Tripler(IterativePE):
    '''Multiplies each incoming value by three.'''
    def _process(self, value):
        return value * 3
"""


# -- hash ring ----------------------------------------------------------------


class TestHashRing:
    def test_deterministic_ownership(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # construction order is irrelevant
        keys = [f"workflow:wf-{i}" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]
        # and stable across repeated queries
        assert a.owner("workflow:wf-7") == a.owner("workflow:wf-7")

    def test_distribution_balance(self):
        ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
        keys = [f"key-{i}" for i in range(4000)]
        counts = ring.distribution(keys)
        assert set(counts) == {"s0", "s1", "s2", "s3"}
        # With 64 vnodes each shard should hold 25% ± 12 points.
        for count in counts.values():
            assert 0.13 * len(keys) <= count <= 0.37 * len(keys)

    def test_minimal_movement_on_join(self):
        keys = [f"key-{i}" for i in range(3000)]
        before = HashRing(["s0", "s1", "s2"])
        owners_before = {k: before.owner(k) for k in keys}
        after = HashRing(["s0", "s1", "s2", "s3"])
        moved = sum(1 for k in keys if after.owner(k) != owners_before[k])
        # Consistent hashing moves ~1/(n+1) = 25% of keys; a modulo hash
        # would move ~75%. Allow generous slack around the expectation.
        assert moved / len(keys) < 0.40
        # every moved key went *to* the new shard, never between old ones
        for k in keys:
            if after.owner(k) != owners_before[k]:
                assert after.owner(k) == "s3"

    def test_minimal_movement_on_leave(self):
        keys = [f"key-{i}" for i in range(3000)]
        before = HashRing(["s0", "s1", "s2", "s3"])
        owners_before = {k: before.owner(k) for k in keys}
        after = HashRing(["s0", "s1", "s2", "s3"])
        after.remove("s3")
        for k in keys:
            if owners_before[k] != "s3":
                # keys not owned by the departed shard never move
                assert after.owner(k) == owners_before[k]

    def test_owners_distinct_and_ordered(self):
        ring = HashRing(["s0", "s1", "s2"])
        owners = ring.owners("workflow:wf-1", 2)
        assert len(owners) == 2
        assert len(set(owners)) == 2
        assert owners[0] == ring.owner("workflow:wf-1")
        # asking for more replicas than nodes returns every node once
        assert sorted(ring.owners("k", 9)) == ["s0", "s1", "s2"]

    def test_add_remove_idempotent(self):
        ring = HashRing(["s0"])
        ring.add("s1")
        ring.add("s1")
        ring.remove("s2")  # absent: no-op
        assert sorted(ring.nodes) == ["s0", "s1"]

    def test_empty_ring_raises(self):
        ring = HashRing([])
        with pytest.raises(LookupError):
            ring.owner("key")


# -- routing ------------------------------------------------------------------


class TestRouting:
    def test_name_keys_route(self):
        assert routing_key("register_workflow", {"name": "wf-1"}) == "workflow:wf-1"
        assert routing_key("get_pe", {"id": "Tripler"}) == "pe:Tripler"
        assert (
            routing_key("describe", {"id": "wf-1", "kind": "workflow"})
            == "workflow:wf-1"
        )

    def test_numeric_and_unkeyed_do_not_route(self):
        # per-shard autoincrement ids are not globally routable
        assert routing_key("get_workflow", {"id": 7}) is None
        assert routing_key("get_workflow", {"id": "7"}) is None
        assert routing_key("get_registry", {}) is None
        assert routing_key("search_semantic", {"query": "primes"}) is None

    def test_router_replication_capped_by_shards(self):
        config = ClusterConfig(
            shards=[ShardInfo("s0", port=1)], replication=3
        )
        router = ShardRouter(config)
        assert router.replication == 1
        assert router.owners("workflow:x") == ["s0"]

    def test_misdirected_hint(self):
        config = ClusterConfig(
            shards=[ShardInfo(f"s{i}", port=i + 1) for i in range(3)],
            replication=1,
        )
        router = ShardRouter(config)
        owner = router.owner("workflow:wf-1")
        other = next(s for s in config.shard_ids if s != owner)
        hint = router.misdirected(other, "get_workflow", {"id": "wf-1"})
        assert hint is not None and hint["owner"] == owner
        assert router.misdirected(owner, "get_workflow", {"id": "wf-1"}) is None
        # unkeyed actions are never misdirected
        assert router.misdirected(other, "get_registry", {}) is None

    def test_job_id_qualification(self):
        assert qualify_job_id("s1", 42) == "s1:42"
        assert split_job_id("s1:42") == ("s1", 42)
        assert split_job_id(7) == (None, 7)
        assert split_job_id("7") == (None, 7)


# -- cluster config -----------------------------------------------------------


class TestClusterConfig:
    def test_round_trip(self, tmp_path):
        config = ClusterConfig(
            shards=[ShardInfo(f"s{i}", port=9000 + i) for i in range(3)],
            vnodes=32,
            replication=2,
        )
        path = tmp_path / "cluster.json"
        config.save(path)
        loaded = ClusterConfig.load(path)
        assert loaded.shard_ids == config.shard_ids
        assert loaded.vnodes == 32 and loaded.replication == 2

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(shards=[ShardInfo("s0", port=1), ShardInfo("s0", port=2)])

    def test_bad_file_is_loud(self, tmp_path):
        path = tmp_path / "cluster.json"
        path.write_text("not json")
        with pytest.raises(ValueError):
            ClusterConfig.load(path)


# -- broker partitioning ------------------------------------------------------


class TestNamespacedBroker:
    def test_namespaces_are_isolated(self):
        parent = RedisSim()
        a = parent.namespaced("shard:s0:")
        b = parent.namespaced("shard:s1:")
        a.rpush("queue", "x")
        a.rpush("queue", "y")
        b.rpush("queue", "z")
        assert a.llen("queue") == 2
        assert b.llen("queue") == 1
        assert b.lpop("queue") == "z"
        assert a.lpop("queue") == "x"

    def test_flushall_scoped_to_namespace(self):
        parent = RedisSim()
        a = parent.namespaced("shard:s0:")
        b = parent.namespaced("shard:s1:")
        a.rpush("q", 1)
        b.rpush("q", 2)
        a.flushall()
        assert a.llen("q") == 0
        assert b.llen("q") == 1

    def test_stats_scoped_to_namespace(self):
        parent = RedisSim()
        a = parent.namespaced("shard:s0:")
        parent.namespaced("shard:s1:").rpush("q", 1)
        a.rpush("q", 1)
        a.rpush("q", 2)
        assert a.stats()["queued_items"] == 2
        assert parent.stats()["queued_items"] == 3

    def test_composes_with_inner_namespace(self):
        # dynamic-mapping runs prefix their own d4pyrun:<run>: namespace
        # inside the shard partition; both layers must compose.
        parent = RedisSim()
        shard = parent.namespaced("shard:s0:")
        run = shard.namespaced("d4pyrun:1:")
        run.rpush("tasks", "t")
        assert run.llen("tasks") == 1
        assert shard.stats()["queued_items"] == 1
        assert parent.stats()["lists"] == 1
        # the composed key carries both prefixes
        assert parent.llen("shard:s0:d4pyrun:1:tasks") == 1


# -- live cluster -------------------------------------------------------------


@pytest.fixture(scope="class")
def cluster():
    sup = ClusterSupervisor(
        shards=3, replication=2, health_interval=0.0, job_workers=2
    )
    config = sup.start()
    client = ShardedClient(
        config, retry_policy=RetryPolicy(max_retries=1, backoff=0.02)
    )
    yield sup, client
    client.close()
    sup.stop()


class TestClusterEndToEnd:
    def test_round_robin_registration_spreads_shards(self, cluster):
        sup, client = cluster
        body = client.register_PE(TRIPLER_PE)
        assert body["peName"] == "Tripler"
        assert len(body["shards"]) == 2  # primary + one replica
        for i in range(8):
            client.register_Workflow(QUICK_WF, name=f"wf-{i}")
        listing = client.get_Registry()
        names = [wf["workflowName"] for wf in listing["workflows"]]
        assert {f"wf-{i}" for i in range(8)} <= set(names)
        # replicas are deduped: each name appears once despite living
        # on two shards (the per-shard counts still show the raw copies)
        assert len(names) == len(set(names))
        # with 8 workflows replicated twice over 3 shards, every shard
        # must hold something
        assert all(
            counts["workflows"] > 0 for counts in listing["shards"].values()
        )
        assert sum(
            counts["workflows"] for counts in listing["shards"].values()
        ) > len(names)

    def test_keyed_read_routes_to_owner(self, cluster):
        sup, client = cluster
        wf = client.get_Workflow("wf-1")
        assert wf["workflowName"] == "wf-1"
        pes = client.get_PEs_By_Workflow("wf-1")
        assert {pe["peName"] for pe in pes} == {"Producer", "AddOne"}

    def test_misdirected_request_answered_421(self, cluster):
        sup, client = cluster
        owners = client.router.owners("workflow:wf-1")
        wrong = next(s for s in sup.config.shard_ids if s not in owners)
        info = sup.config.shard(wrong)
        direct = LaminarClient.connect(info.host, info.port)
        try:
            with pytest.raises(ClientError) as excinfo:
                direct.get_Workflow("wf-1")
            assert excinfo.value.status == 421
            assert owners[0] in str(excinfo.value)
        finally:
            direct.close()

    def test_scatter_search_merges_all_shards(self, cluster):
        sup, client = cluster
        hits = client.search_Registry_Literal("wf-", kind="workflow")
        names = [wf["workflowName"] for wf in hits["workflows"]]
        assert {f"wf-{i}" for i in range(8)} <= set(names)
        assert len(names) == len(set(names))  # replicas deduped
        semantic = client.search_Registry_Semantic("add one", kind="pe", top_k=3)
        assert 0 < len(semantic) <= 3
        assert all("shard" in hit for hit in semantic)
        sem_names = [hit["peName"] for hit in semantic]
        assert len(sem_names) == len(set(sem_names))  # replicas deduped

    def test_job_end_to_end(self, cluster):
        sup, client = cluster
        job = client.submit_Job("wf-2")
        shard, local = split_job_id(job["jobId"])
        assert shard in sup.config.shard_ids
        result = client.wait_For_Job(job["jobId"], timeout=30)
        assert result["state"] == "SUCCEEDED"
        assert result["result"]["outputs"] == {"A.output": [11]}
        listed = client.list_Jobs()
        assert job["jobId"] in {j["jobId"] for j in listed}

    def test_cluster_status_reports_all_healthy(self, cluster):
        sup, client = cluster
        status = client.cluster_Status()
        assert status["healthy"] == status["total"] == 3
        assert status["replication"] == 2

    def test_metrics_labelled_per_shard(self, cluster):
        sup, client = cluster
        text = client.get_Metrics()["text"]
        for shard_id in sup.config.shard_ids:
            assert f'laminar_cluster_shard_up{{shard="{shard_id}"}}' in text

    def test_stats_scatter_per_shard(self, cluster):
        sup, client = cluster
        merged = client.stats()
        assert set(merged["shards"]) == set(sup.config.shard_ids)
        assert all(
            "total_requests" in body for body in merged["shards"].values()
        )

    def test_export_import_round_trip(self, cluster):
        sup, client = cluster
        dump = client.export_Registry()
        names = {wf["workflowName"] for wf in dump["workflows"]}
        assert {f"wf-{i}" for i in range(8)} <= names
        # replicas deduped and ids reassigned globally unique
        pe_ids = [pe["peId"] for pe in dump["pes"]]
        assert len(pe_ids) == len(set(pe_ids))
        # every workflow's links resolve inside the merged dump
        for wf in dump["workflows"]:
            assert set(wf["peIds"]) <= set(pe_ids)

        with ClusterSupervisor(shards=2, health_interval=0.0) as other:
            target = ShardedClient(other.config)
            try:
                counts = target.import_Registry(dump)
                assert counts["workflows"] == len(dump["workflows"])
                imported = target.get_Registry()
                assert {
                    wf["workflowName"] for wf in imported["workflows"]
                } >= names
                # keyed reads route by name in the new topology
                wf = target.get_Workflow("wf-3")
                assert wf["workflowName"] == "wf-3"
            finally:
                target.close()


class TestClusterFailover:
    """Kill a shard: idempotent keyed verbs fail over without errors."""

    def test_kill_and_failover(self):
        sup = ClusterSupervisor(shards=3, replication=2, health_interval=0.0)
        config = sup.start()
        client = ShardedClient(
            config, retry_policy=RetryPolicy(max_retries=1, backoff=0.02)
        )
        try:
            for i in range(6):
                client.register_Workflow(QUICK_WF, name=f"fo-{i}")
            owners = client.router.owners("workflow:fo-3")
            primary, replica = owners[0], owners[1]

            sup.kill(primary)

            # idempotent keyed reads fail over to the replica silently
            wf = client.get_Workflow("fo-3")
            assert wf["workflowName"] == "fo-3"
            pes = client.get_PEs_By_Workflow("fo-3")
            assert len(pes) == 2

            # submits re-route to a surviving owner and still run
            job = client.submit_Job("fo-3")
            assert split_job_id(job["jobId"])[0] == replica
            result = client.wait_For_Job(job["jobId"], timeout=30)
            assert result["state"] == "SUCCEEDED"

            # scatter verbs degrade instead of failing
            listing = client.get_Registry()
            assert primary in listing["degraded"]

            status = client.cluster_Status()
            assert status["healthy"] == 2
            down = next(
                s for s in status["shards"] if s["shardId"] == primary
            )
            assert down["healthy"] is False

            # recovery: restart (possibly on a new port) and re-probe
            sup.restart(primary)
            assert sup.check_health()[primary] is True
            status = client.cluster_Status()
            assert status["healthy"] == 3

            # the restarted in-memory shard is empty; keyed reads still
            # answer from the replica (404 failover)
            wf = client.get_Workflow("fo-3")
            assert wf["workflowName"] == "fo-3"
        finally:
            client.close()
            sup.stop()

    def test_supervisor_health_gauges(self):
        sup = ClusterSupervisor(shards=2, replication=1, health_interval=0.0)
        sup.start()
        try:
            assert sup.check_health() == {"s0": True, "s1": True}
            sup.kill("s1")
            assert sup.check_health() == {"s0": True, "s1": False}
            text = sup.obs_registry.render_text()
            assert 'laminar_cluster_shard_up{shard="s1"} 0' in text
            assert "laminar_cluster_shards_healthy 1" in text
        finally:
            sup.stop()


class TestShardedDynamicMapping:
    def test_dynamic_jobs_use_shard_broker_partition(self):
        sup = ClusterSupervisor(shards=2, replication=1, health_interval=0.0)
        config = sup.start()
        client = ShardedClient(config)
        try:
            client.register_Workflow(QUICK_WF, name="dyn-wf")
            from repro.laminar.client.process import Process

            job = client.submit_Job("dyn-wf", process=Process.DYNAMIC)
            result = client.wait_For_Job(job["jobId"], timeout=30)
            assert result["state"] == "SUCCEEDED"
            assert result["result"]["outputs"] == {"A.output": [11]}
            # every shard's engine enacts dynamic runs inside its own
            # partition of the shared broker
            shard = split_job_id(job["jobId"])[0]
            engine_broker = sup.handles[shard].server.engine.broker
            assert engine_broker.prefix == f"shard:{shard}:"
            assert engine_broker.parent is sup.broker
        finally:
            client.close()
            sup.stop()
