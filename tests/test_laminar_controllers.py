"""Tests for the controller layer: routing, parameter validation, statuses."""

import pytest

from repro.laminar.server.app import LaminarServer

PE_CODE = (
    "class Echo(IterativePE):\n"
    '    """Echoes its input."""\n'
    "    def _process(self, x):\n"
    "        return x\n"
)


@pytest.fixture()
def server():
    s = LaminarServer()
    yield s
    s.close()


def call(server, action, **params):
    return server.handle({"action": action, **params})


def test_ping(server):
    response = call(server, "ping")
    assert response["status"] == 200
    assert response["body"]["user"] == "guest"


def test_unknown_action_404(server):
    assert call(server, "warp_drive")["status"] == 404


def test_non_dict_payload_400(server):
    assert server.handle("just a string")["status"] == 400
    assert server.handle(None)["status"] == 400


def test_missing_required_param_400(server):
    response = call(server, "register_pe")  # no code
    assert response["status"] == 400
    assert "code" in response["body"]["error"]


def test_schema_action_lists_table2(server):
    body = call(server, "schema")["body"]
    tables = {t["table"] for t in body["tables"]}
    assert "ProcessingElement" in tables


def test_actions_listing_is_complete(server):
    actions = server.router.actions()
    for expected in (
        "register_user", "login", "register_pe", "register_workflow",
        "get_pe", "get_workflow", "get_pes_by_workflow", "get_registry",
        "describe", "update_pe_description", "update_workflow_description",
        "remove_pe", "remove_workflow", "remove_all", "search_literal",
        "search_semantic", "code_recommendation", "run", "check_resources",
        "upload_resource", "visualize", "ping", "schema",
    ):
        assert expected in actions


def test_describe_requires_valid_kind(server):
    call(server, "register_pe", code=PE_CODE)
    response = call(server, "describe", kind="gadget", id="Echo")
    assert response["status"] == 400


def test_invalid_token_401(server):
    response = call(server, "ping", token="forged")
    assert response["status"] == 401


def test_internal_errors_become_500(server):
    # break the registry under the router to exercise the 500 path
    server.registry.pes = None
    response = call(server, "get_registry")
    assert response["status"] == 500
    assert "error" in response["body"]


def test_run_options_forwarded(server):
    call(
        server,
        "register_workflow",
        code=PE_CODE + "\ne = Echo('E')\ngraph = WorkflowGraph()\ngraph.add(e)\n",
        name="echo_wf",
    )
    response = call(
        server,
        "run",
        id="echo_wf",
        input=[{"input": "hi"}],
        mapping="simple",
    )
    assert response["status"] == 200


def test_code_recommendation_params(server):
    call(server, "register_pe", code=PE_CODE)
    response = call(
        server, "code_recommendation", snippet="x + 1", topK=2, threshold=0.0
    )
    assert response["status"] == 200
    assert isinstance(response["body"], list)


def test_search_semantic_topk_coercion(server):
    call(server, "register_pe", code=PE_CODE)
    response = call(server, "search_semantic", query="echo", topK="3")
    assert response["status"] == 200
