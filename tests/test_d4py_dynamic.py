"""Tests for the dynamic (work-queue, autoscaling) mapping."""

import pytest

from repro.d4py import WorkflowGraph, run_graph
from repro.d4py.redisim import RedisSim

from tests.helpers import (
    AddOne,
    Double,
    KeyedCount,
    RangeProducer,
    pipeline,
)


def test_dynamic_matches_simple_results():
    def build():
        return pipeline(RangeProducer("src"), Double("dbl"), AddOne("inc"))

    sequential = run_graph(build(), input=25, mapping="simple")
    dynamic = run_graph(build(), input=25, mapping="dynamic", max_workers=4)
    assert sorted(dynamic.output_for("inc")) == sorted(sequential.output_for("inc"))


def test_dynamic_single_worker_no_autoscale():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    result = run_graph(
        graph, input=10, mapping="dynamic", min_workers=1, autoscale=False
    )
    assert sorted(result.output_for("dbl")) == [i * 2 for i in range(10)]
    assert "peak workers 1" in result.logs[-1]


def test_dynamic_autoscales_under_load():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    result = run_graph(
        graph,
        input=300,
        mapping="dynamic",
        min_workers=1,
        max_workers=6,
        autoscale=True,
    )
    assert len(result.output_for("dbl")) == 300
    peak_line = result.logs[-1]
    peak = int(peak_line.split("peak workers ")[1].split()[0])
    assert peak >= 1


def test_dynamic_group_by_state_is_correct():
    g = WorkflowGraph()
    src = RangeProducer("src")

    class Tag(Double):
        def _process(self, value):
            return (value % 3, value)

    tag = Tag("tag")
    count = KeyedCount("count")
    g.connect(src, "output", tag, "input")
    g.connect(tag, "output", count, "input")
    result = run_graph(
        g, input=30, mapping="dynamic", max_workers=4, instances_per_pe=5
    )
    best = {}
    for key, n in result.output_for("count"):
        best[key] = max(best.get(key, 0), n)
    assert best == {0: 10, 1: 10, 2: 10}


def test_dynamic_task_error_propagates():
    class Boom(Double):
        def _process(self, value):
            raise ValueError("dynamite")

    graph = pipeline(RangeProducer("src"), Boom("boom"))
    with pytest.raises(RuntimeError, match="dynamic worker failures"):
        run_graph(graph, input=3, mapping="dynamic")


def test_dynamic_shared_broker_runs_are_isolated():
    broker = RedisSim()
    graph1 = pipeline(RangeProducer("src"), Double("dbl"))
    graph2 = pipeline(RangeProducer("src"), Double("dbl"))
    r1 = run_graph(graph1, input=5, mapping="dynamic", broker=broker)
    r2 = run_graph(graph2, input=7, mapping="dynamic", broker=broker)
    assert len(r1.output_for("dbl")) == 5
    assert len(r2.output_for("dbl")) == 7


def test_dynamic_iterations_accounted():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    result = run_graph(graph, input=12, mapping="dynamic", instances_per_pe=3)
    src_total = sum(v for k, v in result.iterations.items() if k.startswith("src"))
    dbl_total = sum(v for k, v in result.iterations.items() if k.startswith("dbl"))
    assert src_total == 12
    assert dbl_total == 12


def test_dynamic_timings_reported():
    import time as _t

    class Slow(Double):
        def _process(self, value):
            _t.sleep(0.005)
            return value

    graph = pipeline(RangeProducer("src"), Slow("slow"))
    result = run_graph(graph, input=8, mapping="dynamic", max_workers=2)
    slow_time = sum(v for k, v in result.timings.items() if k.startswith("slow"))
    assert slow_time >= 0.03


def test_dynamic_autoscaler_retires_idle_workers():
    """After a burst drains, the pool shrinks back toward min_workers."""
    import time as _t

    from repro.d4py.mappings.dynamic import _DynamicEngine
    from repro.d4py.redisim import RedisSim

    class Slowish(Double):
        def _process(self, value):
            _t.sleep(0.002)
            return value

    graph = pipeline(RangeProducer("src"), Slowish("slow"))
    # Per-item dispatch: batching/fusion would collapse the burst into a
    # handful of frames and the queue would never get deep enough to
    # trigger the scale-up this test is about.
    engine = _DynamicEngine(
        graph,
        RedisSim(),
        instances_per_pe=4,
        min_workers=1,
        max_workers=6,
        autoscale=True,
        batch_max_items=1,
        fuse=False,
    )
    result = engine.run(200)
    assert engine.peak_workers > 1, "burst should have scaled the pool up"
    # After the drain loop the pool target returns to the floor.
    assert engine.target_workers <= engine.peak_workers
    assert len(result.output_for("slow")) == 200


def test_dynamic_claims_tasks_in_fifo_order():
    """Regression for the queue-order bug: the engine used brpop (tail pop)
    against rpush (tail push), turning the work queue into a LIFO stack.

    One producer invocation emits 0..7 in order, queueing eight per-item
    frames for the sink.  With one worker and one instance per PE, FIFO
    claim order means the sink records exactly 0..7; under the pre-fix
    LIFO pairing the newest frame is always claimed first, so the order
    comes out reversed.  (The values are bound to the queued frames, not
    to producer state, so claim order is what the sink observes.)
    """
    from repro.d4py import IterativePE, ProducerPE
    from repro.d4py.mappings.dynamic import _DynamicEngine

    class Burst(ProducerPE):
        def _process(self, inputs):
            for i in range(8):
                self.write("output", i)
            return None

    class Recorder(IterativePE):
        seen: list = []  # class attribute: shared across deepcopied instances

        def _process(self, value):
            Recorder.seen.append(value)
            return value

    Recorder.seen = []
    graph = pipeline(Burst("src"), Recorder("rec"))
    engine = _DynamicEngine(
        graph,
        RedisSim(),
        instances_per_pe=1,
        min_workers=1,
        max_workers=1,
        autoscale=False,
        batch_max_items=1,
        fuse=False,
    )
    engine.run(1)
    assert Recorder.seen == list(range(8))


def test_dynamic_instance_creation_not_globally_serialised():
    """Two *distinct* instances must be able to warm up concurrently.

    The pre-fix engine held the global instances_lock across deepcopy +
    preprocess, so a slow preprocess serialised the whole pool.  Both
    preprocess calls meet at a barrier: if creation were still under one
    global lock, the first would hold it while parked on the barrier and
    the second could never arrive, so the barrier would break.
    """
    import threading

    from repro.d4py.mappings.dynamic import _DynamicEngine

    class Meet(Double):
        barrier = threading.Barrier(2)  # class attribute: survives deepcopy

        def preprocess(self):
            Meet.barrier.wait(timeout=5.0)

    Meet.barrier = threading.Barrier(2)
    graph = pipeline(RangeProducer("src"), Meet("meet"))
    engine = _DynamicEngine(
        graph,
        RedisSim(),
        instances_per_pe=2,
        min_workers=1,
        max_workers=1,
        autoscale=False,
    )
    entries: list = []
    errors: list = []

    def create(idx):
        try:
            entries.append(engine.instance("meet", idx))
        except Exception as exc:  # BrokenBarrierError under the old locking
            errors.append(exc)

    threads = [threading.Thread(target=create, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert not errors, f"concurrent instance creation deadlocked: {errors}"
    assert len(entries) == 2
    assert entries[0][0] is not entries[1][0]  # two distinct PE copies


def test_dynamic_repeated_runs_leave_shared_broker_clean():
    """Enactments on a long-lived broker must not accumulate ghost keys."""
    broker = RedisSim()
    baseline = broker.stats()
    for _ in range(3):
        graph = pipeline(RangeProducer("src"), Double("dbl"))
        result = run_graph(
            graph, input=20, mapping="dynamic", broker=broker, max_workers=2
        )
        assert len(result.output_for("dbl")) == 20
        assert broker.stats() == baseline


def test_dynamic_leaked_worker_reported_in_logs(monkeypatch):
    """A worker that outlives the join budget is surfaced, not swallowed."""
    import threading
    import time as _t

    from repro.d4py.mappings import dynamic as dyn
    from repro.obs.events import parse_event

    monkeypatch.setattr(dyn, "_JOIN_TIMEOUT", 0.05)
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    engine = dyn._DynamicEngine(
        graph,
        RedisSim(),
        instances_per_pe=2,
        min_workers=1,
        max_workers=2,
        autoscale=False,
    )
    straggler = threading.Thread(target=_t.sleep, args=(1.0,), daemon=True)
    straggler.start()
    with engine.workers_lock:
        engine.workers.append(straggler)
    result = engine.run(5)
    assert len(result.output_for("dbl")) == 5  # the run itself still succeeds
    events = [parse_event(line) for line in result.logs]
    leaks = [e for e in events if e and e.get("event") == "worker_leak"]
    assert leaks, f"no worker_leak event in logs: {result.logs}"
    assert leaks[0]["leaked_threads"] == "1"
    assert leaks[0]["component"] == "dynamic"
    straggler.join(timeout=5.0)


def test_dynamic_drain_timeout_raises_structured_error():
    import time as _t

    from repro.d4py import IterativePE
    from repro.d4py.mappings.dynamic import DrainTimeout

    class Stall(IterativePE):
        def _process(self, value):
            _t.sleep(2.0)  # far longer than the configured drain budget
            return value

    graph = WorkflowGraph()
    graph.connect(RangeProducer("P"), "output", Stall("S"), "input")
    with pytest.raises(DrainTimeout) as excinfo:
        run_graph(graph, input=2, mapping="dynamic", drain_timeout=0.2)
    err = excinfo.value
    assert err.timeout == 0.2
    assert err.pending >= 1
    assert err.queue_key.endswith("tasks")  # names the undrained queue
    assert "wedged" in str(err)


def test_dynamic_drain_timeout_generous_budget_succeeds():
    graph = WorkflowGraph()
    graph.connect(RangeProducer("P"), "output", Double("D"), "input")
    result = run_graph(graph, input=3, mapping="dynamic", drain_timeout=30.0)
    assert result.outputs[("D", "output")] == [0, 2, 4]


def test_simple_mapping_ignores_drain_timeout():
    graph = WorkflowGraph()
    graph.connect(RangeProducer("P"), "output", Double("D"), "input")
    result = run_graph(graph, input=2, mapping="simple", drain_timeout=0.1)
    assert result.outputs[("D", "output")] == [0, 2]
