"""Tests for data provenance capture (repro.d4py.provenance)."""

import pytest

from repro.d4py import WorkflowGraph, run_graph
from repro.d4py.provenance import ProvenanceTrace

from tests.helpers import AddOne, Double, RangeProducer, WordSplit, pipeline


@pytest.fixture()
def traced():
    graph = pipeline(RangeProducer("src"), Double("dbl"), AddOne("inc"))
    result = run_graph(graph, input=3, provenance=True)
    return result


def test_provenance_off_by_default():
    result = run_graph(pipeline(RangeProducer("src")), input=1)
    assert result.provenance is None


def test_provenance_records_all_items(traced):
    trace = traced.provenance
    # 3 items from each of src, dbl, inc
    assert len(trace.items) == 9
    assert len(trace.items_produced_by("src")) == 3
    assert len(trace.items_produced_by("inc")) == 3


def test_provenance_records_all_invocations(traced):
    trace = traced.provenance
    assert len(trace.invocations) == 9
    by_pe = {}
    for inv in trace.invocations:
        by_pe.setdefault(inv.pe_name, []).append(inv)
    assert {pe: len(v) for pe, v in by_pe.items()} == {"src": 3, "dbl": 3, "inc": 3}


def test_roots_consume_nothing(traced):
    trace = traced.provenance
    for inv in trace.invocations:
        if inv.pe_name == "src":
            assert inv.consumed == ()
        else:
            assert len(inv.consumed) == 1


def test_lineage_walks_to_the_source(traced):
    trace = traced.provenance
    final = trace.items_produced_by("inc")[0]
    chain = trace.lineage(final.item_id)
    assert [rec.pe_name for rec in chain] == ["inc", "dbl", "src"]


def test_lineage_values_are_consistent(traced):
    """src emits 0,1,2; dbl doubles; inc adds one — previews must agree."""
    trace = traced.provenance
    for final in trace.items_produced_by("inc"):
        chain = trace.lineage(final.item_id)
        src_value = int(chain[-1].preview)
        assert int(final.preview) == src_value * 2 + 1


def test_lineage_unknown_item(traced):
    with pytest.raises(KeyError):
        traced.provenance.lineage(10_000)


def test_describe_renders_chain(traced):
    trace = traced.provenance
    final = trace.items_produced_by("inc")[0]
    text = trace.describe(final.item_id)
    assert "inc.output" in text and "src.output" in text


def test_fan_out_provenance():
    """One input producing several items: all share the same ancestor."""
    from repro.d4py.core import pes_from_iterable

    graph = WorkflowGraph()
    src = pes_from_iterable(["a b c"], name="lines")
    split = WordSplit("split")
    graph.connect(src, "output", split, "input")
    result = run_graph(graph, input=1, provenance=True)
    trace = result.provenance
    words = trace.items_produced_by("split")
    assert len(words) == 3
    ancestors = {trace.lineage(w.item_id)[-1].item_id for w in words}
    assert len(ancestors) == 1  # all three words come from the single line


def test_invocation_durations_nonnegative(traced):
    assert all(inv.seconds >= 0 for inv in traced.provenance.invocations)


def test_preview_truncated():
    trace = ProvenanceTrace()
    item = trace.record_item("pe", "output", 0, "x" * 500)
    assert len(trace.items[item].preview) <= 80


def test_provenance_rejected_for_parallel_mappings():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    with pytest.raises(ValueError, match="simple mapping"):
        run_graph(graph, input=2, mapping="multi", provenance=True)
    with pytest.raises(ValueError, match="simple mapping"):
        run_graph(graph, input=2, mapping="dynamic", provenance=True)
