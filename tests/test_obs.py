"""Tests for the observability subsystem (repro.obs).

Covers the ISSUE 3 acceptance checks: histogram bucket/quantile
correctness under concurrent updates, span parent/child nesting across
the dynamic mapping's worker threads, metrics surviving a job retry,
``render_text`` output parsing as Prometheus exposition, and
``run_graph(..., trace=True)`` yielding at least one span per PE
instance.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.d4py.mappings import run_graph
from repro.laminar.execution.engine import ExecutionEngine
from repro.laminar.jobs import JobManager, JobSpec, JobState
from repro.obs import (
    MetricsRegistry,
    Tracer,
    disabled,
    format_event,
    parse_event,
    parse_text,
    render_text,
)
from repro.obs.runtime import split_instance_label

from .helpers import isprime_graph


def _flatten(nodes: list[dict]) -> list[dict]:
    out = []
    for node in nodes:
        out.append(node)
        out.extend(_flatten(node["children"]))
    return out


# -- metrics primitives -------------------------------------------------------

def test_counter_rejects_negative_and_gauge_callback():
    registry = MetricsRegistry()
    counter = registry.counter("laminar_test_total", "doc")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)

    gauge = registry.gauge("laminar_test_gauge", "doc")
    gauge.set_function(lambda: 12.5)
    assert gauge.value == 12.5
    broken = registry.gauge("laminar_test_broken", "doc")
    broken.set_function(lambda: 1 / 0)
    assert broken.value == 0.0  # callback errors degrade, never raise


def test_histogram_buckets_and_quantiles_under_concurrency():
    """16 threads hammer one labelled histogram; totals must be exact."""
    registry = MetricsRegistry()
    family = registry.histogram(
        "laminar_test_seconds", "doc", ("worker",), buckets=(0.1, 0.5, 1.0, 5.0)
    )
    hist = family.labels("w")
    per_thread = [0.05, 0.3, 0.7, 2.0, 9.0]  # one observation per bucket + +Inf
    threads_n = 16
    barrier = threading.Barrier(threads_n)

    def worker():
        barrier.wait()
        for _ in range(50):
            for value in per_thread:
                hist.observe(value)

    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    total = threads_n * 50 * len(per_thread)
    assert hist.count == total
    assert hist.sum == pytest.approx(threads_n * 50 * sum(per_thread))
    # Each observed value lands in exactly one bin (bucket_counts is
    # non-cumulative), including the +Inf overflow bin.
    per_bin = threads_n * 50
    assert hist.bucket_counts() == [per_bin] * 5
    # Quantiles interpolate within the owning bucket's bounds.
    assert 0.0 <= hist.quantile(0.1) <= 0.1
    assert 0.5 <= hist.quantile(0.5) <= 1.0
    assert hist.quantile(0.99) == 5.0  # +Inf bucket clamps to last bound
    assert hist.quantile(0.0) == 0.0


def test_counters_are_exact_under_concurrency():
    registry = MetricsRegistry()
    counter = registry.counter("laminar_test_hits_total", "doc", ("route",))
    child = counter.labels("a")

    def worker():
        for _ in range(10_000):
            child.inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert child.value == 80_000


# -- exposition ---------------------------------------------------------------

def test_render_text_parses_as_prometheus_exposition():
    registry = MetricsRegistry()
    registry.counter("laminar_runs_total", "Runs.", ("mapping", "status")).labels(
        "simple", "success"
    ).inc(3)
    registry.gauge("laminar_queue_depth", "Depth.").set(7)
    registry.histogram("laminar_wait_seconds", "Waits.", buckets=(0.1, 1.0)).observe(
        0.25
    )
    text = render_text(registry)
    parsed = parse_text(text)  # raises ValueError on malformed exposition
    assert parsed["laminar_runs_total"]["type"] == "counter"
    samples = {
        (name, tuple(sorted(labels.items()))): value
        for name, labels, value in parsed["laminar_runs_total"]["samples"]
    }
    key = ("laminar_runs_total", (("mapping", "simple"), ("status", "success")))
    assert samples[key] == 3.0
    gauge_samples = parsed["laminar_queue_depth"]["samples"]
    assert gauge_samples == [("laminar_queue_depth", {}, 7.0)]
    assert parsed["laminar_wait_seconds"]["type"] == "histogram"
    hist = {
        (name, labels.get("le")): value
        for name, labels, value in parsed["laminar_wait_seconds"]["samples"]
    }
    assert hist[("laminar_wait_seconds_bucket", "+Inf")] == 1.0
    assert hist[("laminar_wait_seconds_count", None)] == 1.0
    assert hist[("laminar_wait_seconds_sum", None)] == pytest.approx(0.25)


def test_snapshot_merge_round_trip():
    registry = MetricsRegistry()
    registry.counter("laminar_runs_total", "Runs.", ("mapping",)).labels("multi").inc(2)
    registry.histogram("laminar_wait_seconds", "Waits.").observe(0.2)
    snap = json.loads(json.dumps(registry.snapshot()))  # must be JSON-able
    other = MetricsRegistry()
    other.counter("laminar_runs_total", "Runs.", ("mapping",)).labels("multi").inc(1)
    other.merge(snap)
    assert other.get("laminar_runs_total").labels("multi").value == 3
    assert other.get("laminar_wait_seconds").labels().count == 1


# -- tracing through the mappings ---------------------------------------------

def test_simple_trace_has_span_per_pe_instance():
    registry = MetricsRegistry()
    result = run_graph(
        isprime_graph(), input=20, mapping="simple", trace=True, registry=registry
    )
    assert result.trace is not None
    roots = result.trace.tree()
    assert len(roots) == 1 and roots[0]["name"] == "run:simple"
    spans = _flatten(roots)
    pe_spans = {s["name"] for s in spans if s["name"].startswith("pe:")}
    # Acceptance: at least one span per PE instance of the run.
    assert pe_spans == {"pe:" + label for label in result.iterations}
    # Per-invocation child spans nest under their instance span.
    by_id = {s["spanId"]: s for s in spans}
    invokes = [s for s in spans if s["name"].startswith("invoke:")]
    assert invokes, "simple mapping should record per-invocation spans"
    for span in invokes:
        assert by_id[span["parentId"]]["name"].startswith("pe:")
    # Metrics landed in the explicit registry.
    runs = registry.get("laminar_runs_total")
    assert runs.labels("simple", "success").value == 1


def test_dynamic_trace_nests_across_worker_threads():
    """Instance spans created in worker threads still parent to the root."""
    result = run_graph(
        isprime_graph(),
        input=30,
        mapping="dynamic",
        trace=True,
        max_workers=3,
        instances_per_pe=2,
    )
    roots = result.trace.tree()
    assert len(roots) == 1 and roots[0]["name"] == "run:dynamic"
    root_id = roots[0]["spanId"]
    pe_spans = [
        s for s in _flatten(roots) if s["name"].startswith("pe:")
    ]
    assert {s["name"] for s in pe_spans} == {
        "pe:" + label for label in result.iterations
    }
    for span in pe_spans:
        assert span["parentId"] == root_id
        assert span["attrs"]["iterations"] == result.iterations[span["name"][3:]]
        assert span["attrs"]["queue_wait_seconds"] >= 0.0
    # Timings were normalised: every instance label has a float entry.
    assert set(result.timings) == set(result.iterations)


def test_multi_trace_spans_cross_process_boundary():
    result = run_graph(
        isprime_graph(), input=12, mapping="multi", num_processes=2, trace=True
    )
    roots = result.trace.tree()
    assert len(roots) == 1 and roots[0]["name"] == "run:multi"
    names = {s["name"] for s in _flatten(roots)}
    for label in result.iterations:
        assert "pe:" + label in names


def test_disabled_context_suppresses_default_recording():
    with disabled():
        result = run_graph(isprime_graph(), input=10, mapping="simple")
    assert result.trace is None


# -- metrics through a job retry ----------------------------------------------

def test_metrics_and_trace_survive_job_retry(tmp_path):
    flag = tmp_path / "attempts"
    code = f"""
import os
class Flaky(ProducerPE):
    def _process(self, inputs):
        path = {str(flag)!r}
        seen = 0
        if os.path.exists(path):
            with open(path) as fh:
                seen = int(fh.read())
        if seen < 1:
            with open(path, "w") as fh:
                fh.write(str(seen + 1))
            raise ConnectionError("transient broker hiccup")
        return 42
graph = WorkflowGraph()
graph.add(Flaky("F"))
"""
    registry = MetricsRegistry()
    tracer = Tracer()
    manager = JobManager(
        engine=ExecutionEngine(registry=registry),
        workers=1,
        registry=registry,
        tracer=tracer,
    )
    try:
        job = manager.submit(
            JobSpec(workflow_code=code, max_retries=2, retry_backoff=0.01)
        )
        done = manager.wait(job.job_id, timeout=30)
        assert done.state is JobState.SUCCEEDED
        assert done.attempts == 2
    finally:
        manager.shutdown(wait=True)

    # Both attempts ran through the engine: one errored, one succeeded.
    runs = registry.get("laminar_runs_total")
    assert runs.labels("simple", "error").value == 1
    assert runs.labels("simple", "success").value == 1
    assert registry.get("laminar_jobs_retried_total").value == 1
    # Per-state duration histograms recorded the terminal job.
    state_seconds = registry.get("laminar_job_state_seconds")
    assert state_seconds.labels("running").count == 1
    # The job's lifecycle span tree includes both attempts.
    job_roots = [r for r in tracer.tree() if r["name"] == f"job:{job.job_id}"]
    assert len(job_roots) == 1
    children = {c["name"] for c in job_roots[0]["children"]}
    assert {"queued", "running", "attempt:1", "attempt:2"} <= children
    assert job_roots[0]["attrs"]["attempts"] == 2
    assert job_roots[0]["status"] == "ok"


# -- structured log events ----------------------------------------------------

def test_format_and_parse_event_round_trip():
    line = format_event(
        "retry", job_id=7, attempt=2, backoff=0.125, error="boom: x=1"
    )
    assert line.startswith("[jobs] event=retry ")
    event = parse_event(line)
    assert event["event"] == "retry"
    assert event["job_id"] == "7"
    assert event["error"] == "boom: x=1"


def test_instance_label_split():
    assert split_instance_label("IsPrime0") == ("IsPrime", "0")
    assert split_instance_label("Counter12") == ("Counter", "12")
    assert split_instance_label("NoIndex") == ("NoIndex", "0")
