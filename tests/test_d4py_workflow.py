"""Unit tests for WorkflowGraph (repro.d4py.workflow)."""

import pytest

from repro.d4py import WorkflowGraph
from repro.d4py.grouping import Grouping

from tests.helpers import AddOne, Collect, Double, RangeProducer


def triangle():
    """src -> a -> sink and src -> sink (two inputs would be needed);
    here: src feeds both a and b, both feed sink-ish Collect? Build a
    simple diamond-free 3-node graph instead."""
    g = WorkflowGraph()
    src, a, sink = RangeProducer("src"), Double("a"), Collect("sink")
    g.connect(src, "output", a, "input")
    g.connect(a, "output", sink, "input")
    return g, src, a, sink


def test_connect_validates_output_port():
    g = WorkflowGraph()
    with pytest.raises(KeyError, match="no output"):
        g.connect(RangeProducer("s"), "bogus", Double("d"), "input")


def test_connect_validates_input_port():
    g = WorkflowGraph()
    with pytest.raises(KeyError, match="no input"):
        g.connect(RangeProducer("s"), "output", Double("d"), "bogus")


def test_add_rejects_non_pe():
    with pytest.raises(TypeError):
        WorkflowGraph().add("not a pe")


def test_cycle_rejected_and_rolled_back():
    g = WorkflowGraph()
    a, b = Double("a"), Double("b")
    g.connect(a, "output", b, "input")
    with pytest.raises(ValueError, match="cycle"):
        g.connect(b, "output", a, "input")
    # graph still usable, the offending edge was rolled back
    assert len(list(g.edges())) == 1


def test_topological_order():
    g, src, a, sink = triangle()
    order = g.pes
    assert order.index(src) < order.index(a) < order.index(sink)


def test_roots_and_sinks():
    g, src, a, sink = triangle()
    assert g.roots() == [src]
    assert g.sinks() == [sink]


def test_get_pe_by_name():
    g, src, a, sink = triangle()
    assert g.get_pe("a") is a
    with pytest.raises(KeyError):
        g.get_pe("missing")


def test_successors_filters_by_port():
    g, src, a, sink = triangle()
    dests = g.successors(src, "output")
    assert [(pe.name, port) for pe, port, _ in dests] == [("a", "input")]
    assert g.successors(sink, "output") == [] if "output" in sink.outputconnections else True


def test_len_and_contains():
    g, src, a, sink = triangle()
    assert len(g) == 3
    assert src in g
    assert RangeProducer("other") not in g


def test_fan_out_multiple_consumers():
    g = WorkflowGraph()
    src = RangeProducer("src")
    d1, d2 = Double("d1"), Double("d2")
    g.connect(src, "output", d1, "input")
    g.connect(src, "output", d2, "input")
    assert len(g.successors(src, "output")) == 2


def test_edges_carry_grouping():
    g, src, a, sink = triangle()
    for _u, _out, _v, _inp, grouping in g.edges():
        assert isinstance(grouping, Grouping)


def test_flatten_is_identity_without_composites():
    g, *_ = triangle()
    assert g.flatten() is g


def test_fusable_edges_on_linear_shuffle_chain():
    """Every link of a 1-in/1-out shuffle chain is fusable."""
    g = WorkflowGraph()
    src, a, b = RangeProducer("src"), Double("a"), AddOne("b")
    g.connect(src, "output", a, "input")
    g.connect(a, "output", b, "input")
    fusable = {(u.name, out, v.name, inp) for u, out, v, inp in g.fusable_edges()}
    assert fusable == {
        ("src", "output", "a", "input"),
        ("a", "output", "b", "input"),
    }
    assert [[pe.name for pe in seg] for seg in g.linear_segments()] == [
        ["src", "a", "b"]
    ]


def test_fan_out_breaks_fusion():
    """A PE with two consumers keeps all of its edges on the queue."""
    g = WorkflowGraph()
    src, d1, d2 = RangeProducer("src"), Double("d1"), Double("d2")
    g.connect(src, "output", d1, "input")
    g.connect(src, "output", d2, "input")
    assert g.fusable_edges() == []
    assert g.linear_segments() == []


def test_group_by_edge_is_never_fusable():
    """group_by pins items to instances, so the edge must stay queued;
    the shuffle link upstream of it still fuses."""
    from tests.helpers import KeyedCount

    g = WorkflowGraph()
    src, tag, count = RangeProducer("src"), Double("tag"), KeyedCount("count")
    g.connect(src, "output", tag, "input")
    g.connect(tag, "output", count, "input")
    fusable = {(u.name, v.name) for u, _out, v, _inp in g.fusable_edges()}
    assert fusable == {("src", "tag")}
    assert [[pe.name for pe in seg] for seg in g.linear_segments()] == [
        ["src", "tag"]
    ]


def test_multigraph_allows_parallel_distinct_edges():
    """Two distinct port-to-port connections between the same PE pair."""
    from repro.d4py import GenericPE

    class TwoOut(GenericPE):
        def __init__(self, name=None):
            super().__init__(name)
            self._add_output("a")
            self._add_output("b")

        def _process(self, inputs):
            self.write("a", 1)
            self.write("b", 2)

    class TwoIn(GenericPE):
        def __init__(self, name=None):
            super().__init__(name)
            self._add_input("x")
            self._add_input("y")
            self._add_output("output")

        def _process(self, inputs):
            for v in inputs.values():
                self.write("output", v)

    g = WorkflowGraph()
    u, v = TwoOut("u"), TwoIn("v")
    g.connect(u, "a", v, "x")
    g.connect(u, "b", v, "y")
    assert len(list(g.edges())) == 2

    from repro.d4py import run_graph

    result = run_graph(g, input=1)
    assert sorted(result.output_for("v")) == [1, 2]
