"""Tests for the programmatic experiment report (repro.eval.report)."""

import pytest

from repro.eval.report import PAPER, build_report, main


@pytest.fixture(scope="module")
def report_text():
    # Smallest scale at which the cross-model ordering is statistically
    # stable (tinier corpora make the Aroma-vs-ReACC margin noisy).
    return build_report(corpus_size=160, max_queries=40)


def test_report_contains_all_figures(report_text):
    for heading in ("Fig 10", "Fig 11", "Fig 12", "Fig 13", "Cross-model"):
        assert heading in report_text


def test_report_states_paper_references(report_text):
    assert f"paper ≈ {PAPER['fig11_best_f1']}" in report_text
    assert "0.63 vs 0.24" in report_text


def test_report_claims_hold(report_text):
    assert "**holds**" in report_text
    assert "VIOLATED" not in report_text


def test_report_is_markdown_tabular(report_text):
    assert "| k | precision | recall | F1 |" in report_text
    assert report_text.startswith("# Laminar 2.0 reproduction")


def test_main_writes_file(tmp_path):
    out = tmp_path / "report.md"
    rc = main(["--corpus", "60", "--queries", "10", "--out", str(out)])
    assert rc == 0
    assert out.read_text().startswith("# Laminar 2.0 reproduction")


def test_main_stdout(capsys):
    rc = main(["--corpus", "60", "--queries", "10"])
    assert rc == 0
    assert "Fig 11" in capsys.readouterr().out
