"""Unit tests for PE base classes (repro.d4py.core)."""

import pytest

from repro.d4py import (
    CompositePE,
    ConsumerPE,
    GenericPE,
    IterativePE,
    ProducerPE,
    WorkflowGraph,
    run_graph,
)
from repro.d4py.core import pes_from_iterable

from tests.helpers import AddOne, Collect, Double, RangeProducer, pipeline


class TwoPort(GenericPE):
    def __init__(self, name=None):
        super().__init__(name)
        self._add_input("left")
        self._add_input("right")
        self._add_output("sum")
        self._add_output("product")

    def _process(self, inputs):
        if "left" in inputs:
            self.write("sum", inputs["left"])
        if "right" in inputs:
            self.write("product", inputs["right"])
        return None


def test_generic_pe_declares_connections():
    pe = TwoPort()
    assert set(pe.inputconnections) == {"left", "right"}
    assert set(pe.outputconnections) == {"sum", "product"}


def test_pe_names_are_unique_by_default():
    names = {GenericPE().name for _ in range(10)}
    assert len(names) == 10


def test_explicit_name_is_kept():
    assert GenericPE(name="MyPE").name == "MyPE"


def test_write_to_undeclared_output_raises():
    pe = TwoPort()
    pe._set_emitter(lambda *a: None)
    with pytest.raises(KeyError, match="no output"):
        pe.write("nope", 1)


def test_write_outside_engine_raises():
    pe = TwoPort()
    with pytest.raises(RuntimeError, match="not attached"):
        pe.write("sum", 1)


def test_process_return_mapping_is_written():
    class Ret(GenericPE):
        def __init__(self):
            super().__init__()
            self._add_output("output")

        def _process(self, inputs):
            return {"output": 42}

    pe = Ret()
    seen = []
    pe._set_emitter(lambda out, data: seen.append((out, data)))
    pe.process({})
    assert seen == [("output", 42)]


def test_process_non_mapping_return_raises():
    class Bad(GenericPE):
        def _process(self, inputs):
            return 42

    with pytest.raises(TypeError, match="mapping"):
        Bad().process({})


def test_unimplemented_process_raises():
    with pytest.raises(NotImplementedError):
        GenericPE().process({})
    with pytest.raises(NotImplementedError):
        IterativePE().process({"input": 1})
    with pytest.raises(NotImplementedError):
        ProducerPE().process({})
    with pytest.raises(NotImplementedError):
        ConsumerPE().process({"input": 1})


def test_iterative_pe_ports():
    pe = Double()
    assert list(pe.inputconnections) == ["input"]
    assert list(pe.outputconnections) == ["output"]


def test_iterative_none_result_emits_nothing():
    class DropAll(IterativePE):
        def _process(self, data):
            return None

    graph = pipeline(RangeProducer("src"), DropAll("drop"))
    result = run_graph(graph, input=5)
    assert result.output_for("drop") == []


def test_producer_emits_per_iteration():
    graph = pipeline(RangeProducer("src"))
    result = run_graph(graph, input=4)
    assert result.output_for("src") == [0, 1, 2, 3]


def test_consumer_receives_all_items():
    graph = pipeline(RangeProducer("src"), Collect("sink"))
    result = run_graph(graph, input=3)
    got = [line for line in result.logs if "got" in line]
    assert len(got) == 3


def test_log_goes_through_engine():
    graph = pipeline(RangeProducer("src"), Collect("sink"))
    result = run_graph(graph, input=1)
    assert any(line.startswith("sink (rank 0): got") for line in result.logs)


def test_composite_pe_expands_and_runs():
    composite = CompositePE("DoubleThenAdd")
    d, a = Double("inner_double"), AddOne("inner_add")
    composite.connect(d, "output", a, "input")
    composite._map_input("input", d, "input")
    composite._map_output("output", a, "output")

    graph = WorkflowGraph()
    src = RangeProducer("src")
    graph.connect(src, "output", composite, "input")

    result = run_graph(graph, input=3)
    assert result.output_for("inner_add") == [1, 3, 5]


def test_nested_composites_flatten():
    inner = CompositePE("inner")
    d = Double("d")
    inner.subgraph.add(d)
    inner._map_input("input", d, "input")
    inner._map_output("output", d, "output")

    outer = CompositePE("outer")
    a = AddOne("a")
    outer.connect(inner, "output", a, "input")
    outer._map_input("input", inner, "input")
    outer._map_output("output", a, "output")

    graph = WorkflowGraph()
    src = RangeProducer("src")
    graph.connect(src, "output", outer, "input")

    result = run_graph(graph, input=3)
    assert result.output_for("a") == [1, 3, 5]


def test_composite_never_processes_directly():
    with pytest.raises(RuntimeError, match="expanded"):
        CompositePE().process({})


def test_pes_from_iterable_replays_items():
    src = pes_from_iterable(["a", "b", "c"], name="lit")
    result = run_graph(pipeline(src), input=3)
    assert result.output_for("lit") == ["a", "b", "c"]


def test_pes_from_iterable_exhaustion_is_silent():
    src = pes_from_iterable([1], name="lit")
    result = run_graph(pipeline(src), input=5)
    assert result.output_for("lit") == [1]


def test_multiple_writes_per_process():
    class Fan(IterativePE):
        def _process(self, value):
            for i in range(value):
                self.write("output", i)

    graph = pipeline(RangeProducer("src", start=2), Fan("fan"))
    result = run_graph(graph, input=2)
    # items 2 and 3 -> 0,1 and 0,1,2
    assert result.output_for("fan") == [0, 1, 0, 1, 2]
