"""Tests for the ReACC-py retriever substitute."""

import numpy as np
import pytest

from repro.models.reacc import ReACCRetriever

SNIPPET = """
def running_mean(values, window):
    total = 0.0
    out = []
    for i, v in enumerate(values):
        total += v
        if i >= window:
            total -= values[i - window]
        out.append(total / min(i + 1, window))
    return out
"""

RENAMED = SNIPPET.replace("values", "xs").replace("total", "acc").replace(
    "running_mean", "moving_avg"
)

UNRELATED = """
class HttpClient:
    def get(self, url):
        response = self.session.request("GET", url)
        return response.json()
"""


@pytest.fixture(scope="module")
def retriever():
    return ReACCRetriever()


def test_encode_shape(retriever):
    vecs = retriever.encode([SNIPPET, UNRELATED])
    assert vecs.shape == (2, retriever.dim)
    np.testing.assert_allclose(np.linalg.norm(vecs, axis=1), 1.0, atol=1e-9)


def test_exact_clone_scores_one(retriever):
    assert retriever.similarity(SNIPPET, [SNIPPET])[0] == pytest.approx(1.0)


def test_unrelated_scores_low(retriever):
    sim = retriever.similarity(SNIPPET, [UNRELATED])[0]
    assert sim < 0.2


def test_renamed_clone_still_recognisable(retriever):
    """Renaming identifiers keeps much of the token stream intact."""
    sim = retriever.similarity(SNIPPET, [RENAMED])[0]
    assert 0.2 < sim < 1.0


def test_partial_snippet_degrades_sharply(retriever):
    """The paper's Fig 13 behaviour: ReACC collapses on truncated input."""
    lines = SNIPPET.strip().splitlines()
    full = retriever.similarity(SNIPPET, [SNIPPET])[0]
    half = retriever.similarity("\n".join(lines[: len(lines) // 2]), [SNIPPET])[0]
    tenth = retriever.similarity(lines[0], [SNIPPET])[0]
    assert full > half > tenth
    assert half < 0.8


def test_determinism():
    a = ReACCRetriever().encode(SNIPPET)
    b = ReACCRetriever().encode(SNIPPET)
    np.testing.assert_array_equal(a, b)


def test_empty_source_is_finite(retriever):
    vec = retriever.encode("")
    assert np.all(np.isfinite(vec))


def test_short_snippet_below_ngram(retriever):
    vec = retriever.encode("x")
    assert np.all(np.isfinite(vec))
    assert retriever.similarity("x", ["x"])[0] == pytest.approx(1.0)


def test_similarity_orders_corpus(retriever):
    corpus = [UNRELATED, RENAMED, SNIPPET]
    sims = retriever.similarity(SNIPPET, corpus)
    assert list(np.argsort(-sims)) == [2, 1, 0]
