"""Tests for the LaminarClient — every Table I function — and RunSummary."""

import inspect

import pytest

from repro.d4py import WorkflowGraph
from repro.laminar import LaminarClient, Process
from repro.laminar.client.client import ClientError

from tests.helpers import Collect, RangeProducer, pipeline

ISPRIME_WF = '''
import random

class NumberProducer(ProducerPE):
    def _process(self, inputs):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    """Checks whether a given number is prime and returns the number."""
    def _process(self, num):
        if num > 1 and all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def _process(self, num):
        print(f"the num {num} is prime")

producer = NumberProducer("NumberProducer")
isprime = IsPrime("IsPrime")
printer = PrintPrime("PrintPrime")
graph = WorkflowGraph()
graph.connect(producer, "output", isprime, "input")
graph.connect(isprime, "output", printer, "input")
'''

#: Table I of the paper, exactly.
TABLE_I_FUNCTIONS = [
    "register",
    "login",
    "register_PE",
    "register_Workflow",
    "get_PE",
    "get_Workflow",
    "get_PEs_By_Workflow",
    "get_Registry",
    "describe",
    "update_PE_Description",
    "update_Workflow_Description",
    "remove_PE",
    "remove_Workflow",
    "remove_All",
    "search_Registry_Literal",
    "search_Registry_Semantic",
    "code_Recommendation",
    "run",
    "run_multiprocess",
    "run_dynamic",
]


@pytest.fixture()
def client():
    return LaminarClient()


@pytest.fixture()
def registered(client):
    body = client.register_Workflow(ISPRIME_WF, name="isprime_wf")
    return client, body


def test_table1_functions_all_exist(client):
    for name in TABLE_I_FUNCTIONS:
        fn = getattr(client, name, None)
        assert callable(fn), f"Table I function {name} missing"
        assert inspect.getdoc(fn), f"{name} lacks a docstring"


def test_register_and_login(client):
    client.register("alice", "secret")
    session = client.login("alice", "secret")
    assert session["userName"] == "alice"
    # subsequent registrations are owned by alice
    pe = client.register_PE("class P(IterativePE):\n    def _process(self, x):\n        return x")
    assert pe["peId"] > 0


def test_login_failure_raises(client):
    client.register("bob", "pw")
    with pytest.raises(ClientError) as err:
        client.login("bob", "wrong")
    assert err.value.status == 401


def test_register_workflow_returns_pes(registered):
    _client, body = registered
    names = {pe["peName"] for pe in body["pes"]}
    assert names == {"NumberProducer", "IsPrime", "PrintPrime"}
    assert body["workflow"]["workflowName"] == "isprime_wf"


def test_register_workflow_from_file(tmp_path, client):
    path = tmp_path / "isprime_wf.py"
    path.write_text(ISPRIME_WF)
    body = client.register_Workflow(path)
    assert body["workflow"]["workflowName"] == "isprime_wf"


def test_register_workflow_missing_file(client):
    with pytest.raises(FileNotFoundError):
        client.register_Workflow("no_such_file.py")


def test_get_pe_and_workflow(registered):
    client, body = registered
    pe_id = body["pes"][0]["peId"]
    assert client.get_PE(pe_id)["peId"] == pe_id
    assert client.get_PE("IsPrime")["peName"] == "IsPrime"
    wf = client.get_Workflow("isprime_wf")
    assert wf["workflowName"] == "isprime_wf"


def test_get_pes_by_workflow(registered):
    client, body = registered
    pes = client.get_PEs_By_Workflow(body["workflow"]["workflowId"])
    assert len(pes) == 3


def test_get_registry(registered):
    client, _ = registered
    listing = client.get_Registry()
    assert len(listing["pes"]) == 3
    assert len(listing["workflows"]) == 1


def test_describe_includes_code(registered):
    client, _ = registered
    body = client.describe("IsPrime", kind="pe")
    assert "class IsPrime" in body["peCode"]
    assert body["description"]


def test_update_descriptions(registered):
    client, body = registered
    updated = client.update_PE_Description("IsPrime", "finds primes fast")
    assert updated["description"] == "finds primes fast"
    wf_updated = client.update_Workflow_Description("isprime_wf", "prime pipeline")
    assert wf_updated["description"] == "prime pipeline"


def test_remove_pe_and_workflow(registered):
    client, _ = registered
    client.remove_PE("PrintPrime")
    with pytest.raises(ClientError):
        client.get_PE("PrintPrime")
    client.remove_Workflow("isprime_wf")
    with pytest.raises(ClientError):
        client.get_Workflow("isprime_wf")


def test_remove_all(registered):
    client, _ = registered
    result = client.remove_All()
    assert result["pes_removed"] == 3
    assert result["workflows_removed"] == 1
    assert client.get_Registry() == {"pes": [], "workflows": []}


def test_literal_search(registered):
    client, _ = registered
    hits = client.search_Registry_Literal("prime")
    assert {h["peName"] for h in hits["pes"]} >= {"IsPrime"}


def test_semantic_search(registered):
    client, _ = registered
    results = client.search_Registry_Semantic("check whether numbers are prime")
    assert results[0]["peName"] == "IsPrime"


def test_code_recommendation_fig9(registered):
    """Fig 9: 'random.randint(1, 1000)' recommends NumberProducer."""
    client, _ = registered
    recs = client.code_Recommendation("random.randint(1, 1000)")
    assert recs[0]["peName"] == "NumberProducer"
    assert recs[0]["score"] >= 6.0
    wf_recs = client.code_Recommendation("random.randint(1, 1000)", kind="workflow")
    assert wf_recs[0]["workflowName"] == "isprime_wf"


def test_run_registered_workflow_streams(registered):
    client, _ = registered
    streamed = []
    summary = client.run("isprime_wf", input=30, on_line=streamed.append)
    assert summary.ok
    assert streamed and all("prime" in line for line in streamed)
    assert summary.lines == streamed
    assert summary.execution_id is not None


def test_run_multiprocess(registered):
    client, _ = registered
    summary = client.run_multiprocess("isprime_wf", input=10, num_processes=9, verbose=True)
    assert summary.ok
    assert summary.iterations["NumberProducer0"] == 10
    assert any("Processed" in l for l in summary.logs)


def test_run_dynamic_listing3(registered):
    """Listing 3: one-argument dynamic run."""
    client, _ = registered
    summary = client.run_dynamic("isprime_wf", input=5)
    assert summary.ok


def test_run_local_graph(client):
    graph = pipeline(RangeProducer("src"), Collect("sink"))
    summary = client.run(graph, input=3)
    assert summary.ok
    assert len([l for l in summary.logs if "got" in l]) == 3


def test_run_local_graph_process_modes(client):
    graph = pipeline(RangeProducer("src"), Collect("sink"))
    summary = client.run(graph, input=4, process=Process.DYNAMIC)
    assert summary.ok


def test_run_unknown_workflow_raises(client):
    with pytest.raises(ClientError) as err:
        client.run("ghost_wf", input=1)
    assert err.value.status == 404


def test_run_with_resources(tmp_path, client):
    data_file = tmp_path / "values.txt"
    data_file.write_text("10\n20\n30\n")
    wf = """
class SumFile(ProducerPE):
    def _process(self, inputs):
        with open(RESOURCES["values.txt"]) as fh:
            total = sum(int(line) for line in fh)
        print(f"total={total}")
        return total

g = WorkflowGraph()
g.add(SumFile("SumFile"))
"""
    client.register_Workflow(wf, name="sum_wf")
    summary = client.run("sum_wf", input=1, resources=[data_file])
    assert summary.ok
    assert summary.outputs["SumFile.output"] == [60]
    # second run: resource served from cache, no re-upload needed
    summary2 = client.run("sum_wf", input=1, resources=[data_file])
    assert summary2.ok


def test_run_summary_error_surface(client):
    client.register_Workflow(
        "class B(IterativePE):\n"
        "    def _process(self, x):\n"
        "        raise RuntimeError('nope')\n"
        "b = B('B')\n"
        "graph = WorkflowGraph()\n"
        "graph.add(b)\n",
        name="bad",
    )
    summary = client.run("bad", input=[{"input": 1}])
    assert not summary.ok
    assert "nope" in (summary.error or "")


def test_visualize_workflow(registered):
    client, _ = registered
    body = client.visualize_Workflow("isprime_wf")
    assert "NumberProducer" in body["text"]
    assert body["dot"].startswith("digraph")
    assert set(body["roots"]) == {"NumberProducer"}
    assert body["edges"] == 2


def test_visualize_unknown_workflow(client):
    with pytest.raises(ClientError):
        client.visualize_Workflow("ghost")


def test_run_summary_carries_timings(registered):
    client, _ = registered
    summary = client.run("isprime_wf", input=10)
    assert summary.timings
    assert all(v >= 0 for v in summary.timings.values())


def test_run_with_sandbox_option(client):
    client.register_Workflow(
        "class Spy(ProducerPE):\n"
        "    def _process(self, inputs):\n"
        "        return open('/etc/hostname').read()\n"
        "spy = Spy('Spy')\ngraph = WorkflowGraph()\ngraph.add(spy)\n",
        name="spy_wf",
    )
    unsafe = client.run("spy_wf", input=1)
    assert unsafe.ok  # default engine mode allows IO
    sandboxed = client.run("spy_wf", input=1, sandbox=True)
    assert not sandboxed.ok
    assert "open()" in (sandboxed.error or "") or "Sandbox" in (sandboxed.error or "")


def test_code_completion_via_client(registered):
    client, _ = registered
    hits = client.code_Completion(
        "class IsPrime(IterativePE):\n    def _process(self, num):"
    )
    assert hits and hits[0]["peName"] == "IsPrime"
    assert "return num" in hits[0]["completion"]
