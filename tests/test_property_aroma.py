"""Property-based tests for the Aroma pipeline's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.aroma.features import FeatureConfig, extract_features, feature_set
from repro.aroma.spt import ParseFailure, python_to_spt
from repro.eval.dropper import drop_suffix

IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in {"if", "in", "is", "or", "and", "not", "for", "def", "del", "as"}
)


def simple_function(fn, arg, helper, const):
    return (
        f"def {fn}({arg}):\n"
        f"    if {arg} > {const}:\n"
        f"        return {helper}({arg})\n"
        f"    return {arg} + {const}\n"
    )


@settings(max_examples=40, deadline=None)
@given(fn=IDENT, a=IDENT, b=IDENT, helper=IDENT, const=st.integers(0, 99))
def test_local_rename_invariance(fn, a, b, helper, const):
    """Renaming a local variable never changes the feature multiset."""
    if len({fn, a, helper}) < 3 or len({fn, b, helper}) < 3:
        return
    f1 = extract_features(python_to_spt(simple_function(fn, a, helper, const)))
    f2 = extract_features(python_to_spt(simple_function(fn, b, helper, const)))
    assert f1 == f2


@settings(max_examples=40, deadline=None)
@given(fn=IDENT, arg=IDENT, h1=IDENT, h2=IDENT, const=st.integers(0, 99))
def test_free_function_rename_changes_features(fn, arg, h1, h2, const):
    """Renaming a *free* (global) call does change features."""
    if len({fn, arg, h1}) < 3 or len({fn, arg, h2}) < 3 or h1 == h2:
        return
    f1 = feature_set(python_to_spt(simple_function(fn, arg, h1, const)))
    f2 = feature_set(python_to_spt(simple_function(fn, arg, h2, const)))
    assert f1 != f2


@settings(max_examples=30, deadline=None)
@given(
    fn=IDENT,
    arg=IDENT,
    helper=IDENT,
    const=st.integers(0, 99),
    frac=st.sampled_from([0.25, 0.5, 0.75]),
)
def test_truncation_features_subset_like(fn, arg, helper, const, frac):
    """A truncated snippet's features mostly come from the full snippet.

    Repairs may introduce a handful of synthetic tokens (`pass` closures),
    so we assert high containment rather than strict subset.
    """
    if len({fn, arg, helper}) < 3:
        return
    source = simple_function(fn, arg, helper, const)
    full = feature_set(python_to_spt(source))
    try:
        partial = feature_set(python_to_spt(drop_suffix(source, frac)))
    except ParseFailure:
        return
    if not partial:
        return
    containment = len(partial & full) / len(partial)
    assert containment >= 0.5


@settings(max_examples=30, deadline=None)
@given(fn=IDENT, arg=IDENT, helper=IDENT, const=st.integers(0, 99))
def test_feature_configs_partition_the_full_set(fn, arg, helper, const):
    """Family-specific extractions are subsets of the full extraction."""
    if len({fn, arg, helper}) < 3:
        return
    spt = python_to_spt(simple_function(fn, arg, helper, const))
    full = feature_set(spt)
    for config in (
        FeatureConfig(parent=False),
        FeatureConfig(sibling=False),
        FeatureConfig(variable_usage=False),
        FeatureConfig(token=False),
    ):
        assert feature_set(spt, config) <= full


@settings(max_examples=30, deadline=None)
@given(fn=IDENT, arg=IDENT, helper=IDENT, const=st.integers(0, 99))
def test_self_similarity_is_maximal_overlap(fn, arg, helper, const):
    """A snippet's overlap with itself equals its feature-set size, and
    no other snippet generated here can exceed it."""
    if len({fn, arg, helper}) < 3:
        return
    fs = feature_set(python_to_spt(simple_function(fn, arg, helper, const)))
    assert len(fs & fs) == len(fs)
