"""Tests for the UniXcoder substitute embedder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.embedder import UniXcoderEmbedder, cosine_similarity_matrix

DOCS = [
    "Anomaly detection PE.",
    "Checks whether a number is prime.",
    "Normalizes the temperature of a record.",
    "Aggregate data from a sequence of records.",
    "Splits text lines into words.",
]


@pytest.fixture(scope="module")
def embedder():
    return UniXcoderEmbedder().fit(DOCS)


def test_encode_shape_and_normalisation(embedder):
    vecs = embedder.encode(DOCS)
    assert vecs.shape == (len(DOCS), embedder.dim)
    norms = np.linalg.norm(vecs, axis=1)
    np.testing.assert_allclose(norms, 1.0, atol=1e-9)


def test_encode_single_string(embedder):
    vec = embedder.encode("hello world")
    assert vec.shape == (1, embedder.dim)


def test_identical_text_has_similarity_one(embedder):
    sims = embedder.similarity(DOCS[0], [DOCS[0]])
    assert sims[0] == pytest.approx(1.0)


def test_semantic_query_ranks_right_document(embedder):
    sims = embedder.similarity("a pe that is able to detect anomalies", DOCS)
    assert int(np.argmax(sims)) == 0


def test_prime_query(embedder):
    sims = embedder.similarity("check if a number is prime", DOCS)
    assert int(np.argmax(sims)) == 1


def test_determinism_across_instances():
    a = UniXcoderEmbedder().encode("some description text")
    b = UniXcoderEmbedder().encode("some description text")
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    a = UniXcoderEmbedder(seed=1).encode("some text")
    b = UniXcoderEmbedder(seed=2).encode("some text")
    assert not np.allclose(a, b)


def test_fit_empty_corpus_rejected():
    with pytest.raises(ValueError, match="empty"):
        UniXcoderEmbedder().fit([])


def test_fit_returns_self():
    e = UniXcoderEmbedder()
    assert e.fit(["a b c"]) is e


def test_idf_downweights_ubiquitous_terms():
    corpus = [f"common word doc{i}" for i in range(20)] + ["rare anomaly report"]
    e = UniXcoderEmbedder().fit(corpus)
    sims_common = e.similarity("common word", corpus)
    sims_rare = e.similarity("rare anomaly", corpus)
    # the rare query should single out its document decisively
    assert np.argmax(sims_rare) == len(corpus) - 1


def test_empty_text_encodes_to_zero_safe_vector(embedder):
    vec = embedder.encode("")
    assert vec.shape == (1, embedder.dim)
    assert np.all(np.isfinite(vec))


def test_cosine_similarity_matrix_shape():
    a = np.random.default_rng(0).normal(size=(3, 8))
    b = np.random.default_rng(1).normal(size=(5, 8))
    sims = cosine_similarity_matrix(a, b)
    assert sims.shape == (3, 5)
    assert np.all(sims <= 1.0 + 1e-9) and np.all(sims >= -1.0 - 1e-9)


def test_cosine_similarity_handles_zero_rows():
    a = np.zeros((1, 4))
    b = np.ones((1, 4))
    sims = cosine_similarity_matrix(a, b)
    assert sims[0, 0] == 0.0


@settings(max_examples=25)
@given(st.text(min_size=1, max_size=100))
def test_encode_always_finite(text):
    vec = UniXcoderEmbedder(dim=32, n_buckets=256).encode(text)
    assert np.all(np.isfinite(vec))


@settings(max_examples=25)
@given(
    st.lists(
        st.text(alphabet="abcdefgh ", min_size=3, max_size=30),
        min_size=2,
        max_size=6,
    )
)
def test_self_similarity_is_maximal(texts):
    e = UniXcoderEmbedder(dim=64, n_buckets=512)
    vecs = e.encode(texts)
    sims = vecs @ vecs.T
    for i in range(len(texts)):
        assert sims[i, i] >= sims[i].max() - 1e-9
