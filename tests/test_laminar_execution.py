"""Tests for the execution engine, streaming, auto-import and resources."""

import time

import pytest

from repro.laminar.execution import (
    ExecutionEngine,
    ResourceCache,
    StdoutRouter,
    auto_import,
    file_digest,
)
from repro.laminar.execution.autoimport import missing_modules
from repro.laminar.execution.resources import ResourceManifestEntry

WF = """
class Source(ProducerPE):
    def _process(self, inputs):
        return inputs.get("_data", 1) if isinstance(inputs, dict) else 1

class Printer(ConsumerPE):
    def _process(self, item):
        print(f"item={item}")

s = Source("Source")
p = Printer("Printer")
graph = WorkflowGraph()
graph.connect(s, "output", p, "input")
"""


# -- auto-import -----------------------------------------------------------


def test_missing_modules_detects_random():
    code = "class X:\n    def f(self):\n        return random.randint(1, 5)\n"
    assert missing_modules(code) == ["random"]


def test_missing_modules_ignores_imported():
    code = "import random\nx = random.random()\n"
    assert missing_modules(code) == []


def test_missing_modules_ignores_bound_names():
    code = "math = object()\nx = math\n"
    assert missing_modules(code) == []


def test_missing_modules_ignores_unknown_names():
    code = "x = mystery_helper()\n"
    assert missing_modules(code) == []


def test_missing_modules_respects_provided():
    code = "x = json.dumps({})\n"
    assert missing_modules(code, provided={"json"}) == []


def test_auto_import_prepends():
    code = "x = math.sqrt(2)\ny = json.dumps(x)\n"
    patched = auto_import(code)
    assert patched.startswith("import json\nimport math\n")
    exec(compile(patched, "<test>", "exec"), {})


def test_auto_import_noop():
    code = "x = 1\n"
    assert auto_import(code) is code


# -- stdout streaming ------------------------------------------------------------


def test_run_streaming_yields_lines_live():
    router = StdoutRouter.instance()
    seen_at = []

    def work():
        for i in range(3):
            print(f"line{i}")
            time.sleep(0.02)

    start = time.monotonic()
    for line in router.run_streaming(work):
        seen_at.append((line, time.monotonic() - start))
    total = time.monotonic() - start
    assert [l for l, _ in seen_at] == ["line0", "line1", "line2"]
    # liveness: the first line arrived while the work was still running
    # (strictly before the stream completed), not after a batch drain.
    assert seen_at[0][1] < total
    assert seen_at[0][1] < seen_at[-1][1]


def test_run_streaming_propagates_errors_after_output():
    router = StdoutRouter.instance()

    def work():
        print("partial")
        raise RuntimeError("boom")

    lines = []
    with pytest.raises(RuntimeError, match="boom"):
        for line in router.run_streaming(work):
            lines.append(line)
    assert lines == ["partial"]


def test_run_streaming_unterminated_tail_flushed():
    router = StdoutRouter.instance()

    def work():
        import sys

        sys.stdout.write("no newline")

    assert list(router.run_streaming(work)) == ["no newline"]


def test_concurrent_streams_do_not_interleave():
    import threading

    router = StdoutRouter.instance()
    results = {}

    def run(tag):
        def work():
            for i in range(5):
                print(f"{tag}-{i}")
                time.sleep(0.005)

        results[tag] = list(router.run_streaming(work))

    threads = [threading.Thread(target=run, args=(t,)) for t in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert results["a"] == [f"a-{i}" for i in range(5)]
    assert results["b"] == [f"b-{i}" for i in range(5)]


def test_stdout_restored_after_streams():
    import sys

    router = StdoutRouter.instance()
    list(router.run_streaming(lambda: print("x")))
    assert not isinstance(sys.stdout, type(None))
    print("", end="")  # must not explode


# -- resource cache ------------------------------------------------------------------


def test_cache_put_get_roundtrip(tmp_path):
    cache = ResourceCache(tmp_path)
    digest = cache.put(b"hello world")
    assert cache.has(digest)
    assert cache.get(digest) == b"hello world"


def test_cache_put_idempotent(tmp_path):
    cache = ResourceCache(tmp_path)
    d1 = cache.put(b"data")
    d2 = cache.put(b"data")
    assert d1 == d2
    assert cache.stats.uploads == 1


def test_cache_missing_names(tmp_path):
    cache = ResourceCache(tmp_path)
    d = cache.put(b"present")
    manifest = [
        ResourceManifestEntry("have.txt", d),
        ResourceManifestEntry("need.txt", "f" * 64),
    ]
    assert cache.missing(manifest) == ["need.txt"]


def test_cache_materialize(tmp_path):
    cache = ResourceCache(tmp_path / "cache")
    d = cache.put(b"contents")
    placed = cache.materialize(
        [ResourceManifestEntry("input.csv", d)], tmp_path / "run"
    )
    assert open(placed["input.csv"], "rb").read() == b"contents"
    assert cache.stats.cache_hits == 1


def test_cache_materialize_missing_raises(tmp_path):
    cache = ResourceCache(tmp_path)
    with pytest.raises(KeyError):
        cache.materialize([ResourceManifestEntry("x", "e" * 64)], tmp_path / "run")


def test_cache_rejects_bad_digest(tmp_path):
    cache = ResourceCache(tmp_path)
    with pytest.raises(ValueError):
        cache.has("../../etc/passwd")


def test_file_digest_stable():
    assert file_digest(b"abc") == file_digest(b"abc")
    assert file_digest(b"abc") != file_digest(b"abd")


# -- engine -----------------------------------------------------------------------------


@pytest.fixture()
def engine():
    return ExecutionEngine()


def test_engine_executes_simple(engine):
    outcome = engine.execute(WF, input=3)
    assert outcome.status == "success"
    assert outcome.iterations["Source0"] == 3
    assert sum(1 for l in outcome.logs if l.startswith("item=")) == 3


def test_engine_streams_lines(engine):
    stream, outcome = engine.execute_streaming(WF, input=2)
    lines = list(stream)
    assert lines == ["item=1", "item=1"]
    assert outcome.status == "success"


def test_engine_finds_named_graph(engine):
    code = WF.replace("graph", "mygraph")
    outcome = engine.execute(code, input=1, graph_name="mygraph")
    assert outcome.status == "success"


def test_engine_graph_factory(engine):
    code = """
class Src(ProducerPE):
    def _process(self, inputs):
        return 7

def create_workflow():
    g = WorkflowGraph()
    g.add(Src("Src"))
    return g
"""
    outcome = engine.execute(code, input=1)
    assert outcome.status == "success"
    assert outcome.outputs == {"Src.output": [7]}


def test_engine_no_graph_is_error(engine):
    outcome = engine.execute("x = 1\n")
    assert outcome.status == "error"
    assert "WorkflowGraph" in outcome.error


def test_engine_bad_graph_name(engine):
    outcome = engine.execute(WF, graph_name="nonexistent")
    assert outcome.status == "error"


def test_engine_auto_imports_dependencies(engine):
    code = """
class R(ProducerPE):
    def _process(self, inputs):
        return random.randint(0, 10)

g = WorkflowGraph()
g.add(R("R"))
"""
    outcome = engine.execute(code, input=5)
    assert outcome.status == "success"
    assert len(outcome.outputs["R.output"]) == 5


def test_engine_multi_mapping(engine):
    outcome = engine.execute(WF, input=6, mapping="multi", num_processes=4)
    assert outcome.status == "success"
    assert sum(v for k, v in outcome.iterations.items() if k.startswith("Printer")) == 6


def test_engine_dynamic_mapping(engine):
    outcome = engine.execute(WF, input=6, mapping="dynamic")
    assert outcome.status == "success"


def test_engine_materializes_resources(engine, tmp_path):
    data = b"1,2,3\n4,5,6\n"
    digest = engine.cache.put(data)
    code = """
class FileReader(ProducerPE):
    def _process(self, inputs):
        return open(RESOURCES["numbers.csv"]).read().count(",")

g = WorkflowGraph()
g.add(FileReader("FileReader"))
"""
    outcome = engine.execute(
        code, input=1, resources=[{"name": "numbers.csv", "digest": digest}]
    )
    assert outcome.status == "success"
    assert outcome.outputs["FileReader.output"] == [4]


def test_engine_outputs_json_safe(engine):
    code = """
class ObjSource(ProducerPE):
    def _process(self, inputs):
        return object()

g = WorkflowGraph()
g.add(ObjSource("ObjSource"))
"""
    outcome = engine.execute(code, input=1)
    (value,) = outcome.outputs["ObjSource.output"]
    assert isinstance(value, str) and "object" in value


def test_engine_inspect_returns_renderings(engine):
    info = engine.inspect(WF)
    assert info["pes"] == ["Source", "Printer"]
    assert info["roots"] == ["Source"]
    assert info["edges"] == 1
    assert "Source" in info["text"]
    assert info["dot"].startswith("digraph")


def test_engine_inspect_does_not_execute(engine):
    code = WF + "\nSIDE_EFFECT = []\nSIDE_EFFECT.append(1)\n"
    # inspect executes module top-level (graph construction) but never
    # enacts the workflow: no iterations, no output.
    info = engine.inspect(code)
    assert info["edges"] == 1


def test_engine_inspect_propagates_errors(engine):
    with pytest.raises(ValueError, match="WorkflowGraph"):
        engine.inspect("x = 1\n")


def test_stdout_router_timeout():
    import time as _t

    from repro.laminar.execution.streaming import StdoutRouter

    def hang():
        _t.sleep(1.0)
        print("late")

    router = StdoutRouter.instance()
    with pytest.raises(TimeoutError):
        for _ in router.run_streaming(hang, timeout=0.05):
            pass


def test_engine_inactivity_timeout(engine):
    code = """
import time

class Stall(ProducerPE):
    def _process(self, inputs):
        time.sleep(0.5)
        return 1

g = WorkflowGraph()
g.add(Stall("Stall"))
"""
    outcome = engine.execute(code, input=1, inactivity_timeout=0.05)
    assert outcome.status == "error"
    assert "wedged" in outcome.error or "TimeoutError" in outcome.error
